//! Analytic distributions, in both hashed (inverse-CDF of unit uniforms) and
//! sequential (PRNG-driven) forms.
//!
//! The hashed forms are the ones the sketching algorithms use: they turn one
//! or two *consistent* unit uniforms (pure functions of `(seed, d, k, role)`)
//! into the required variate, so the same element in different sets receives
//! the same draw — the consistency protocol of paper §6.2.

use crate::prng::Prng;

// ---------------------------------------------------------------------------
// Hashed (inverse-CDF) forms
// ---------------------------------------------------------------------------

/// `Exp(rate)` from one unit uniform: `−ln(u)/rate`.
///
/// This is the Chum et al. hash `h(S_k) = −ln x / S_k` (paper Eq. 28) when
/// `rate = S_k`.
#[inline]
#[must_use]
pub fn exp_from_unit(u: f64, rate: f64) -> f64 {
    debug_assert!(u > 0.0 && u < 1.0 && rate > 0.0);
    -u.ln() / rate
}

/// `Gamma(2,1)` from two unit uniforms: `−ln(u₁·u₂)`.
///
/// Exactly the construction ICWS uses for `r_k` and `c_k` (paper §4.2.5).
#[inline]
#[must_use]
pub fn gamma21_from_units(u1: f64, u2: f64) -> f64 {
    debug_assert!(u1 > 0.0 && u1 < 1.0 && u2 > 0.0 && u2 < 1.0);
    -(u1 * u2).ln()
}

/// `Beta(2,1)` from one unit uniform by inverse CDF: `F(x) = x² ⇒ x = √u`.
///
/// The CCWS `r_k` (paper Eq. 14). Note the review's §6.3 observation that
/// CCWS is *cheaper* than ICWS because this needs a single uniform.
#[inline]
#[must_use]
pub fn beta21_from_unit(u: f64) -> f64 {
    debug_assert!(u > 0.0 && u < 1.0);
    u.sqrt()
}

/// `Geometric(p)` (number of failures before the first success, support
/// `{0, 1, 2, …}`) from one unit uniform by inverse CDF:
/// `⌊ln(u) / ln(1−p)⌋`.
///
/// Models the skip lengths between "active indices" in
/// \[Gollapudi et al., 2006\](1) (paper §4.1): within an interval whose lower
/// endpoint has hash value `v`, each subelement beats it with probability
/// `p = v`.
///
/// Saturates at `u64::MAX` for vanishing `p` (caller clamps to the weight).
#[inline]
#[must_use]
pub fn geometric_from_unit(u: f64, p: f64) -> u64 {
    debug_assert!(u > 0.0 && u < 1.0 && p > 0.0 && p <= 1.0);
    if p >= 1.0 {
        return 0;
    }
    // ln_1p, not (1.0 - p).ln(): for p below ~1e-16 the subtraction rounds
    // to 1.0 exactly, ln collapses to 0, and the quotient becomes −∞ → a
    // zero skip. Active-index walks then crawl one subelement at a time —
    // an effective hang for large quantized weights.
    let g = u.ln() / (-p).ln_1p();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// Pareto(α, scale) from one unit uniform: `scale · u^(−1/α)`.
///
/// The synthetic weights of the paper's `SynESS` datasets: *"the nonzero
/// weights in each vector sample conform to a power-law distribution with
/// the exponent parameter e and the scale parameter s"* (§6.1). Mean is
/// `scale·α/(α−1)`; for `(α, s) = (3, 0.2)` that is `0.3`, matching
/// Table 4's measured `0.2999`.
#[inline]
#[must_use]
pub fn pareto_from_unit(u: f64, alpha: f64, scale: f64) -> f64 {
    debug_assert!(u > 0.0 && u < 1.0 && alpha > 0.0 && scale > 0.0);
    scale * u.powf(-1.0 / alpha)
}

// ---------------------------------------------------------------------------
// Sequential samplers
// ---------------------------------------------------------------------------

/// Sample `Exp(rate)`.
#[inline]
pub fn exp<R: Prng>(rng: &mut R, rate: f64) -> f64 {
    exp_from_unit(rng.next_f64(), rate)
}

/// Sample `Gamma(2,1)`.
#[inline]
pub fn gamma21<R: Prng>(rng: &mut R) -> f64 {
    gamma21_from_units(rng.next_f64(), rng.next_f64())
}

/// Sample `Beta(2,1)`.
#[inline]
pub fn beta21<R: Prng>(rng: &mut R) -> f64 {
    beta21_from_unit(rng.next_f64())
}

/// Sample `Geometric(p)` (failures before first success).
#[inline]
pub fn geometric<R: Prng>(rng: &mut R, p: f64) -> u64 {
    geometric_from_unit(rng.next_f64(), p)
}

/// Sample Pareto(α, scale).
#[inline]
pub fn pareto<R: Prng>(rng: &mut R, alpha: f64, scale: f64) -> f64 {
    pareto_from_unit(rng.next_f64(), alpha, scale)
}

/// Sample a standard normal via Box–Muller (used by SimHash and the p=2
/// stable family of `wmh-lsh`).
#[inline]
pub fn standard_normal<R: Prng>(rng: &mut R) -> f64 {
    let u1 = rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a standard Cauchy via inverse CDF (the p=1 stable family).
#[inline]
pub fn standard_cauchy<R: Prng>(rng: &mut R) -> f64 {
    let u = rng.next_f64();
    (std::f64::consts::PI * (u - 0.5)).tan()
}

/// A standard normal from two *hashed* unit uniforms (consistent form).
#[inline]
#[must_use]
pub fn normal_from_units(u1: f64, u2: f64) -> f64 {
    debug_assert!(u1 > 0.0 && u1 < 1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A standard Cauchy from one *hashed* unit uniform (consistent form).
#[inline]
#[must_use]
pub fn cauchy_from_unit(u: f64) -> f64 {
    (std::f64::consts::PI * (u - 0.5)).tan()
}

/// Sample `Poisson(λ)` by Knuth's product method for small λ and normal
/// approximation with continuity correction for large λ.
pub fn poisson<R: Prng>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut prod = rng.next_f64();
        let mut count = 0u64;
        while prod > limit {
            prod *= rng.next_f64();
            count += 1;
        }
        count
    } else {
        // Normal approximation; adequate for the workload-generation use.
        let z = standard_normal(rng);
        let x = lambda + lambda.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

/// Zipf-distributed rank in `[1, n]` with exponent `s`, by inverse CDF over
/// precomputed cumulative weights.
///
/// Used by the text-workload generator to mimic natural token frequencies.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Errors
    /// Returns an error when `n == 0` or `s` is not finite / negative.
    pub fn new(n: usize, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::EmptySupport);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::BadExponent(s));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }

    /// Sample a rank in `[1, n]`.
    pub fn sample<R: Prng>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // partition_point: first index with cdf[i] >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

/// Construction errors for [`Zipf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZipfError {
    /// `n == 0`.
    EmptySupport,
    /// Exponent not finite or negative.
    BadExponent(f64),
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptySupport => write!(f, "Zipf support must be non-empty"),
            Self::BadExponent(s) => write!(f, "Zipf exponent {s} must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256pp;
    use crate::stats::{chi_square_uniform_pvalue, ks_statistic, mean_and_var};

    const N: usize = 60_000;

    fn draws(f: impl Fn(&mut Xoshiro256pp) -> f64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::new(0xD15E);
        (0..N).map(|_| f(&mut rng)).collect()
    }

    #[test]
    fn exp_moments_and_ks() {
        let xs = draws(|r| exp(r, 2.5));
        let (m, v) = mean_and_var(&xs);
        assert!((m - 0.4).abs() < 0.01, "mean {m}");
        assert!((v - 0.16).abs() < 0.01, "var {v}");
        let d = ks_statistic(&xs, |x| 1.0 - (-2.5 * x).exp());
        assert!(d < 1.63 / (N as f64).sqrt() * 1.5, "KS D = {d}");
    }

    #[test]
    fn gamma21_moments_and_ks() {
        let xs = draws(gamma21);
        let (m, v) = mean_and_var(&xs);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((v - 2.0).abs() < 0.15, "var {v}");
        // Gamma(2,1) CDF: 1 - e^{-x}(1+x).
        let d = ks_statistic(&xs, |x| 1.0 - (-x).exp() * (1.0 + x));
        assert!(d < 1.63 / (N as f64).sqrt() * 1.5, "KS D = {d}");
    }

    #[test]
    fn beta21_moments_and_ks() {
        let xs = draws(beta21);
        let (m, v) = mean_and_var(&xs);
        assert!((m - 2.0 / 3.0).abs() < 0.01, "mean {m}");
        assert!((v - 1.0 / 18.0).abs() < 0.01, "var {v}");
        let d = ks_statistic(&xs, |x| (x * x).clamp(0.0, 1.0));
        assert!(d < 1.63 / (N as f64).sqrt() * 1.5, "KS D = {d}");
    }

    #[test]
    fn geometric_pmf() {
        let p = 0.3;
        let mut rng = Xoshiro256pp::new(0x6E0);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            let g = geometric(&mut rng, p) as usize;
            if g < counts.len() {
                counts[g] += 1;
            }
        }
        for (k, &c) in counts.iter().enumerate() {
            let want = p * (1.0 - p).powi(k as i32);
            let got = f64::from(c) / n as f64;
            let sd = (want * (1.0 - want) / n as f64).sqrt();
            assert!((got - want).abs() < 5.0 * sd, "P(G={k}): got {got}, want {want}");
        }
    }

    #[test]
    fn geometric_edge_cases() {
        assert_eq!(geometric_from_unit(0.5, 1.0), 0);
        // Tiny p: huge skips, but finite and clamped.
        let g = geometric_from_unit(1e-9, 1e-12);
        assert!(g > 1_000_000);
    }

    #[test]
    fn pareto_moments() {
        // Pareto(3, 0.2): mean 0.3, the paper's Syn3E0.2S setting.
        let xs = draws(|r| pareto(r, 3.0, 0.2));
        let (m, _) = mean_and_var(&xs);
        assert!((m - 0.3).abs() < 0.01, "mean {m}");
        assert!(xs.iter().all(|&x| x >= 0.2), "support starts at scale");
        let d = ks_statistic(&xs, |x| 1.0 - (0.2f64 / x).powi(3));
        assert!(d < 1.63 / (N as f64).sqrt() * 1.5, "KS D = {d}");
    }

    #[test]
    fn normal_moments_and_symmetry() {
        let xs = draws(standard_normal);
        let (m, v) = mean_and_var(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
        let above = xs.iter().filter(|&&x| x > 0.0).count() as f64 / xs.len() as f64;
        assert!((above - 0.5).abs() < 0.01);
    }

    #[test]
    fn cauchy_median_and_quartiles() {
        let mut xs = draws(standard_cauchy);
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        let q1 = xs[xs.len() / 4];
        let q3 = xs[3 * xs.len() / 4];
        assert!(median.abs() < 0.03, "median {median}");
        // Cauchy quartiles are at ∓1.
        assert!((q1 + 1.0).abs() < 0.05, "q1 {q1}");
        assert!((q3 - 1.0).abs() < 0.05, "q3 {q3}");
    }

    #[test]
    fn poisson_small_lambda() {
        let mut rng = Xoshiro256pp::new(0xB0);
        let lambda = 4.0;
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let (m, v) = mean_and_var(&xs);
        assert!((m - lambda).abs() < 0.05, "mean {m}");
        assert!((v - lambda).abs() < 0.15, "var {v}");
    }

    #[test]
    fn poisson_large_lambda_normal_regime() {
        let mut rng = Xoshiro256pp::new(0xB1);
        let lambda = 200.0;
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let (m, v) = mean_and_var(&xs);
        assert!((m - lambda).abs() < 0.5, "mean {m}");
        assert!((v / lambda - 1.0).abs() < 0.05, "var {v}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = Xoshiro256pp::new(0xB2);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn zipf_frequencies_follow_power_law() {
        let z = Zipf::new(100, 1.0).expect("valid");
        let mut rng = Xoshiro256pp::new(0x21);
        let n = 100_000;
        let mut counts = vec![0u32; 101];
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!((1..=100).contains(&r));
            counts[r] += 1;
        }
        // Rank 1 should appear ≈ 1/H_100 ≈ 0.1928 of the time.
        let h100: f64 = (1..=100).map(|k| 1.0 / k as f64).sum();
        let want = 1.0 / h100;
        let got = f64::from(counts[1]) / n as f64;
        assert!((got - want).abs() < 0.01, "rank-1 freq {got}, want {want}");
        // Monotone-ish decay: rank 1 > rank 10 > rank 100.
        assert!(counts[1] > counts[10] && counts[10] > counts[100]);
    }

    #[test]
    fn zipf_rejects_bad_input() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), ZipfError::EmptySupport);
        assert!(matches!(Zipf::new(5, f64::NAN), Err(ZipfError::BadExponent(_))));
        assert!(matches!(Zipf::new(5, -1.0), Err(ZipfError::BadExponent(_))));
    }

    #[test]
    fn zipf_s0_is_uniform() {
        let z = Zipf::new(8, 0.0).expect("valid");
        let mut rng = Xoshiro256pp::new(0x22);
        let n = 80_000;
        let mut counts = [0u32; 9];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let p = chi_square_uniform_pvalue(&counts[1..]);
        assert!(p > 1e-4, "chi-square p = {p}");
    }

    #[test]
    fn hashed_and_sequential_forms_agree() {
        // Feeding the same uniforms through both paths gives identical
        // variates — the consistency bridge the sketchers rely on.
        let mut rng = Xoshiro256pp::new(0x77);
        let (u1, u2) = (rng.next_f64(), rng.next_f64());
        assert_eq!(gamma21_from_units(u1, u2), -(u1 * u2).ln());
        assert_eq!(exp_from_unit(u1, 3.0), -u1.ln() / 3.0);
        assert_eq!(beta21_from_unit(u1), u1.sqrt());
    }
}
