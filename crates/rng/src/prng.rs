//! Sequential pseudo-random number generators.
//!
//! Written from scratch (no dependency on `rand` in library code):
//! [`SplitMix64`] for seeding and cheap streams, [`Xoshiro256pp`]
//! (xoshiro256++, Blackman & Vigna 2019) as the workhorse generator for the
//! dataset generator and experiment harness.

use wmh_hash::mix::GOLDEN_GAMMA;
use wmh_hash::to_unit_open;

/// A deterministic stream of pseudo-random words.
pub trait Prng {
    /// Next 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `f64` in the open interval `(0, 1)`.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        to_unit_open(self.next_u64())
    }

    /// Next uniform integer in `[0, bound)` (Lemire's multiply-shift, with
    /// rejection to remove modulo bias).
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Lemire 2018: rejection only when lo < bound, negligible for
        // bound << 2^64.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (Floyd's algorithm), sorted.
    ///
    /// # Panics
    /// Panics when `k > n`.
    fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(k as u64 <= n, "sample_distinct: k={k} > n={n}");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        // Floyd: for j in n-k..n, pick t in [0, j]; insert t or j if taken.
        for j in (n - k as u64)..n {
            let t = self.next_below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let mut v: Vec<u64> = chosen.into_iter().collect();
        v.sort_unstable();
        v
    }
}

/// SplitMix64: one 64-bit word of state, full-period, splittable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Prng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        // splitmix64() adds the gamma itself, so feed the pre-increment
        // state through the finalizer only.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — 256 bits of state, period `2^256 − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion (the authors' recommended procedure).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state would be absorbing; SplitMix64 output makes this
        // practically impossible, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = GOLDEN_GAMMA;
        }
        Self { s }
    }

    /// The authors' `jump()`: advance by `2^128` steps, giving independent
    /// parallel substreams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_6161_4C41_6862,
            0x3982_3DC7_4501_5289,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for bit in 0..64 {
                if (j >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Prng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_hash::mix::splitmix64;

    #[test]
    fn splitmix_matches_mix_finalizer() {
        // The sequential generator must agree with the standalone finalizer
        // applied to successive gamma multiples.
        let mut g = SplitMix64::new(42);
        for i in 1..=100u64 {
            let want = splitmix64(42u64.wrapping_add(GOLDEN_GAMMA.wrapping_mul(i - 1)));
            assert_eq!(g.next_u64(), want, "step {i}");
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for the all-distinct seed used by the reference C
        // implementation seeded with s = [1, 2, 3, 4].
        let mut g = Xoshiro256pp { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..6).map(|_| g.next_u64()).collect();
        // Reference values computed from the published algorithm.
        let want = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut g = Xoshiro256pp::new(7);
            (0..10).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Xoshiro256pp::new(7);
            (0..10).map(|_| g.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut g = Xoshiro256pp::new(8);
            (0..10).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn jump_decorrelates_streams() {
        let mut a = Xoshiro256pp::new(9);
        let mut b = a;
        b.jump();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert!(xs.iter().zip(&ys).all(|(x, y)| x != y));
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut g = Xoshiro256pp::new(11);
        let bound = 10u64;
        let n = 100_000;
        let mut counts = vec![0u32; bound as usize];
        for _ in 0..n {
            let x = g.next_below(bound);
            assert!(x < bound);
            counts[x as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let z = (f64::from(c) - expect) / (expect * (1.0 - 1.0 / bound as f64)).sqrt();
            assert!(z.abs() < 5.0, "bucket {i}: {c} (z = {z:.2})");
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        let mut g = SplitMix64::new(0);
        let _ = g.next_below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256pp::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "shuffle left input in order");
    }

    #[test]
    fn sample_distinct_properties() {
        let mut g = Xoshiro256pp::new(17);
        let s = g.sample_distinct(1000, 100);
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted & distinct");
        assert!(s.iter().all(|&x| x < 1000));
        // Full draw.
        let all = g.sample_distinct(5, 5);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // Empty draw.
        assert!(g.sample_distinct(5, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "sample_distinct")]
    fn sample_distinct_rejects_k_above_n() {
        let mut g = SplitMix64::new(1);
        let _ = g.sample_distinct(3, 4);
    }

    #[test]
    fn sample_distinct_is_uniform_over_subsets() {
        // Each index should appear with probability k/n.
        let mut g = Xoshiro256pp::new(19);
        let (n, k, trials) = (20u64, 5usize, 20_000);
        let mut counts = vec![0u32; n as usize];
        for _ in 0..trials {
            for i in g.sample_distinct(n, k) {
                counts[i as usize] += 1;
            }
        }
        let p = k as f64 / n as f64;
        let expect = trials as f64 * p;
        for (i, &c) in counts.iter().enumerate() {
            let z = (f64::from(c) - expect) / (trials as f64 * p * (1.0 - p)).sqrt();
            assert!(z.abs() < 5.0, "index {i}: {c} (z = {z:.2})");
        }
    }
}
