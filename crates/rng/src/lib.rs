//! # `wmh-rng` — deterministic randomness and distributions
//!
//! The review's algorithms consume a small zoo of distributions:
//!
//! * `Uniform(0,1)` — everywhere;
//! * `Exp(λ)` — the uniformity mechanism of ICWS/PCWS/Chum (paper Eq. 8/19/28);
//! * `Gamma(2,1) = −ln(u₁·u₂)` — ICWS `r_k`, `c_k` (paper §4.2.5);
//! * `Beta(2,1)` — CCWS `r_k` (paper Eq. 14);
//! * `Geometric(p)` — the skip lengths of \[Gollapudi et al., 2006\](1) (§4.1);
//! * power-law / Pareto — the synthetic datasets of §6.1.
//!
//! Two consumption styles exist side by side:
//!
//! 1. **Sequential** sampling from a [`prng::Prng`] stream — used by the data
//!    generator and the evaluation harness;
//! 2. **Hashed** sampling, where a variate is a pure function of identifying
//!    coordinates through [`wmh_hash::SeededHash`] — used by the sketching
//!    algorithms, which require the *same* element in *different* sets to see
//!    the *same* variate (consistency). The [`dist`] module supports both via
//!    inverse-CDF transforms of unit uniforms.
//!
//! The [`stats`] module implements the Kolmogorov–Smirnov and χ²
//! goodness-of-fit tests used throughout the workspace's test suites to
//! verify every sampler against its analytic law.

pub mod dist;
pub mod prng;
pub mod stats;

pub use dist::{
    beta21_from_unit, exp_from_unit, gamma21_from_units, geometric_from_unit, pareto_from_unit,
};
pub use prng::{Prng, SplitMix64, Xoshiro256pp};
