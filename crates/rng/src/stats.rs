//! Statistical helpers: summary statistics and goodness-of-fit tests.
//!
//! Used by the test suites of every crate in the workspace to verify samplers
//! and estimator distributions, and by `wmh-eval` to compute the MSE /
//! bias / variance columns of the reproduced figures.

/// Sample mean and *unbiased* sample variance (`n−1` denominator).
///
/// Returns `(0.0, 0.0)` for empty input and `(x, 0.0)` for singletons.
#[must_use]
pub fn mean_and_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, 0.0);
    }
    let ss = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
    (mean, ss / (n - 1) as f64)
}

/// Population standard deviation (`n` denominator) — what MATLAB's
/// `std(x, 1)` computes; used for the Table 4 "Average Std of Weights"
/// column so our numbers are comparable to the paper's.
#[must_use]
pub fn population_std(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let ss = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
    (ss / n as f64).sqrt()
}

/// Mean squared error between paired estimates and truths.
///
/// The paper's Figure 8 metric: `MSE = Σ (est_i − true_i)² / n`.
#[must_use]
pub fn mse(estimates: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truths.len(), "mse: length mismatch");
    if estimates.is_empty() {
        return 0.0;
    }
    estimates.iter().zip(truths).map(|(e, t)| (e - t) * (e - t)).sum::<f64>()
        / estimates.len() as f64
}

/// One-sample Kolmogorov–Smirnov statistic `D = sup |F̂(x) − F(x)|` against a
/// continuous CDF.
///
/// Sorts a copy of the sample; `cdf` must be the hypothesized distribution
/// function. Compare `D` against `c(α)/√n` (`c(0.01) ≈ 1.63`).
#[must_use]
pub fn ks_statistic(sample: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    let mut xs = sample.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Asymptotic p-value for a one-sample KS statistic `D` with sample size
/// `n`, via the Kolmogorov distribution series
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}` with the Stephens small-sample
/// correction `λ = D(√n + 0.12 + 0.11/√n)`.
#[must_use]
pub fn ks_pvalue(d: f64, n: usize) -> f64 {
    if n == 0 || d <= 0.0 {
        return 1.0;
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
    if lambda < 1.18 {
        // Small-λ regime: the alternating series converges too slowly, so
        // use the Jacobi-theta dual form
        // P(K ≤ λ) = (√(2π)/λ) Σ_{k≥1} e^{−(2k−1)²π²/(8λ²)}.
        let mut cdf = 0.0f64;
        for k in 1..=20u32 {
            let m = f64::from(2 * k - 1);
            cdf += (-m * m * std::f64::consts::PI * std::f64::consts::PI / (8.0 * lambda * lambda))
                .exp();
        }
        cdf *= (2.0 * std::f64::consts::PI).sqrt() / lambda;
        (1.0 - cdf).clamp(0.0, 1.0)
    } else {
        let mut sum = 0.0f64;
        for k in 1..=100u32 {
            let kf = f64::from(k);
            let term = (-2.0 * kf * kf * lambda * lambda).exp();
            sum += if k % 2 == 1 { term } else { -term };
            if term < 1e-16 {
                break;
            }
        }
        (2.0 * sum).clamp(0.0, 1.0)
    }
}

/// χ² statistic for observed counts against equal expected frequencies.
#[must_use]
pub fn chi_square_uniform(counts: &[u32]) -> f64 {
    let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    if counts.is_empty() || total == 0 {
        return 0.0;
    }
    let expect = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| {
            let d = f64::from(c) - expect;
            d * d / expect
        })
        .sum()
}

/// Approximate p-value for a χ² statistic with `k−1` degrees of freedom via
/// the Wilson–Hilferty cube-root normal approximation.
#[must_use]
pub fn chi_square_uniform_pvalue(counts: &[u32]) -> f64 {
    let k = counts.len();
    if k < 2 {
        return 1.0;
    }
    let stat = chi_square_uniform(counts);
    let dof = (k - 1) as f64;
    // Wilson–Hilferty: (X/dof)^(1/3) ≈ Normal(1 − 2/(9 dof), 2/(9 dof)).
    let z = ((stat / dof).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dof))) / (2.0 / (9.0 * dof)).sqrt();
    1.0 - standard_normal_cdf(z)
}

/// Standard normal CDF via the complementary-error-function series
/// (Abramowitz & Stegun 7.1.26, |ε| < 1.5·10⁻⁷).
#[must_use]
pub fn standard_normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf_abs = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

/// Two-sided binomial z-test helper: z-score of observing `successes` out of
/// `trials` under success probability `p`.
#[must_use]
pub fn binomial_z(successes: u64, trials: u64, p: f64) -> f64 {
    assert!(trials > 0, "binomial_z: zero trials");
    let n = trials as f64;
    (successes as f64 - n * p) / (n * p * (1.0 - p)).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_basics() {
        assert_eq!(mean_and_var(&[]), (0.0, 0.0));
        assert_eq!(mean_and_var(&[3.0]), (3.0, 0.0));
        let (m, v) = mean_and_var(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn population_std_matches_definition() {
        let s = population_std(&[2.0, 4.0]);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(population_std(&[]), 0.0);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[], &[]), 0.0);
        let m = mse(&[1.0, 2.0], &[0.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[]);
    }

    #[test]
    fn ks_accepts_true_distribution() {
        // Uniform grid against the uniform CDF: D ≈ 1/(2n).
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let d = ks_statistic(&xs, |x| x.clamp(0.0, 1.0));
        assert!(d < 0.002, "D = {d}");
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i as f64 + 0.5) / 1000.0).powi(2)).collect();
        let d = ks_statistic(&xs, |x| x.clamp(0.0, 1.0));
        assert!(d > 0.2, "D = {d}");
    }

    #[test]
    fn ks_pvalue_reference_behaviour() {
        // λ = 1.36 is the classical 5% critical value: p ≈ 0.05.
        let n = 10_000usize;
        let d_crit = 1.36 / (n as f64).sqrt();
        let p = ks_pvalue(d_crit, n);
        assert!((p - 0.05).abs() < 0.01, "p at the 5% critical value: {p}");
        // Tiny D → p ≈ 1; huge D → p ≈ 0.
        assert!(ks_pvalue(1e-6, n) > 0.999);
        assert!(ks_pvalue(0.1, n) < 1e-12);
        assert_eq!(ks_pvalue(0.5, 0), 1.0);
    }

    #[test]
    fn ks_pvalue_accepts_true_uniform_sample() {
        // Uniform grid against the uniform CDF has D ≈ 1/(2n): p ≈ 1.
        let xs: Vec<f64> = (0..2000).map(|i| (i as f64 + 0.5) / 2000.0).collect();
        let d = ks_statistic(&xs, |x| x.clamp(0.0, 1.0));
        assert!(ks_pvalue(d, xs.len()) > 0.99);
    }

    #[test]
    fn chi_square_on_perfectly_uniform_counts_is_zero() {
        assert_eq!(chi_square_uniform(&[10, 10, 10, 10]), 0.0);
        assert!(chi_square_uniform_pvalue(&[100, 100, 100, 100]) > 0.9);
    }

    #[test]
    fn chi_square_detects_skew() {
        let p = chi_square_uniform_pvalue(&[400, 100, 100, 100]);
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(8.0) > 0.999_999);
        assert!(standard_normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn binomial_z_centering() {
        assert_eq!(binomial_z(50, 100, 0.5), 0.0);
        assert!(binomial_z(80, 100, 0.5) > 5.0);
        assert!(binomial_z(20, 100, 0.5) < -5.0);
    }

    #[test]
    fn pearson_reference() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }
}
