//! Property-based tests of the randomness layer (`wmh-check` driven).

use wmh_check::{ensure, run_cases};
use wmh_rng::dist::{
    beta21_from_unit, cauchy_from_unit, exp_from_unit, gamma21_from_units, geometric_from_unit,
    normal_from_units, pareto_from_unit, Zipf,
};
use wmh_rng::{Prng, SplitMix64, Xoshiro256pp};

/// A uniform strictly inside (0, 1).
fn unit(g: &mut wmh_check::Gen) -> f64 {
    g.range_f64(1e-12, 1.0 - 1e-12)
}

#[test]
fn inverse_cdf_transforms_have_correct_supports() {
    run_cases(512, |g| {
        let (u1, u2) = (unit(g), unit(g));
        let rate = g.log_uniform(-6.0, 6.0);
        let alpha = g.range_f64(0.5, 10.0);
        let scale = g.log_uniform(-6.0, 6.0);
        ensure!(exp_from_unit(u1, rate) > 0.0, "exp support");
        ensure!(gamma21_from_units(u1, u2) > 0.0, "gamma support");
        let b = beta21_from_unit(u1);
        ensure!(b > 0.0 && b < 1.0, "beta support: {b}");
        let p = pareto_from_unit(u1, alpha, scale);
        ensure!(p >= scale, "pareto below scale: {p} < {scale}");
        ensure!(normal_from_units(u1, u2).is_finite(), "normal not finite");
        ensure!(cauchy_from_unit(u1).is_finite(), "cauchy not finite");
        Ok(())
    });
}

#[test]
fn inverse_cdfs_are_monotone() {
    run_cases(512, |g| {
        let (u1, u2) = (unit(g), unit(g));
        let rate = g.log_uniform(-2.0, 2.0);
        let (lo, hi) = if u1 < u2 { (u1, u2) } else { (u2, u1) };
        if lo < hi {
            // Exp inverse CDF via -ln(u) is *decreasing* in u.
            ensure!(exp_from_unit(lo, rate) >= exp_from_unit(hi, rate), "exp not decreasing");
            ensure!(beta21_from_unit(lo) <= beta21_from_unit(hi), "beta not increasing");
        }
        Ok(())
    });
}

#[test]
fn geometric_saturates_not_panics() {
    run_cases(512, |g| {
        let u = unit(g);
        let p = g.log_uniform(-300.0, 0.0).min(1.0 - 1e-16);
        // Just exercising the full parameter space: no panic, defined value.
        let _ = geometric_from_unit(u, p);
        Ok(())
    });
}

#[test]
fn geometric_mean_survives_tiny_p() {
    // Regression: `(1.0 - p).ln()` rounds to 0 for p below one f64 ulp of
    // 1.0, making every skip 0 — the active-index walk then degenerates to
    // a per-subelement crawl. With ln_1p the skip keeps its ≈ 1/p scale all
    // the way down to MIN_POSITIVE (where it saturates).
    for exp in [-20, -40, -100, -200, -300] {
        let p = 10f64.powi(exp);
        let skip = geometric_from_unit(0.5, p);
        let expected = core::f64::consts::LN_2 / p; // -ln(0.5)/p
        if expected >= u64::MAX as f64 {
            assert_eq!(skip, u64::MAX, "p=1e{exp} should saturate");
        } else {
            let ratio = skip as f64 / expected;
            assert!((0.99..1.01).contains(&ratio), "p=1e{exp}: skip {skip} vs {expected}");
        }
    }
    assert_eq!(geometric_from_unit(0.5, f64::MIN_POSITIVE), u64::MAX);
}

#[test]
fn prng_streams_are_reproducible() {
    run_cases(512, |g| {
        let seed = g.u64();
        let mut a = Xoshiro256pp::new(seed);
        let mut b = Xoshiro256pp::new(seed);
        for _ in 0..16 {
            ensure!(a.next_u64() == b.next_u64(), "xoshiro streams diverge for {seed}");
        }
        let mut c = SplitMix64::new(seed);
        let mut d = SplitMix64::new(seed);
        ensure!(c.next_u64() == d.next_u64(), "splitmix streams diverge for {seed}");
        Ok(())
    });
}

#[test]
fn next_below_always_in_range() {
    run_cases(512, |g| {
        let seed = g.u64();
        let bound = g.range_u64(1, u64::MAX - 1);
        let mut r = SplitMix64::new(seed);
        for _ in 0..8 {
            ensure!(r.next_below(bound) < bound, "next_below escaped {bound}");
        }
        Ok(())
    });
}

#[test]
fn sample_distinct_is_sorted_distinct_in_range() {
    run_cases(512, |g| {
        let seed = g.u64();
        let n = g.range_u64(1, 9_999);
        let frac = g.unit();
        let k = ((n as f64 * frac) as usize).min(n as usize);
        let mut r = Xoshiro256pp::new(seed);
        let s = r.sample_distinct(n, k);
        ensure!(s.len() == k, "len {} != k {k}", s.len());
        ensure!(s.windows(2).all(|w| w[0] < w[1]), "not sorted distinct");
        ensure!(s.iter().all(|&x| x < n), "sample escapes range {n}");
        Ok(())
    });
}

#[test]
fn zipf_samples_in_support() {
    run_cases(512, |g| {
        let seed = g.u64();
        let n = g.range_usize(1, 499);
        let s = g.range_f64(0.0, 3.0);
        let z = Zipf::new(n, s).expect("valid");
        let mut r = Xoshiro256pp::new(seed);
        for _ in 0..8 {
            let x = z.sample(&mut r);
            ensure!((1..=n).contains(&x), "zipf sample {x} outside 1..={n}");
        }
        Ok(())
    });
}
