//! Property-based tests of the randomness layer.

use proptest::prelude::*;
use wmh_rng::dist::{
    beta21_from_unit, cauchy_from_unit, exp_from_unit, gamma21_from_units, geometric_from_unit,
    normal_from_units, pareto_from_unit, Zipf,
};
use wmh_rng::{Prng, SplitMix64, Xoshiro256pp};

/// Strategy: a uniform strictly inside (0, 1).
fn unit() -> impl Strategy<Value = f64> {
    (1e-12f64..1.0 - 1e-12).prop_map(|x| x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn inverse_cdf_transforms_have_correct_supports(u1 in unit(), u2 in unit(),
                                                    rate in 1e-6f64..1e6,
                                                    alpha in 0.5f64..10.0,
                                                    scale in 1e-6f64..1e6) {
        prop_assert!(exp_from_unit(u1, rate) > 0.0);
        prop_assert!(gamma21_from_units(u1, u2) > 0.0);
        let b = beta21_from_unit(u1);
        prop_assert!(b > 0.0 && b < 1.0);
        let p = pareto_from_unit(u1, alpha, scale);
        prop_assert!(p >= scale);
        prop_assert!(normal_from_units(u1, u2).is_finite());
        prop_assert!(cauchy_from_unit(u1).is_finite());
    }

    #[test]
    fn inverse_cdfs_are_monotone(u1 in unit(), u2 in unit(), rate in 0.01f64..100.0) {
        let (lo, hi) = if u1 < u2 { (u1, u2) } else { (u2, u1) };
        if lo < hi {
            // Exp inverse CDF via -ln(u) is *decreasing* in u.
            prop_assert!(exp_from_unit(lo, rate) >= exp_from_unit(hi, rate));
            prop_assert!(beta21_from_unit(lo) <= beta21_from_unit(hi));
        }
    }

    #[test]
    fn geometric_saturates_not_panics(u in unit(), p in 1e-300f64..1.0) {
        let g = geometric_from_unit(u, p);
        // Just exercising the full parameter space: no panic, defined value.
        prop_assert!(g <= u64::MAX);
    }

    #[test]
    fn prng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = Xoshiro256pp::new(seed);
        let mut b = Xoshiro256pp::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(seed);
        let mut d = SplitMix64::new(seed);
        prop_assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn next_below_always_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut g = SplitMix64::new(seed);
        for _ in 0..8 {
            prop_assert!(g.next_below(bound) < bound);
        }
    }

    #[test]
    fn sample_distinct_is_sorted_distinct_in_range(seed in any::<u64>(), n in 1u64..10_000, frac in 0.0f64..1.0) {
        let k = ((n as f64 * frac) as usize).min(n as usize);
        let mut g = Xoshiro256pp::new(seed);
        let s = g.sample_distinct(n, k);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&x| x < n));
    }

    #[test]
    fn zipf_samples_in_support(seed in any::<u64>(), n in 1usize..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).expect("valid");
        let mut g = Xoshiro256pp::new(seed);
        for _ in 0..8 {
            let r = z.sample(&mut g);
            prop_assert!((1..=n).contains(&r));
        }
    }
}
