//! Synthetic text-like workloads: Zipf token frequencies with topic
//! mixtures.
//!
//! The paper's motivating domain is bag-of-words text (§1). Where the
//! `SynESS` generator controls the *weight law* directly, this module
//! controls the *token process*: documents draw tokens from a Zipf
//! distribution over a topic vocabulary, which is what makes tf/tf-idf
//! weights arise organically. Used by the classification pipeline tests
//! and the streaming experiment.

use wmh_rng::dist::Zipf;
use wmh_rng::{Prng, Xoshiro256pp};
use wmh_sets::WeightedSet;

/// Configuration of a topic-mixture text corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextConfig {
    /// Number of topics; each owns a disjoint vocabulary block.
    pub topics: usize,
    /// Vocabulary size per topic.
    pub vocab_per_topic: u64,
    /// Tokens drawn per document.
    pub tokens_per_doc: usize,
    /// Zipf exponent of the within-topic token distribution.
    pub zipf_exponent: f64,
    /// Probability that a token comes from the document's own topic
    /// (the remainder is drawn from a shared background topic 0).
    pub topical_fraction: f64,
}

wmh_json::json_object!(TextConfig {
    topics,
    vocab_per_topic,
    tokens_per_doc,
    zipf_exponent,
    topical_fraction,
});

impl TextConfig {
    /// A small default: 4 topics, 2 000-token vocabularies, 120 tokens per
    /// document, Zipf(1.1), 70% topical.
    #[must_use]
    pub fn small() -> Self {
        Self {
            topics: 4,
            vocab_per_topic: 2_000,
            tokens_per_doc: 120,
            zipf_exponent: 1.1,
            topical_fraction: 0.7,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns a description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.topics == 0 {
            return Err("topics must be positive".into());
        }
        if self.vocab_per_topic == 0 {
            return Err("vocab_per_topic must be positive".into());
        }
        if self.tokens_per_doc == 0 {
            return Err("tokens_per_doc must be positive".into());
        }
        if !(self.zipf_exponent.is_finite() && self.zipf_exponent >= 0.0) {
            return Err(format!("zipf_exponent {} invalid", self.zipf_exponent));
        }
        if !(0.0..=1.0).contains(&self.topical_fraction) {
            return Err(format!("topical_fraction {} outside [0, 1]", self.topical_fraction));
        }
        Ok(())
    }

    /// Generate `docs_per_topic` labeled tf documents per topic.
    ///
    /// Returns `(tf weighted set, topic label)` pairs; token ids are
    /// `topic · vocab_per_topic + rank`.
    ///
    /// # Errors
    /// Propagates [`Self::validate`] failures.
    pub fn generate(
        &self,
        docs_per_topic: usize,
        seed: u64,
    ) -> Result<Vec<(WeightedSet, usize)>, String> {
        self.validate()?;
        let zipf = Zipf::new(self.vocab_per_topic as usize, self.zipf_exponent)
            .map_err(|e| e.to_string())?;
        let mut rng = Xoshiro256pp::new(seed ^ 0x7E97);
        let mut out = Vec::with_capacity(self.topics * docs_per_topic);
        for topic in 0..self.topics {
            for _ in 0..docs_per_topic {
                let mut counts: std::collections::BTreeMap<u64, u64> = Default::default();
                for _ in 0..self.tokens_per_doc {
                    let own = rng.next_f64() < self.topical_fraction;
                    let block = if own { topic as u64 } else { 0 };
                    let rank = zipf.sample(&mut rng) as u64 - 1;
                    *counts.entry(block * self.vocab_per_topic + rank).or_insert(0) += 1;
                }
                let tf = WeightedSet::from_pairs(counts.into_iter().map(|(k, c)| (k, c as f64)))
                    .expect("counts positive");
                out.push((tf, topic));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_sets::generalized_jaccard;

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = TextConfig::small();
        c.topics = 0;
        assert!(c.validate().is_err());
        let mut c = TextConfig::small();
        c.topical_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = TextConfig::small();
        c.zipf_exponent = f64::NAN;
        assert!(c.validate().is_err());
        assert!(TextConfig::small().validate().is_ok());
    }

    #[test]
    fn corpus_shape_and_labels() {
        let cfg = TextConfig::small();
        let corpus = cfg.generate(5, 1).unwrap();
        assert_eq!(corpus.len(), 20);
        for (doc, topic) in &corpus {
            assert!(*topic < 4);
            assert!(!doc.is_empty());
            // tf mass equals tokens drawn.
            assert!((doc.total_weight() - 120.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_topic_documents_are_more_similar() {
        let cfg = TextConfig::small();
        let corpus = cfg.generate(6, 2).unwrap();
        let same: Vec<f64> =
            (0..5).map(|i| generalized_jaccard(&corpus[i].0, &corpus[i + 1].0)).collect();
        let cross: Vec<f64> =
            (0..5).map(|i| generalized_jaccard(&corpus[i].0, &corpus[i + 7].0)).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) > mean(&cross) + 0.05,
            "same-topic {} vs cross-topic {}",
            mean(&same),
            mean(&cross)
        );
    }

    #[test]
    fn token_frequencies_are_zipfian() {
        // Rank-1 tokens should dominate: the max tf in a doc well above the
        // median tf.
        let cfg = TextConfig { tokens_per_doc: 500, ..TextConfig::small() };
        let corpus = cfg.generate(1, 3).unwrap();
        let doc = &corpus[0].0;
        let mut ws: Vec<f64> = doc.weights().to_vec();
        ws.sort_by(f64::total_cmp);
        let median = ws[ws.len() / 2];
        let max = ws[ws.len() - 1];
        assert!(max >= 8.0 * median, "max {max} median {median}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = TextConfig::small();
        let a = cfg.generate(2, 5).unwrap();
        let b = cfg.generate(2, 5).unwrap();
        let c = cfg.generate(2, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
