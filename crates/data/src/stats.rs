//! Dataset summary statistics — the columns of Table 4.

use crate::synthetic::Dataset;
use std::collections::HashMap;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// "# of Docs".
    pub docs: usize,
    /// "# of Features" (universe size).
    pub features: u64,
    /// "Average Density": mean fraction of universe elements with positive
    /// weight per document.
    pub avg_density: f64,
    /// "Average Mean of Weights": for each element, the mean of its nonzero
    /// weights across documents; averaged over elements.
    pub avg_mean_weight: f64,
    /// "Average Std of Weights": for each element, the sample standard
    /// deviation (n−1, matching MATLAB's `std`) of its nonzero weights
    /// across documents — 0 for elements seen once; averaged over elements.
    pub avg_std_weight: f64,
}

wmh_json::json_object!(DatasetSummary {
    name,
    docs,
    features,
    avg_density,
    avg_mean_weight,
    avg_std_weight,
});

impl DatasetSummary {
    /// Compute the Table 4 row for a dataset.
    #[must_use]
    pub fn compute(dataset: &Dataset) -> Self {
        let docs = dataset.docs.len();
        let features = dataset.config.features;
        let avg_density = if docs == 0 {
            0.0
        } else {
            dataset.docs.iter().map(|d| d.len() as f64 / features as f64).sum::<f64>() / docs as f64
        };
        // Per-element nonzero weights across documents.
        let mut per_element: HashMap<u64, Vec<f64>> = HashMap::new();
        for doc in &dataset.docs {
            for (k, w) in doc.iter() {
                per_element.entry(k).or_default().push(w);
            }
        }
        let n_elem = per_element.len() as f64;
        let (mut mean_acc, mut std_acc) = (0.0f64, 0.0f64);
        for ws in per_element.values() {
            let (mean, var) = wmh_rng::stats::mean_and_var(ws);
            mean_acc += mean;
            std_acc += var.sqrt();
        }
        let (avg_mean_weight, avg_std_weight) =
            if n_elem > 0.0 { (mean_acc / n_elem, std_acc / n_elem) } else { (0.0, 0.0) };
        Self {
            name: dataset.name.clone(),
            docs,
            features,
            avg_density,
            avg_mean_weight,
            avg_std_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SynConfig;
    use wmh_sets::WeightedSet;

    #[test]
    fn hand_computed_summary() {
        let docs = vec![
            WeightedSet::from_pairs([(0, 1.0), (1, 2.0)]).unwrap(),
            WeightedSet::from_pairs([(0, 3.0)]).unwrap(),
        ];
        let cfg = SynConfig { docs: 2, features: 10, density: 0.15, exponent: 3.0, scale: 0.2 };
        let ds = Dataset { name: "toy".into(), config: cfg, docs };
        let s = DatasetSummary::compute(&ds);
        assert_eq!(s.docs, 2);
        assert_eq!(s.features, 10);
        // Densities: 2/10 and 1/10 → 0.15.
        assert!((s.avg_density - 0.15).abs() < 1e-12);
        // Element 0: weights [1, 3] → mean 2, std √2; element 1: [2] → 2, 0.
        assert!((s.avg_mean_weight - 2.0).abs() < 1e-12);
        assert!((s.avg_std_weight - std::f64::consts::SQRT_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_summary_matches_generator_parameters() {
        // A moderately sized SynESS sample must land near the paper's
        // Table 4 row for s = 0.2: density 0.005, mean ≈ 0.30.
        let cfg =
            SynConfig { docs: 300, features: 10_000, density: 0.005, exponent: 3.0, scale: 0.2 };
        let ds = cfg.generate(42).unwrap();
        let s = DatasetSummary::compute(&ds);
        assert!((s.avg_density - 0.005).abs() < 1e-4, "density {}", s.avg_density);
        assert!((s.avg_mean_weight - 0.30).abs() < 0.02, "mean {}", s.avg_mean_weight);
        // Sample std of few heavy-tailed draws per element: positive and
        // below the population value 0.173 (Table 4 reports ≈ 0.10).
        assert!(s.avg_std_weight > 0.02 && s.avg_std_weight < 0.173, "std {}", s.avg_std_weight);
    }

    #[test]
    fn empty_dataset_summary() {
        let cfg = SynConfig { docs: 1, features: 10, density: 0.1, exponent: 3.0, scale: 0.2 };
        let ds = Dataset { name: "empty".into(), config: cfg, docs: vec![] };
        let s = DatasetSummary::compute(&ds);
        assert_eq!(s.docs, 0);
        assert_eq!(s.avg_density, 0.0);
        assert_eq!(s.avg_mean_weight, 0.0);
        assert_eq!(s.avg_std_weight, 0.0);
    }
}
