//! The `SynESS` synthetic dataset generator (paper §6.1, Table 4).

use wmh_rng::dist::pareto_from_unit;
use wmh_rng::{Prng, Xoshiro256pp};
use wmh_sets::WeightedSet;

/// Configuration of one `SynEeSs` dataset.
///
/// ```
/// use wmh_data::SynConfig;
/// let cfg = SynConfig { docs: 10, features: 1000, density: 0.02,
///                       exponent: 3.0, scale: 0.2 };
/// assert_eq!(cfg.name(), "Syn3E0.2S");
/// let ds = cfg.generate(1).unwrap();
/// assert_eq!(ds.len(), 10);
/// assert_eq!(ds.docs[0].len(), 20); // features · density
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynConfig {
    /// Number of documents ("# of Docs", 1 000 in the paper).
    pub docs: usize,
    /// Universe size ("# of Features", 100 000 in the paper).
    pub features: u64,
    /// Fraction of features with positive weight per document (0.005).
    pub density: f64,
    /// Power-law exponent `e` (Pareto shape α; 3 in all paper datasets).
    pub exponent: f64,
    /// Power-law scale `s` (Pareto scale; 0.2 … 0.3 in the paper).
    pub scale: f64,
}

impl SynConfig {
    /// The paper's naming scheme: `Syn{e}E{s}S`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("Syn{}E{}S", self.exponent, self.scale)
    }

    /// Nonzero features per document (`⌈features · density⌉`).
    #[must_use]
    pub fn nonzeros_per_doc(&self) -> usize {
        (self.features as f64 * self.density).round() as usize
    }

    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns a description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.docs == 0 {
            return Err("docs must be positive".into());
        }
        if self.features == 0 {
            return Err("features must be positive".into());
        }
        if !(self.density > 0.0 && self.density <= 1.0) {
            return Err(format!("density {} outside (0, 1]", self.density));
        }
        if !(self.exponent.is_finite() && self.exponent > 0.0) {
            return Err(format!("exponent {} must be positive", self.exponent));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!("scale {} must be positive", self.scale));
        }
        Ok(())
    }

    /// A laptop-scale copy of this configuration (fewer docs/features, same
    /// density and weight law — the MSE behaviour per pair is unchanged).
    #[must_use]
    pub fn scaled_down(&self, docs: usize, features: u64) -> Self {
        Self { docs, features, ..*self }
    }

    /// A laptop-scale copy that *preserves the expected pairwise overlap*:
    /// the expected number of common features between two documents is
    /// `density² · features` (2.5 for the paper's 0.005 × 100 000), so the
    /// density is rescaled by `√(features_old / features_new)`. This keeps
    /// pair similarities — and therefore the MSE regime of Figure 8 — at
    /// the paper's level while shrinking the universe.
    #[must_use]
    pub fn scaled_down_preserving_overlap(&self, docs: usize, features: u64) -> Self {
        let density = (self.density * (self.features as f64 / features as f64).sqrt()).min(1.0);
        Self { docs, features, density, ..*self }
    }

    /// Generate the dataset deterministically from `seed`.
    ///
    /// # Errors
    /// Propagates [`Self::validate`] failures.
    pub fn generate(&self, seed: u64) -> Result<Dataset, String> {
        self.validate()?;
        let nnz = self.nonzeros_per_doc().max(1);
        let mut rng = Xoshiro256pp::new(seed ^ 0x5D47_A5E7);
        let mut docs = Vec::with_capacity(self.docs);
        for _ in 0..self.docs {
            // "we uniformly produce the dimensions" — distinct features per
            // doc, uniform over the universe.
            let indices = rng.sample_distinct(self.features, nnz);
            let pairs = indices.into_iter().map(|k| {
                let w = pareto_from_unit(rng.next_f64(), self.exponent, self.scale);
                (k, w)
            });
            docs.push(WeightedSet::from_pairs(pairs).expect("generator emits valid weights"));
        }
        Ok(Dataset { name: self.name(), config: *self, docs })
    }
}

/// The six datasets of Table 4: `e = 3`, `s ∈ {0.2, 0.22, …, 0.3}`.
pub const PAPER_DATASETS: [SynConfig; 6] = {
    const fn cfg(scale: f64) -> SynConfig {
        SynConfig { docs: 1000, features: 100_000, density: 0.005, exponent: 3.0, scale }
    }
    [cfg(0.2), cfg(0.22), cfg(0.24), cfg(0.26), cfg(0.28), cfg(0.3)]
};

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Paper-style name, e.g. `Syn3E0.2S`.
    pub name: String,
    /// The generating configuration.
    pub config: SynConfig,
    /// The documents.
    pub docs: Vec<WeightedSet>,
}

wmh_json::json_object!(SynConfig { docs, features, density, exponent, scale });
wmh_json::json_object!(Dataset { name, config, docs });

impl Dataset {
    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Persist to a JSON file (floats render shortest-roundtrip, so the
    /// file is bit-exact on reload).
    ///
    /// # Errors
    /// I/O failures, stringified.
    pub fn save_json(&self, path: &std::path::Path) -> Result<(), String> {
        let text = wmh_json::to_string(self);
        std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Load from a JSON file produced by [`Self::save_json`].
    ///
    /// # Errors
    /// I/O or parse failures, stringified.
    pub fn load_json(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        wmh_json::from_str(&text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynConfig {
        SynConfig { docs: 50, features: 2_000, density: 0.01, exponent: 3.0, scale: 0.2 }
    }

    #[test]
    fn paper_configs_are_valid_and_named() {
        for cfg in PAPER_DATASETS {
            cfg.validate().expect("paper config valid");
            assert_eq!(cfg.docs, 1000);
            assert_eq!(cfg.features, 100_000);
            assert_eq!(cfg.nonzeros_per_doc(), 500);
        }
        assert_eq!(PAPER_DATASETS[0].name(), "Syn3E0.2S");
        assert_eq!(PAPER_DATASETS[5].name(), "Syn3E0.3S");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = small();
        c.docs = 0;
        assert!(c.validate().is_err());
        let mut c = small();
        c.density = 0.0;
        assert!(c.validate().is_err());
        let mut c = small();
        c.density = 1.5;
        assert!(c.validate().is_err());
        let mut c = small();
        c.exponent = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = small();
        c.scale = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let cfg = small();
        let a = cfg.generate(7).unwrap();
        let b = cfg.generate(7).unwrap();
        let c = cfg.generate(8).unwrap();
        assert_eq!(a.docs, b.docs);
        assert_ne!(a.docs, c.docs);
    }

    #[test]
    fn documents_have_requested_shape() {
        let cfg = small();
        let ds = cfg.generate(1).unwrap();
        assert_eq!(ds.len(), 50);
        for doc in &ds.docs {
            assert_eq!(doc.len(), cfg.nonzeros_per_doc());
            assert!(doc.indices().iter().all(|&i| i < cfg.features));
            // Pareto support: every weight at least the scale parameter.
            assert!(doc.weights().iter().all(|&w| w >= cfg.scale));
        }
    }

    #[test]
    fn weights_follow_the_configured_power_law() {
        let cfg = SynConfig { docs: 200, ..small() };
        let ds = cfg.generate(3).unwrap();
        let all: Vec<f64> = ds.docs.iter().flat_map(|d| d.weights().to_vec()).collect();
        // Pareto(3, 0.2): mean 0.3.
        let (mean, _) = wmh_rng::stats::mean_and_var(&all);
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
        let d = wmh_rng::stats::ks_statistic(&all, |x| {
            if x < 0.2 {
                0.0
            } else {
                1.0 - (0.2f64 / x).powi(3)
            }
        });
        assert!(d < 1.63 / (all.len() as f64).sqrt() * 2.0, "KS D = {d}");
    }

    #[test]
    fn scaled_down_preserves_the_law() {
        let full = PAPER_DATASETS[0];
        let small = full.scaled_down(20, 1_000);
        assert_eq!(small.density, full.density);
        assert_eq!(small.exponent, full.exponent);
        assert_eq!(small.scale, full.scale);
        assert_eq!(small.docs, 20);
        small.validate().unwrap();
    }

    #[test]
    fn file_roundtrip_is_bit_exact() {
        let ds = small().generate(11).unwrap();
        let path = std::env::temp_dir().join("wmh_dataset_roundtrip.json");
        ds.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        assert_eq!(ds.docs, back.docs);
        assert_eq!(ds.config, back.config);
        assert!(Dataset::load_json(std::path::Path::new("/missing/nope.json")).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let ds = small().generate(9).unwrap();
        let json = wmh_json::to_string(&ds);
        let back: Dataset = wmh_json::from_str(&json).unwrap();
        assert_eq!(ds.docs, back.docs);
        assert_eq!(ds.name, back.name);
    }
}
