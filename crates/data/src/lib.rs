//! # `wmh-data` — synthetic workloads and dataset statistics
//!
//! The paper's experiments (§6.1) run on synthetic bag-of-words data:
//! *"each of which contain 1,000 samples and 100,000 features … the nonzero
//! weights in each vector sample conform to a power-law distribution with
//! the exponent parameter e and the scale parameter s"*, named `SynEeSs`
//! (e.g. `Syn3E0.2S`). This crate provides:
//!
//! * [`synthetic`] — the `SynESS` generator and the six Table 4
//!   configurations ([`synthetic::PAPER_DATASETS`]);
//! * [`stats`] — the Table 4 summary columns (docs, features, average
//!   density, average mean / std of per-element nonzero weights);
//! * [`pairs`] — pair sampling for the MSE experiments and
//!   controlled-similarity pair construction for calibration tests;
//! * [`text`] — Zipf-token topic-mixture corpora, where tf weights arise
//!   organically (the bag-of-words domain of §1).

pub mod pairs;
pub mod stats;
pub mod synthetic;
pub mod text;

pub use stats::DatasetSummary;
pub use synthetic::{Dataset, SynConfig, PAPER_DATASETS};
