//! Pair sampling and controlled-similarity pair construction.
//!
//! The MSE experiment (Figure 8) averages squared estimator error over
//! document pairs; [`sample_pairs`] draws a uniform sample of distinct
//! pairs so the laptop-scale default run does not need all ~500 000 of
//! them. [`controlled_pair`] builds a pair with a *prescribed* generalized
//! Jaccard similarity, used by calibration tests and the quickstart
//! example.

use wmh_rng::{Prng, Xoshiro256pp};
use wmh_sets::WeightedSet;

/// Sample `count` distinct unordered pairs `(i, j)`, `i < j`, from
/// `0..n` uniformly (or all pairs if `count` covers them).
///
/// # Panics
/// Panics when `n < 2`.
#[must_use]
pub fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(n >= 2, "need at least two documents to form pairs");
    let total = n * (n - 1) / 2;
    if count >= total {
        let mut all = Vec::with_capacity(total);
        for i in 0..n {
            for j in (i + 1)..n {
                all.push((i, j));
            }
        }
        return all;
    }
    // Sample distinct linear pair indices, then invert the triangular map.
    let mut rng = Xoshiro256pp::new(seed ^ 0x9A17_55ED);
    rng.sample_distinct(total as u64, count).into_iter().map(|lin| unrank_pair(lin, n)).collect()
}

/// Invert the row-major triangular enumeration of pairs `(i, j)`, `i < j`.
fn unrank_pair(lin: u64, n: usize) -> (usize, usize) {
    // Row i starts at offset i·n − i(i+1)/2 − i … find by scan-free math:
    // solve the quadratic, then fix up boundary cases.
    let nf = n as f64;
    let lf = lin as f64;
    let mut i = (nf - 0.5 - (nf * nf - nf - 2.0 * lf + 0.25).max(0.0).sqrt()).floor() as usize;
    loop {
        let row_start = |i: usize| (i * (2 * n - i - 1) / 2) as u64;
        if row_start(i) > lin {
            i -= 1;
            continue;
        }
        if i + 1 < n && row_start(i + 1) <= lin {
            i += 1;
            continue;
        }
        let j = i + 1 + (lin - row_start(i)) as usize;
        return (i, j);
    }
}

/// Build a pair of weighted sets whose generalized Jaccard similarity is
/// exactly `target` (up to float rounding): both sets share `support`
/// elements of weight 1, and each side carries private mass
/// `p = support·(1 − J)/(2J)` (from `J = m/(m + 2p)`), spread over
/// unit-weight private elements plus one fractional remainder so the weight
/// profile stays natural.
///
/// # Panics
/// Panics unless `0 < target ≤ 1`.
#[must_use]
pub fn controlled_pair(target: f64, support: usize, base_index: u64) -> (WeightedSet, WeightedSet) {
    assert!(target > 0.0 && target <= 1.0, "target similarity out of (0, 1]");
    let support = support.max(1);
    let shared_mass = support as f64;
    let private_mass = shared_mass * (1.0 - target) / (2.0 * target);
    let mut s: Vec<(u64, f64)> = (0..support as u64).map(|k| (base_index + k, 1.0)).collect();
    let mut t = s.clone();
    // Spread each side's private mass over unit-weight elements, disjoint
    // between the two sides.
    let add_private = |out: &mut Vec<(u64, f64)>, side: u64| {
        let whole = private_mass.floor() as u64;
        let frac = private_mass - whole as f64;
        let start = base_index + support as u64 + side * (whole + 2);
        for i in 0..whole {
            out.push((start + i, 1.0));
        }
        if frac > 1e-12 {
            out.push((start + whole, frac));
        }
    };
    if private_mass > 0.0 {
        add_private(&mut s, 0);
        add_private(&mut t, 1);
    }
    (
        WeightedSet::from_pairs(s).expect("valid construction"),
        WeightedSet::from_pairs(t).expect("valid construction"),
    )
}

/// Histogram of exact pair similarities over a document sample: `bins`
/// equal-width buckets on `[0, 1]`, returned as counts. Useful for judging
/// which MSE regime an experiment runs in (the paper's synthetic pairs sit
/// almost entirely in the first bucket).
///
/// # Panics
/// Panics when `bins == 0` or fewer than two documents are given.
#[must_use]
pub fn similarity_histogram(
    docs: &[WeightedSet],
    max_pairs: usize,
    bins: usize,
    seed: u64,
) -> Vec<u64> {
    assert!(bins > 0, "need at least one bin");
    let pairs = sample_pairs(docs.len(), max_pairs, seed);
    let mut counts = vec![0u64; bins];
    for (i, j) in pairs {
        let s = wmh_sets::generalized_jaccard(&docs[i], &docs[j]);
        let b = ((s * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_sets::generalized_jaccard;

    #[test]
    fn sample_pairs_all_when_budget_covers() {
        let pairs = sample_pairs(5, 100, 1);
        assert_eq!(pairs.len(), 10);
        assert!(pairs.iter().all(|&(i, j)| i < j && j < 5));
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn sample_pairs_distinct_and_in_range() {
        let pairs = sample_pairs(100, 500, 2);
        assert_eq!(pairs.len(), 500);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 500, "pairs must be distinct");
        assert!(pairs.iter().all(|&(i, j)| i < j && j < 100));
    }

    #[test]
    fn sample_pairs_is_deterministic() {
        assert_eq!(sample_pairs(50, 30, 7), sample_pairs(50, 30, 7));
        assert_ne!(sample_pairs(50, 30, 7), sample_pairs(50, 30, 8));
    }

    #[test]
    fn unrank_covers_triangle_bijectively() {
        let n = 13;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for lin in 0..total as u64 {
            let (i, j) = unrank_pair(lin, n);
            assert!(i < j && j < n, "lin {lin} → ({i}, {j})");
            assert!(seen.insert((i, j)), "duplicate at {lin}");
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn sample_pairs_needs_two_docs() {
        let _ = sample_pairs(1, 1, 0);
    }

    #[test]
    fn controlled_pair_hits_target() {
        for target in [0.1, 0.25, 0.5, 0.9, 1.0] {
            let (s, t) = controlled_pair(target, 20, 0);
            let j = generalized_jaccard(&s, &t);
            assert!((j - target).abs() < 1e-9, "target {target}: got {j}");
        }
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn controlled_pair_rejects_zero() {
        let _ = controlled_pair(0.0, 5, 0);
    }

    #[test]
    fn similarity_histogram_buckets_correctly() {
        // Three exact-duplicate docs and one disjoint doc: pairs land in
        // the last bucket (sim 1) and the first (sim 0).
        let a = WeightedSet::from_pairs([(1, 1.0), (2, 1.0)]).unwrap();
        let b = WeightedSet::from_pairs([(9, 1.0)]).unwrap();
        let docs = vec![a.clone(), a.clone(), a, b];
        let h = similarity_histogram(&docs, 100, 10, 1);
        assert_eq!(h.iter().sum::<u64>(), 6, "all C(4,2) pairs counted");
        assert_eq!(h[9], 3, "three duplicate pairs at similarity 1");
        assert_eq!(h[0], 3, "three disjoint pairs at similarity 0");
    }
}
