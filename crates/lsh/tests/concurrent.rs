//! Concurrent ingest/query: `LshIndex` results must be independent of the
//! interleaving in which documents were ingested.
//!
//! The index itself is `&mut` for ingest (callers serialize through a
//! lock, as the serving layer's shard threads do), so the property under
//! test is *insertion-order independence*: candidates are keyed by band
//! buckets and results are re-ranked with deterministic tie-breaks, so any
//! thread-count / any interleaving must produce set-equal candidates and
//! identical ranked results. `wmh_check::stress::hammer` provides the
//! barrier-released fan-out that makes interleavings actually overlap.

use std::sync::Mutex;
use wmh_check::stress::hammer;
use wmh_core::cws::Icws;
use wmh_core::Sketcher;
use wmh_lsh::{Bands, LshIndex};
use wmh_sets::WeightedSet;

const SEED: u64 = 0x5EED_C0DE;

/// Deterministic corpus: clusters of near-duplicates plus unique noise.
fn corpus() -> Vec<(u64, WeightedSet)> {
    let mut docs = Vec::new();
    for c in 0..6u64 {
        let base: Vec<(u64, f64)> =
            (0..48).map(|i| (c * 500 + i, 1.0 + (i % 5) as f64 * 0.25)).collect();
        for v in 0..5u64 {
            let pairs: Vec<(u64, f64)> = base
                .iter()
                .enumerate()
                .filter(|(i, _)| !(*i as u64 + v).is_multiple_of(13))
                .map(|(_, &p)| p)
                .collect();
            docs.push((c * 10 + v, WeightedSet::from_pairs(pairs).expect("valid corpus doc")));
        }
    }
    docs
}

fn build_index() -> LshIndex<Icws> {
    LshIndex::new(Icws::new(SEED, 128), Bands::new(32, 4).expect("bands"))
        .expect("banding fits sketcher")
}

/// Ingest the corpus from `threads` threads (round-robin partition, all
/// released together) and return the finished index.
fn ingest_with_threads(docs: &[(u64, WeightedSet)], threads: usize) -> LshIndex<Icws> {
    let index = Mutex::new(build_index());
    let per_thread = docs.len().div_ceil(threads);
    hammer(threads, per_thread, |t, i| {
        let slot = t + i * threads;
        if let Some((id, doc)) = docs.get(slot) {
            // Pre-sketch outside the lock so ingest critical sections
            // genuinely interleave rather than serializing on sketching.
            let sketch = Icws::new(SEED, 128).sketch(doc).expect("corpus sketches");
            index.lock().expect("ingest lock").insert_sketch(*id, sketch).expect("ingest");
        }
    });
    index.into_inner().expect("no poisoned ingest")
}

#[test]
fn query_results_are_independent_of_ingest_interleaving() {
    let docs = corpus();
    let reference = ingest_with_threads(&docs, 1);
    for threads in [2usize, 8] {
        let index = ingest_with_threads(&docs, threads);
        assert_eq!(index.len(), docs.len(), "{threads} threads: lost ingests");
        for (id, doc) in &docs {
            // candidates() returns sorted ids, so Vec equality is
            // set-equality here.
            let want = reference.candidates(doc).expect("reference candidates");
            let got = index.candidates(doc).expect("candidates");
            assert_eq!(want, got, "doc {id} candidates diverged at {threads} threads");
            // Ranked results break estimate ties by id, so the full ranking
            // must also be interleaving-independent.
            let want_top = reference.query_top_k(doc, 5).expect("reference top-k");
            let got_top = index.query_top_k(doc, 5).expect("top-k");
            assert_eq!(want_top, got_top, "doc {id} top-k diverged at {threads} threads");
        }
    }
}

#[test]
fn concurrent_readers_share_a_finished_index() {
    let docs = corpus();
    let index = ingest_with_threads(&docs, 4);
    let expected: Vec<Vec<u64>> =
        docs.iter().map(|(_, d)| index.candidates(d).expect("candidates")).collect();
    // Queries are &self: many readers may probe simultaneously and must all
    // see the same candidates.
    hammer(8, docs.len(), |t, i| {
        let slot = (t + i) % docs.len();
        let got = index.candidates(&docs[slot].1).expect("concurrent candidates");
        assert_eq!(expected[slot], got, "reader {t} diverged on doc slot {slot}");
    });
}
