//! Similarity-threshold clustering over an LSH index — the application
//! behind \[Haveliwala et al., 2000\] ("Scalable Techniques for Clustering
//! the Web"), which is where the paper's quantization-based weighted
//! MinHash was introduced.
//!
//! The pipeline: index every document, take each document's candidates,
//! keep pairs whose *estimated* similarity clears a threshold, and union
//! them — single-linkage clustering whose pair generation never scans the
//! full `O(n²)` pair space.

use crate::index::{IndexError, LshIndex};
use wmh_core::Sketcher;
use wmh_sets::WeightedSet;

/// A classic disjoint-set (union–find) structure with path compression and
/// union by rank.
///
/// ```
/// use wmh_lsh::cluster::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert_eq!(uf.components(), 2);
/// assert!(uf.connected(0, 1) && !uf.connected(1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), rank: vec![0; n], components: n }
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    /// Panics when `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns whether they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[lo] = hi;
        if self.rank[ra] == self.rank[rb] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group members by representative, sorted within and across groups.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        by_root.into_values().collect()
    }
}

/// Single-linkage clusters of `docs` at estimated similarity `threshold`,
/// using `sketcher`'s fingerprints and the given banding.
///
/// Returns clusters as sorted lists of document indices (singletons
/// included), sorted by their smallest member.
///
/// # Errors
/// Propagates index construction/sketching errors (e.g. empty documents or
/// banding that exceeds the sketcher's `D`).
pub fn cluster_by_similarity<S: Sketcher>(
    sketcher: S,
    bands: crate::amplify::Bands,
    docs: &[WeightedSet],
    threshold: f64,
) -> Result<Vec<Vec<usize>>, IndexError> {
    let mut index = LshIndex::new(sketcher, bands)?;
    for (i, d) in docs.iter().enumerate() {
        index.insert(i as u64, d)?;
    }
    let mut uf = UnionFind::new(docs.len());
    for (i, d) in docs.iter().enumerate() {
        for (j, est) in index.query_above(d, threshold)? {
            let j = j as usize;
            if j != i && est >= threshold {
                uf.union(i, j);
            }
        }
    }
    Ok(uf.groups())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amplify::Bands;
    use wmh_core::cws::Icws;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(2, 3));
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(1, 2);
        assert!(uf.connected(0, 3));
        assert_eq!(uf.groups(), vec![vec![0, 1, 2, 3], vec![4]]);
    }

    #[test]
    fn union_find_path_compression_long_chain() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, n - 1));
    }

    fn planted_corpus() -> Vec<WeightedSet> {
        // Three clusters of 4 near-duplicates each, plus 3 loners.
        let mut docs = Vec::new();
        for c in 0..3u64 {
            let base: Vec<(u64, f64)> =
                (0..50).map(|i| (c * 1000 + i, 1.0 + (i % 3) as f64)).collect();
            for v in 0..4usize {
                let pairs: Vec<(u64, f64)> = base
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (i + v) % 13 != 0)
                    .map(|(_, &p)| p)
                    .collect();
                docs.push(WeightedSet::from_pairs(pairs).expect("valid"));
            }
        }
        for l in 0..3u64 {
            docs.push(
                WeightedSet::from_pairs((0..50).map(|i| (90_000 + l * 1000 + i, 1.0)))
                    .expect("valid"),
            );
        }
        docs
    }

    #[test]
    fn clusters_planted_duplicates() {
        let docs = planted_corpus();
        let clusters = cluster_by_similarity(
            Icws::new(11, 128),
            Bands::new(32, 4).expect("valid"),
            &docs,
            0.5,
        )
        .expect("clusterable");
        // 3 clusters of 4 + 3 singletons.
        assert_eq!(clusters.len(), 6, "{clusters:?}");
        let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 4).count(), 3);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 3);
        // Cluster members come from the same plant.
        for cl in &clusters {
            if cl.len() == 4 {
                let plant = cl[0] / 4;
                assert!(cl.iter().all(|&i| i / 4 == plant), "{cl:?}");
            }
        }
    }

    #[test]
    fn threshold_one_keeps_only_exact_duplicates() {
        let mut docs = planted_corpus();
        docs.push(docs[0].clone()); // exact duplicate of doc 0
        let n = docs.len();
        let clusters = cluster_by_similarity(
            Icws::new(13, 128),
            Bands::new(32, 4).expect("valid"),
            &docs,
            1.0,
        )
        .expect("clusterable");
        // Everything singleton except {0, n-1}.
        assert_eq!(clusters.len(), n - 1);
        assert!(clusters.contains(&vec![0, n - 1]));
    }

    #[test]
    fn empty_corpus_clusters_trivially() {
        let clusters =
            cluster_by_similarity(Icws::new(1, 64), Bands::new(16, 4).expect("valid"), &[], 0.5)
                .expect("clusterable");
        assert!(clusters.is_empty());
    }
}
