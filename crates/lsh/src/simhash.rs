//! SimHash — sign random projections for cosine similarity (Charikar 2002;
//! paper Table 1).
//!
//! Each hash bit is the sign of a projection onto a random Gaussian
//! direction; two vectors collide on a bit with probability `1 − θ/π`,
//! where `θ` is the angle between them. The Gaussian coordinates are hashed
//! per `(d, element)`, so sparse vectors only touch their own support.

use wmh_hash::seeded::role;
use wmh_hash::SeededHash;
use wmh_rng::dist::normal_from_units;
use wmh_sets::WeightedSet;

/// Sign-random-projection hasher.
#[derive(Debug, Clone)]
pub struct SimHash {
    oracle: SeededHash,
    num_bits: usize,
}

/// A SimHash signature: `num_bits` sign bits, packed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimHashSignature {
    bits: Vec<u64>,
    len: usize,
}

impl SimHash {
    /// Create a SimHash with `num_bits` projections.
    #[must_use]
    pub fn new(seed: u64, num_bits: usize) -> Self {
        Self { oracle: SeededHash::new(seed), num_bits }
    }

    /// Number of projections.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// The Gaussian coordinate of direction `d` at element `k` (consistent
    /// across vectors — the "global" random directions).
    #[must_use]
    pub fn direction_coord(&self, d: usize, k: u64) -> f64 {
        normal_from_units(
            self.oracle.unit3(role::MINHASH ^ 0x51, d as u64, k),
            self.oracle.unit3(role::MINHASH ^ 0x52, d as u64, k),
        )
    }

    /// Sign signature of a sparse vector.
    #[must_use]
    pub fn signature(&self, v: &WeightedSet) -> SimHashSignature {
        let mut bits = vec![0u64; self.num_bits.div_ceil(64)];
        for d in 0..self.num_bits {
            let dot: f64 = v.iter().map(|(k, w)| w * self.direction_coord(d, k)).sum();
            if dot >= 0.0 {
                bits[d / 64] |= 1u64 << (d % 64);
            }
        }
        SimHashSignature { bits, len: self.num_bits }
    }
}

impl SimHashSignature {
    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the signature is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `d`-th bit.
    #[must_use]
    pub fn bit(&self, d: usize) -> bool {
        (self.bits[d / 64] >> (d % 64)) & 1 == 1
    }

    /// Hamming distance to another signature.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "signature length mismatch");
        let mut acc = 0u32;
        for (i, (a, b)) in self.bits.iter().zip(&other.bits).enumerate() {
            let mut x = a ^ b;
            // Mask tail bits beyond len in the last word.
            if (i + 1) * 64 > self.len {
                let valid = self.len - i * 64;
                x &= (1u64 << valid) - 1;
            }
            acc += x.count_ones();
        }
        acc
    }

    /// Estimate the cosine similarity: `cos(π · ham/len)`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn estimate_cosine(&self, other: &Self) -> f64 {
        let theta = std::f64::consts::PI * f64::from(self.hamming(other)) / self.len as f64;
        theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_sets::cosine_similarity;

    fn ws(pairs: &[(u64, f64)]) -> WeightedSet {
        WeightedSet::from_pairs(pairs.iter().copied()).expect("valid")
    }

    #[test]
    fn identical_vectors_have_zero_hamming() {
        let sh = SimHash::new(1, 256);
        let v = ws(&[(1, 0.5), (9, 2.0), (77, 0.1)]);
        let a = sh.signature(&v);
        assert_eq!(a.hamming(&sh.signature(&v)), 0);
        assert!((a.estimate_cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_cosine_similarity() {
        let bits = 4096;
        let sh = SimHash::new(2, bits);
        let v = ws(&(0..40u64).map(|k| (k, 1.0 + (k % 5) as f64)).collect::<Vec<_>>());
        let w = ws(&(20..60u64).map(|k| (k, 1.0 + (k % 7) as f64)).collect::<Vec<_>>());
        let truth = cosine_similarity(&v, &w);
        let est = sh.signature(&v).estimate_cosine(&sh.signature(&w));
        // Collision probability is 1 − θ/π; delta-method noise on cos.
        assert!((est - truth).abs() < 0.06, "est {est} truth {truth}");
    }

    #[test]
    fn opposite_vectors_disagree_everywhere() {
        // v and −v are not representable (weights > 0), but two disjoint
        // vectors are orthogonal: expect hamming ≈ len/2.
        let bits = 2048;
        let sh = SimHash::new(3, bits);
        let v = ws(&(0..30u64).map(|k| (k, 1.0)).collect::<Vec<_>>());
        let w = ws(&(100..130u64).map(|k| (k, 1.0)).collect::<Vec<_>>());
        let ham = f64::from(sh.signature(&v).hamming(&sh.signature(&w)));
        let z = (ham - bits as f64 / 2.0) / (bits as f64 / 4.0).sqrt();
        assert!(z.abs() < 5.0, "orthogonal hamming z = {z}");
        let est = sh.signature(&v).estimate_cosine(&sh.signature(&w));
        assert!(est.abs() < 0.1, "orthogonal cosine {est}");
    }

    #[test]
    fn signature_bits_are_balanced() {
        let bits = 2048;
        let sh = SimHash::new(4, bits);
        let v = ws(&[(5, 1.0), (6, 2.0), (7, 0.5)]);
        let sig = sh.signature(&v);
        let ones = (0..bits).filter(|&d| sig.bit(d)).count() as f64;
        let z = (ones - bits as f64 / 2.0) / (bits as f64 / 4.0).sqrt();
        assert!(z.abs() < 5.0, "bit balance z = {z}");
    }

    #[test]
    fn scale_invariance() {
        // Sign projections ignore positive scaling.
        let sh = SimHash::new(5, 128);
        let v = ws(&[(1, 0.2), (2, 1.4)]);
        let v3 = v.scaled(3.0).expect("valid");
        assert_eq!(sh.signature(&v), sh.signature(&v3));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = SimHash::new(6, 64).signature(&ws(&[(1, 1.0)]));
        let b = SimHash::new(6, 128).signature(&ws(&[(1, 1.0)]));
        let _ = a.hamming(&b);
    }

    #[test]
    fn tail_bits_are_masked() {
        // len not a multiple of 64 must not leak garbage into hamming.
        let sh = SimHash::new(7, 70);
        let v = ws(&[(1, 1.0)]);
        let a = sh.signature(&v);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.len(), 70);
    }
}
