//! AND/OR amplification (banding) and its S-curve.
//!
//! A single `(R, cR, p₁, p₂)`-sensitive hash (Definition 4) separates near
//! from far pairs only weakly. Grouping `r` hashes per band (AND) and `b`
//! bands (OR) turns a per-hash collision probability `s` into
//!
//! ```text
//! P(candidate) = 1 − (1 − s^r)^b
//! ```
//!
//! an S-curve with threshold `≈ (1/b)^{1/r}` — the knob every LSH index
//! (and the paper's retrieval applications) tunes.

/// A banding configuration: `bands` bands of `rows` hashes each.
///
/// ```
/// use wmh_lsh::Bands;
/// let b = Bands::new(16, 4).unwrap();
/// assert_eq!(b.total_hashes(), 64);
/// // The S-curve is steep around the threshold (1/16)^(1/4) ≈ 0.5.
/// assert!(b.candidate_probability(0.8) > 0.95);
/// assert!(b.candidate_probability(0.2) < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bands {
    /// Number of OR-combined bands `b`.
    pub bands: usize,
    /// Number of AND-combined rows per band `r`.
    pub rows: usize,
}

/// Errors for [`Bands`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandsError {
    /// Both dimensions must be positive.
    Zero,
    /// A banding optimizer was given a zero hash budget.
    ZeroBudget,
    /// A gap optimizer was given `s_near ≤ s_far` — there is no
    /// similarity split to separate.
    InvertedGap,
    /// A code slice was shorter than the `b·r` hashes banding consumes.
    TooFewCodes {
        /// Hashes required (`b·r`).
        required: usize,
        /// Codes available.
        available: usize,
    },
}

impl std::fmt::Display for BandsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Zero => write!(f, "bands and rows must both be positive"),
            Self::ZeroBudget => write!(f, "hash budget must be positive"),
            Self::InvertedGap => {
                write!(f, "near collision probability must exceed far")
            }
            Self::TooFewCodes { required, available } => {
                write!(f, "banding needs {required} codes, only {available} available")
            }
        }
    }
}

impl std::error::Error for BandsError {}

impl Bands {
    /// Create a banding scheme.
    ///
    /// # Errors
    /// [`BandsError::Zero`] when either dimension is zero.
    pub fn new(bands: usize, rows: usize) -> Result<Self, BandsError> {
        if bands == 0 || rows == 0 {
            return Err(BandsError::Zero);
        }
        Ok(Self { bands, rows })
    }

    /// Total hashes consumed: `b · r`.
    #[must_use]
    pub fn total_hashes(&self) -> usize {
        self.bands * self.rows
    }

    /// The S-curve: probability a pair with per-hash collision probability
    /// `s` becomes a candidate.
    #[must_use]
    pub fn candidate_probability(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, 1.0);
        1.0 - (1.0 - s.powi(self.rows as i32)).powi(self.bands as i32)
    }

    /// The similarity threshold where the S-curve is steepest:
    /// `(1/b)^{1/r}`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    /// Probability that a *far* pair (per-hash collision probability
    /// `s_far`) still becomes a candidate — the index's false-positive rate
    /// for that pair.
    #[must_use]
    pub fn false_positive_rate(&self, s_far: f64) -> f64 {
        self.candidate_probability(s_far)
    }

    /// Probability that a *near* pair (per-hash collision probability
    /// `s_near`) is missed — the index's false-negative rate for that pair.
    #[must_use]
    pub fn false_negative_rate(&self, s_near: f64) -> f64 {
        1.0 - self.candidate_probability(s_near)
    }

    /// One `u64` bucket key per band over the leading `total_hashes()`
    /// entries of `codes` — the banded-index hashing shared by
    /// [`crate::LshIndex`] and the `wmh-serve` shards, extracted here so
    /// both probe byte-identical buckets.
    ///
    /// # Errors
    /// [`BandsError::TooFewCodes`] when `codes` is shorter than `b·r`.
    pub fn band_keys(&self, codes: &[u64]) -> Result<Vec<u64>, BandsError> {
        if codes.len() < self.total_hashes() {
            return Err(BandsError::TooFewCodes {
                required: self.total_hashes(),
                available: codes.len(),
            });
        }
        Ok((0..self.bands)
            .map(|b| {
                let start = b * self.rows;
                let mut acc = 0x9E37_79B9u64 ^ b as u64;
                for &code in &codes[start..start + self.rows] {
                    acc = wmh_hash::mix::combine(acc, code);
                }
                acc
            })
            .collect())
    }

    /// Choose `(b, r)` with `b·r ≤ budget` minimizing
    /// `false_negative_rate(s_near) + false_positive_rate(s_far)` — the
    /// balanced-error banding for a known similarity split (Definition 4's
    /// `(R, cR, p₁, p₂)` gap, optimized).
    ///
    /// # Errors
    /// [`BandsError::ZeroBudget`] when `budget == 0`,
    /// [`BandsError::InvertedGap`] when `s_near ≤ s_far`.
    pub fn try_for_gap(budget: usize, s_near: f64, s_far: f64) -> Result<Self, BandsError> {
        if budget == 0 {
            return Err(BandsError::ZeroBudget);
        }
        // `partial_cmp` so a NaN on either side lands in the error arm too.
        if s_near.partial_cmp(&s_far) != Some(std::cmp::Ordering::Greater) {
            return Err(BandsError::InvertedGap);
        }
        let score = |cfg: Bands| cfg.false_negative_rate(s_near) + cfg.false_positive_rate(s_far);
        Ok(Self::optimize(budget, score))
    }

    /// Panicking convenience wrapper around [`Self::try_for_gap`].
    ///
    /// # Panics
    /// Panics when `budget == 0` or `s_near ≤ s_far`.
    #[must_use]
    pub fn for_gap(budget: usize, s_near: f64, s_far: f64) -> Self {
        match Self::try_for_gap(budget, s_near, s_far) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e} ({s_near} vs {s_far})"),
        }
    }

    /// Choose `(b, r)` with `b·r ≤ budget` whose threshold is closest to
    /// `target`, preferring the steepest curve (largest `r`) among ties.
    ///
    /// # Errors
    /// [`BandsError::ZeroBudget`] when `budget == 0`.
    pub fn try_for_threshold(budget: usize, target: f64) -> Result<Self, BandsError> {
        if budget == 0 {
            return Err(BandsError::ZeroBudget);
        }
        let target = target.clamp(1e-6, 1.0);
        Ok(Self::optimize(budget, |cfg| (cfg.threshold() - target).abs()))
    }

    /// Panicking convenience wrapper around [`Self::try_for_threshold`].
    ///
    /// # Panics
    /// Panics when `budget == 0`.
    #[must_use]
    pub fn for_threshold(budget: usize, target: f64) -> Self {
        match Self::try_for_threshold(budget, target) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Scan every `(b, r)` layout within `budget`, keeping the lowest
    /// score. `budget ≥ 1` guarantees at least `(budget, 1)` is scored, so
    /// the fold always yields a configuration.
    fn optimize(budget: usize, score: impl Fn(Bands) -> f64) -> Self {
        let mut best = Bands { bands: budget, rows: 1 };
        let mut best_score = score(best);
        for rows in 2..=budget {
            let bands = budget / rows;
            if bands == 0 {
                break;
            }
            let cfg = Bands { bands, rows };
            let err = score(cfg);
            if err < best_score {
                best = cfg;
                best_score = err;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        assert_eq!(Bands::new(0, 4).unwrap_err(), BandsError::Zero);
        assert_eq!(Bands::new(4, 0).unwrap_err(), BandsError::Zero);
        let b = Bands::new(16, 8).unwrap();
        assert_eq!(b.total_hashes(), 128);
    }

    #[test]
    fn s_curve_endpoints_and_monotonicity() {
        let b = Bands::new(20, 5).unwrap();
        assert_eq!(b.candidate_probability(0.0), 0.0);
        assert!((b.candidate_probability(1.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 1..=100 {
            let p = b.candidate_probability(i as f64 / 100.0);
            assert!(p >= prev, "not monotone at {i}");
            prev = p;
        }
    }

    #[test]
    fn s_curve_is_sharp_around_threshold() {
        let b = Bands::new(32, 8).unwrap();
        let t = b.threshold();
        assert!(b.candidate_probability(t * 1.3).min(1.0) > 0.9);
        assert!(b.candidate_probability(t * 0.5) < 0.05);
    }

    #[test]
    fn threshold_formula() {
        let b = Bands::new(16, 4).unwrap();
        assert!((b.threshold() - (1.0f64 / 16.0).powf(0.25)).abs() < 1e-12);
    }

    #[test]
    fn for_threshold_respects_budget_and_target() {
        for target in [0.3, 0.5, 0.8] {
            let cfg = Bands::for_threshold(128, target);
            assert!(cfg.total_hashes() <= 128);
            assert!((cfg.threshold() - target).abs() < 0.15, "target {target}: {cfg:?}");
        }
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_panics() {
        let _ = Bands::for_threshold(0, 0.5);
    }

    #[test]
    fn error_rates_are_complementary_slices_of_the_s_curve() {
        let b = Bands::new(16, 4).unwrap();
        let s = 0.6;
        assert!((b.false_negative_rate(s) + b.candidate_probability(s) - 1.0).abs() < 1e-12);
        assert_eq!(b.false_positive_rate(s), b.candidate_probability(s));
    }

    #[test]
    fn for_gap_beats_naive_configurations() {
        let (near, far) = (0.8, 0.3);
        let chosen = Bands::for_gap(128, near, far);
        let err = |cfg: Bands| cfg.false_negative_rate(near) + cfg.false_positive_rate(far);
        // The optimizer's error is no worse than either extreme layout.
        assert!(err(chosen) <= err(Bands::new(128, 1).unwrap()) + 1e-12);
        assert!(err(chosen) <= err(Bands::new(1, 128).unwrap()) + 1e-12);
        // And the chosen configuration actually separates the pair well.
        assert!(chosen.false_negative_rate(near) < 0.05, "{chosen:?}");
        assert!(chosen.false_positive_rate(far) < 0.05, "{chosen:?}");
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn for_gap_rejects_inverted_split() {
        let _ = Bands::for_gap(64, 0.2, 0.6);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        assert_eq!(Bands::try_for_gap(0, 0.8, 0.2), Err(BandsError::ZeroBudget));
        assert_eq!(Bands::try_for_gap(64, 0.2, 0.6), Err(BandsError::InvertedGap));
        assert_eq!(Bands::try_for_gap(64, f64::NAN, 0.2), Err(BandsError::InvertedGap));
        assert_eq!(Bands::try_for_threshold(0, 0.5), Err(BandsError::ZeroBudget));
        assert_eq!(Bands::try_for_gap(128, 0.8, 0.3).unwrap(), Bands::for_gap(128, 0.8, 0.3));
        assert_eq!(Bands::try_for_threshold(128, 0.5).unwrap(), Bands::for_threshold(128, 0.5));
    }

    #[test]
    fn band_keys_are_deterministic_and_length_checked() {
        let b = Bands::new(4, 3).unwrap();
        let codes: Vec<u64> = (0..12).map(|i| i * 7 + 1).collect();
        let keys = b.band_keys(&codes).unwrap();
        assert_eq!(keys.len(), 4);
        assert_eq!(keys, b.band_keys(&codes).unwrap());
        // Keys depend only on their own band's rows: extra trailing codes
        // change nothing, a changed code in band 2 changes only key 2.
        let mut longer = codes.clone();
        longer.push(999);
        assert_eq!(keys, b.band_keys(&longer).unwrap());
        let mut tweaked = codes.clone();
        tweaked[7] ^= 1; // band 2 holds codes 6..9
        let keys2 = b.band_keys(&tweaked).unwrap();
        assert_ne!(keys[2], keys2[2]);
        assert_eq!(keys[0], keys2[0]);
        assert_eq!(keys[1], keys2[1]);
        assert_eq!(keys[3], keys2[3]);
        // Too-short input is a typed error, not a slice panic.
        assert_eq!(
            b.band_keys(&codes[..11]),
            Err(BandsError::TooFewCodes { required: 12, available: 11 })
        );
    }
}
