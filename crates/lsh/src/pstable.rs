//! LSH with p-stable distributions for `l_p` distance (Datar et al. 2004;
//! paper Table 1).
//!
//! `h(v) = ⌊(a·v + b) / w⌋` with `a` drawn coordinate-wise from a p-stable
//! law — Gaussian for `p = 2`, Cauchy for `p = 1` — and `b ~ Uniform[0, w)`.
//! Two points at `l_p` distance `c` collide with probability
//!
//! ```text
//! p(c) = ∫₀ʷ (1/c)·f_p(t/c)·(1 − t/w) dt
//! ```
//!
//! which is monotonically decreasing in `c` — the `(R, cR, p₁, p₂)`
//! sensitivity of Definition 4. [`PStableLsh::collision_probability`]
//! evaluates the closed forms used to pick `w`.

use wmh_hash::seeded::role;
use wmh_hash::SeededHash;
use wmh_rng::dist::{cauchy_from_unit, normal_from_units};
use wmh_rng::stats::standard_normal_cdf;
use wmh_sets::WeightedSet;

/// Which `l_p` norm the family targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stable {
    /// Cauchy projections — `l_1` distance.
    Cauchy,
    /// Gaussian projections — `l_2` distance.
    Gaussian,
}

/// The p-stable LSH family.
#[derive(Debug, Clone)]
pub struct PStableLsh {
    oracle: SeededHash,
    stable: Stable,
    width: f64,
    num_hashes: usize,
}

/// Errors for [`PStableLsh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PStableError {
    /// The bucket width must be positive and finite.
    BadWidth(f64),
}

impl std::fmt::Display for PStableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadWidth(w) => write!(f, "bucket width {w} must be positive and finite"),
        }
    }
}

impl std::error::Error for PStableError {}

impl PStableLsh {
    /// Create a family of `num_hashes` functions with bucket width `w`.
    ///
    /// # Errors
    /// [`PStableError::BadWidth`] for non-finite or non-positive widths.
    pub fn new(
        seed: u64,
        num_hashes: usize,
        stable: Stable,
        width: f64,
    ) -> Result<Self, PStableError> {
        if !width.is_finite() || width <= 0.0 {
            return Err(PStableError::BadWidth(width));
        }
        Ok(Self { oracle: SeededHash::new(seed), stable, width, num_hashes })
    }

    /// Number of hash functions.
    #[must_use]
    pub fn num_hashes(&self) -> usize {
        self.num_hashes
    }

    /// Stable coordinate of projection `d` at element `k`.
    #[must_use]
    pub fn coord(&self, d: usize, k: u64) -> f64 {
        match self.stable {
            Stable::Gaussian => normal_from_units(
                self.oracle.unit3(role::MINHASH ^ 0x61, d as u64, k),
                self.oracle.unit3(role::MINHASH ^ 0x62, d as u64, k),
            ),
            Stable::Cauchy => {
                cauchy_from_unit(self.oracle.unit3(role::MINHASH ^ 0x63, d as u64, k))
            }
        }
    }

    /// The `d`-th bucket index of a vector.
    #[must_use]
    pub fn bucket(&self, v: &WeightedSet, d: usize) -> i64 {
        let dot: f64 = v.iter().map(|(k, w)| w * self.coord(d, k)).sum();
        let b = self.oracle.unit2(role::MINHASH ^ 0x64, d as u64) * self.width;
        ((dot + b) / self.width).floor() as i64
    }

    /// All `D` bucket indices.
    #[must_use]
    pub fn signature(&self, v: &WeightedSet) -> Vec<i64> {
        (0..self.num_hashes).map(|d| self.bucket(v, d)).collect()
    }

    /// Closed-form collision probability of one hash at distance `c > 0`.
    ///
    /// Gaussian (`p = 2`, Datar et al. Eq. for `f_2`):
    /// `p(c) = 1 − 2Φ(−w/c) − (2c/(√(2π) w))(1 − e^{−w²/(2c²)})`.
    /// Cauchy (`p = 1`):
    /// `p(c) = 2·atan(w/c)/π − (c/(πw))·ln(1 + (w/c)²)`.
    #[must_use]
    pub fn collision_probability(&self, c: f64) -> f64 {
        if c <= 0.0 {
            return 1.0;
        }
        let r = self.width / c;
        match self.stable {
            Stable::Gaussian => {
                1.0 - 2.0 * standard_normal_cdf(-r)
                    - 2.0 / ((2.0 * std::f64::consts::PI).sqrt() * r) * (1.0 - (-r * r / 2.0).exp())
            }
            Stable::Cauchy => {
                2.0 * r.atan() / std::f64::consts::PI
                    - (1.0 / (std::f64::consts::PI * r)) * (1.0 + r * r).ln()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_sets::lp_distance;

    fn ws(pairs: &[(u64, f64)]) -> WeightedSet {
        WeightedSet::from_pairs(pairs.iter().copied()).expect("valid")
    }

    #[test]
    fn rejects_bad_width() {
        assert!(PStableLsh::new(1, 4, Stable::Gaussian, 0.0).is_err());
        assert!(PStableLsh::new(1, 4, Stable::Gaussian, f64::NAN).is_err());
        assert!(PStableLsh::new(1, 4, Stable::Cauchy, 2.0).is_ok());
    }

    #[test]
    fn identical_points_always_collide() {
        let lsh = PStableLsh::new(2, 64, Stable::Gaussian, 4.0).unwrap();
        let v = ws(&[(1, 0.5), (2, 2.0)]);
        assert_eq!(lsh.signature(&v), lsh.signature(&v));
    }

    #[test]
    fn collision_probability_is_monotone_decreasing() {
        for stable in [Stable::Gaussian, Stable::Cauchy] {
            let lsh = PStableLsh::new(3, 1, stable, 4.0).unwrap();
            let mut prev = 1.0;
            for c in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
                let p = lsh.collision_probability(c);
                assert!(p < prev, "{stable:?}: p({c}) = {p} not below {prev}");
                assert!((0.0..=1.0).contains(&p));
                prev = p;
            }
            assert_eq!(lsh.collision_probability(0.0), 1.0);
        }
    }

    #[test]
    fn empirical_collision_rate_matches_closed_form_gaussian() {
        let trials = 4000;
        let w = 4.0;
        let lsh = PStableLsh::new(4, trials, Stable::Gaussian, w).unwrap();
        let v = ws(&[(1, 1.0)]);
        let u = ws(&[(1, 3.0)]); // l2 distance 2
        let c = lp_distance(&v, &u, 2.0);
        let want = lsh.collision_probability(c);
        let hits = (0..trials).filter(|&d| lsh.bucket(&v, d) == lsh.bucket(&u, d)).count();
        let got = hits as f64 / trials as f64;
        let sd = (want * (1.0 - want) / trials as f64).sqrt();
        assert!((got - want).abs() < 5.0 * sd, "got {got} want {want}");
    }

    #[test]
    fn empirical_collision_rate_matches_closed_form_cauchy() {
        let trials = 4000;
        let w = 4.0;
        let lsh = PStableLsh::new(5, trials, Stable::Cauchy, w).unwrap();
        let v = ws(&[(1, 1.0), (2, 1.0)]);
        let u = ws(&[(1, 2.0), (2, 2.0)]); // l1 distance 2
        let c = lp_distance(&v, &u, 1.0);
        let want = lsh.collision_probability(c);
        let hits = (0..trials).filter(|&d| lsh.bucket(&v, d) == lsh.bucket(&u, d)).count();
        let got = hits as f64 / trials as f64;
        let sd = (want * (1.0 - want) / trials as f64).sqrt();
        assert!((got - want).abs() < 5.0 * sd, "got {got} want {want}");
    }

    #[test]
    fn closer_points_collide_more_often() {
        let trials = 2000;
        let lsh = PStableLsh::new(6, trials, Stable::Gaussian, 2.0).unwrap();
        let origin = ws(&[(1, 1.0)]);
        let near = ws(&[(1, 1.5)]);
        let far = ws(&[(1, 9.0)]);
        let hits = |u: &WeightedSet| {
            (0..trials).filter(|&d| lsh.bucket(&origin, d) == lsh.bucket(u, d)).count()
        };
        assert!(hits(&near) > hits(&far) + 100);
    }
}
