//! Bit-sampling LSH for Hamming distance (Indyk & Motwani 1998; paper
//! Table 1).
//!
//! Over a binary universe of size `n`, the family is simply
//! `h_i(x) = x[i]` for a random coordinate `i`: two points at Hamming
//! distance `c` collide with probability exactly `1 − c/n`.

use wmh_hash::SeededHash;
use wmh_sets::WeightedSet;

/// The bit-sampling family over a fixed-size universe.
#[derive(Debug, Clone)]
pub struct BitSamplingLsh {
    coords: Vec<u64>,
    universe: u64,
}

/// Errors for [`BitSamplingLsh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitSamplingError {
    /// Universe must be non-empty.
    EmptyUniverse,
}

impl std::fmt::Display for BitSamplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyUniverse => write!(f, "universe size must be positive"),
        }
    }
}

impl std::error::Error for BitSamplingError {}

impl BitSamplingLsh {
    /// Sample `num_hashes` coordinates from a universe of size `universe`.
    ///
    /// # Errors
    /// [`BitSamplingError::EmptyUniverse`] when `universe == 0`.
    pub fn new(seed: u64, num_hashes: usize, universe: u64) -> Result<Self, BitSamplingError> {
        if universe == 0 {
            return Err(BitSamplingError::EmptyUniverse);
        }
        let oracle = SeededHash::new(seed);
        // Rejection-free bounded sampling (coordinates may repeat — the
        // family draws i.i.d. coordinates).
        let coords = (0..num_hashes as u64)
            .map(|d| {
                let h = oracle.hash2(0xB175, d);
                ((u128::from(h) * u128::from(universe)) >> 64) as u64
            })
            .collect();
        Ok(Self { coords, universe })
    }

    /// Universe size `n`.
    #[must_use]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of sampled coordinates.
    #[must_use]
    pub fn num_hashes(&self) -> usize {
        self.coords.len()
    }

    /// The signature: the sampled bits of the set's support indicator.
    #[must_use]
    pub fn signature(&self, x: &WeightedSet) -> Vec<bool> {
        self.coords.iter().map(|&i| x.contains(i)).collect()
    }

    /// Collision probability at Hamming distance `c`: `1 − c/n`.
    #[must_use]
    pub fn collision_probability(&self, c: u64) -> f64 {
        1.0 - c.min(self.universe) as f64 / self.universe as f64
    }

    /// Estimate the Hamming distance from two signatures:
    /// `n · (#disagreements / #coords)`.
    ///
    /// # Panics
    /// Panics on signature length mismatch.
    #[must_use]
    pub fn estimate_distance(&self, a: &[bool], b: &[bool]) -> f64 {
        assert_eq!(a.len(), b.len(), "signature length mismatch");
        assert_eq!(a.len(), self.coords.len(), "foreign signature");
        let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
        self.universe as f64 * diff as f64 / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_sets::hamming_distance;

    fn binary(r: std::ops::Range<u64>) -> WeightedSet {
        WeightedSet::binary(r).expect("valid")
    }

    #[test]
    fn rejects_empty_universe() {
        assert_eq!(BitSamplingLsh::new(1, 4, 0).unwrap_err(), BitSamplingError::EmptyUniverse);
    }

    #[test]
    fn identical_sets_collide_everywhere() {
        let lsh = BitSamplingLsh::new(2, 128, 1000).unwrap();
        let x = binary(0..100);
        assert_eq!(lsh.signature(&x), lsh.signature(&x));
    }

    #[test]
    fn estimates_hamming_distance() {
        let n = 1000u64;
        let d = 8192;
        let lsh = BitSamplingLsh::new(3, d, n).unwrap();
        let x = binary(0..100);
        let y = binary(50..150);
        let truth = hamming_distance(&x, &y) as f64; // 100
        let est = lsh.estimate_distance(&lsh.signature(&x), &lsh.signature(&y));
        // Binomial sampling noise: sd = n·sqrt(p(1-p)/d), p = truth/n.
        let p = truth / n as f64;
        let sd = n as f64 * (p * (1.0 - p) / d as f64).sqrt();
        assert!((est - truth).abs() < 5.0 * sd, "est {est} truth {truth}");
    }

    #[test]
    fn collision_probability_closed_form() {
        let lsh = BitSamplingLsh::new(4, 1, 100).unwrap();
        assert_eq!(lsh.collision_probability(0), 1.0);
        assert!((lsh.collision_probability(25) - 0.75).abs() < 1e-12);
        assert_eq!(lsh.collision_probability(100), 0.0);
        assert_eq!(lsh.collision_probability(1000), 0.0, "clamped beyond n");
    }

    #[test]
    fn empirical_collision_rate_matches_closed_form() {
        let n = 500u64;
        let trials = 4000;
        let lsh = BitSamplingLsh::new(5, trials, n).unwrap();
        let x = binary(0..250);
        let y = binary(125..375); // hamming = 250
        let want = lsh.collision_probability(hamming_distance(&x, &y));
        let (sa, sb) = (lsh.signature(&x), lsh.signature(&y));
        let got = sa.iter().zip(&sb).filter(|(a, b)| a == b).count() as f64 / trials as f64;
        let sd = (want * (1.0 - want) / trials as f64).sqrt();
        assert!((got - want).abs() < 5.0 * sd, "got {got} want {want}");
    }
}
