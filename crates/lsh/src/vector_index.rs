//! A banded index over *vector* LSH families (SimHash, p-stable, χ²) —
//! the counterpart of [`crate::index::LshIndex`] for the non-Jaccard rows
//! of Table 1.
//!
//! Any family that yields one discrete signature word per hash function can
//! be indexed: implement [`VectorSignature`] (done here for
//! [`crate::simhash::SimHash`], [`crate::pstable::PStableLsh`] and
//! [`crate::chi2::Chi2Lsh`]) and band the words exactly as the MinHash
//! index does.

use crate::amplify::Bands;
use std::collections::{HashMap, HashSet};
use wmh_hash::mix::combine;
use wmh_sets::WeightedSet;

/// A family producing one discrete signature word per hash index.
pub trait VectorSignature {
    /// Number of hash functions available.
    fn num_hashes(&self) -> usize;

    /// The `d`-th signature word of a vector.
    fn signature_word(&self, v: &WeightedSet, d: usize) -> u64;
}

impl VectorSignature for crate::simhash::SimHash {
    fn num_hashes(&self) -> usize {
        self.num_bits()
    }

    fn signature_word(&self, v: &WeightedSet, d: usize) -> u64 {
        // One sign bit per hash.
        let dot: f64 = v.iter().map(|(k, w)| w * self.direction_coord(d, k)).sum();
        u64::from(dot >= 0.0)
    }
}

impl VectorSignature for crate::pstable::PStableLsh {
    fn num_hashes(&self) -> usize {
        self.num_hashes()
    }

    fn signature_word(&self, v: &WeightedSet, d: usize) -> u64 {
        self.bucket(v, d) as u64
    }
}

impl VectorSignature for crate::chi2::Chi2Lsh {
    fn num_hashes(&self) -> usize {
        self.num_hashes()
    }

    fn signature_word(&self, v: &WeightedSet, d: usize) -> u64 {
        self.bucket(v, d) as u64
    }
}

/// Errors for [`VectorIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorIndexError {
    /// The banding scheme needs more hashes than the family provides.
    BandsExceedFamily {
        /// Hashes required (`b·r`).
        required: usize,
        /// Hashes available.
        available: usize,
    },
}

impl std::fmt::Display for VectorIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BandsExceedFamily { required, available } => {
                write!(f, "banding needs {required} hashes, family provides {available}")
            }
        }
    }
}

impl std::error::Error for VectorIndexError {}

/// A banded index over any [`VectorSignature`] family.
pub struct VectorIndex<F: VectorSignature> {
    family: F,
    bands: Bands,
    buckets: Vec<HashMap<u64, Vec<usize>>>,
    ids: Vec<u64>,
}

impl<F: VectorSignature> VectorIndex<F> {
    /// Create an index with a banding scheme.
    ///
    /// # Errors
    /// [`VectorIndexError::BandsExceedFamily`] when the banding consumes
    /// more hashes than the family provides.
    pub fn new(family: F, bands: Bands) -> Result<Self, VectorIndexError> {
        if bands.total_hashes() > family.num_hashes() {
            return Err(VectorIndexError::BandsExceedFamily {
                required: bands.total_hashes(),
                available: family.num_hashes(),
            });
        }
        Ok(Self { buckets: vec![HashMap::new(); bands.bands], family, bands, ids: Vec::new() })
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn band_keys(&self, v: &WeightedSet) -> Vec<u64> {
        (0..self.bands.bands)
            .map(|b| {
                let start = b * self.bands.rows;
                let mut acc = 0x0B5E_55ED_u64 ^ b as u64;
                for d in start..start + self.bands.rows {
                    acc = combine(acc, self.family.signature_word(v, d));
                }
                acc
            })
            .collect()
    }

    /// Insert a point under a caller-chosen id.
    pub fn insert(&mut self, id: u64, point: &WeightedSet) {
        let slot = self.ids.len();
        for (b, key) in self.band_keys(point).into_iter().enumerate() {
            self.buckets[b].entry(key).or_default().push(slot);
        }
        self.ids.push(id);
    }

    /// Candidate ids sharing at least one band bucket with the query,
    /// sorted.
    #[must_use]
    pub fn candidates(&self, query: &WeightedSet) -> Vec<u64> {
        let mut seen = HashSet::new();
        for (b, key) in self.band_keys(query).into_iter().enumerate() {
            if let Some(slots) = self.buckets[b].get(&key) {
                seen.extend(slots.iter().copied());
            }
        }
        let mut out: Vec<u64> = seen.into_iter().map(|s| self.ids[s]).collect();
        out.sort_unstable();
        out
    }

    /// Multi-probe candidates (Lv et al., VLDB 2007): in addition to the
    /// query's own buckets, probe the buckets reached by perturbing a single
    /// signature word per band by ±1 — for quantized projections
    /// (p-stable, χ²) these are the adjacent cells the true neighbours most
    /// likely fell into, buying recall without more tables.
    ///
    /// Probes `1 + 2·rows` buckets per band.
    #[must_use]
    pub fn candidates_multiprobe(&self, query: &WeightedSet) -> Vec<u64> {
        let mut seen = HashSet::new();
        for b in 0..self.bands.bands {
            let start = b * self.bands.rows;
            let words: Vec<u64> = (start..start + self.bands.rows)
                .map(|d| self.family.signature_word(query, d))
                .collect();
            let key_of = |words: &[u64]| {
                let mut acc = 0x0B5E_55ED_u64 ^ b as u64;
                for &w in words {
                    acc = combine(acc, w);
                }
                acc
            };
            let mut probe = |key: u64| {
                if let Some(slots) = self.buckets[b].get(&key) {
                    seen.extend(slots.iter().copied());
                }
            };
            probe(key_of(&words));
            for r in 0..self.bands.rows {
                for delta in [1u64, u64::MAX] {
                    // u64::MAX == −1 in wrapping arithmetic.
                    let mut perturbed = words.clone();
                    perturbed[r] = perturbed[r].wrapping_add(delta);
                    probe(key_of(&perturbed));
                }
            }
        }
        let mut out: Vec<u64> = seen.into_iter().map(|s| self.ids[s]).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstable::{PStableLsh, Stable};
    use crate::simhash::SimHash;

    fn ws(pairs: &[(u64, f64)]) -> WeightedSet {
        WeightedSet::from_pairs(pairs.iter().copied()).expect("valid")
    }

    #[test]
    fn rejects_oversized_banding() {
        let sh = SimHash::new(1, 16);
        assert!(matches!(
            VectorIndex::new(sh, Bands::new(8, 4).unwrap()),
            Err(VectorIndexError::BandsExceedFamily { required: 32, available: 16 })
        ));
    }

    #[test]
    fn simhash_index_finds_near_angles() {
        // Near-duplicates in direction space hit shared buckets; an
        // orthogonal probe does not.
        let sh = SimHash::new(2, 256);
        let mut idx = VectorIndex::new(sh, Bands::new(32, 8).unwrap()).expect("fits");
        let base: Vec<(u64, f64)> = (0..50).map(|k| (k, 1.0 + (k % 5) as f64)).collect();
        let near = ws(&base.iter().map(|&(k, w)| (k, w * 1.05)).collect::<Vec<_>>());
        idx.insert(1, &ws(&base));
        idx.insert(2, &near);
        idx.insert(3, &ws(&(1000..1050).map(|k| (k, 1.0)).collect::<Vec<_>>()));
        let cands = idx.candidates(&ws(&base));
        assert!(cands.contains(&1) && cands.contains(&2), "{cands:?}");
        assert!(!cands.contains(&3), "{cands:?}");
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn pstable_index_separates_by_distance() {
        let lsh = PStableLsh::new(3, 64, Stable::Gaussian, 4.0).expect("valid width");
        let mut idx = VectorIndex::new(lsh, Bands::new(16, 4).unwrap()).expect("fits");
        let origin = ws(&[(1, 1.0), (2, 1.0)]);
        let near = ws(&[(1, 1.2), (2, 0.9)]);
        let far = ws(&[(1, 60.0), (2, -0.0 + 55.0)]);
        idx.insert(1, &origin);
        idx.insert(2, &near);
        idx.insert(3, &far);
        let cands = idx.candidates(&origin);
        assert!(cands.contains(&1) && cands.contains(&2), "{cands:?}");
        assert!(!cands.contains(&3), "{cands:?}");
    }

    #[test]
    fn multiprobe_recall_dominates_single_probe() {
        // Points sitting just across a cell boundary are missed by exact
        // bucket lookup but caught by ±1 probes.
        let lsh = PStableLsh::new(9, 48, Stable::Gaussian, 1.0).expect("valid width");
        let mut idx = VectorIndex::new(lsh, Bands::new(16, 3).unwrap()).expect("fits");
        let base: Vec<(u64, f64)> = (0..20).map(|k| (k, 1.0)).collect();
        let origin = ws(&base);
        // Near points at small offsets (within ~1 cell width).
        for (id, eps) in [(1u64, 0.15), (2, 0.3), (3, 0.45)] {
            let shifted: Vec<(u64, f64)> = base.iter().map(|&(k, w)| (k, w + eps)).collect();
            idx.insert(id, &ws(&shifted));
        }
        let single = idx.candidates(&origin);
        let multi = idx.candidates_multiprobe(&origin);
        // Multi-probe sees a superset.
        for id in &single {
            assert!(multi.contains(id), "multiprobe dropped {id}");
        }
        assert!(multi.len() >= single.len(), "multi {multi:?} vs single {single:?}");
        // And it finds all three near points here.
        assert_eq!(multi, vec![1, 2, 3], "{multi:?}");
    }

    #[test]
    fn empty_index_returns_nothing() {
        let sh = SimHash::new(4, 64);
        let idx = VectorIndex::new(sh, Bands::new(8, 8).unwrap()).expect("fits");
        assert!(idx.is_empty());
        assert!(idx.candidates(&ws(&[(1, 1.0)])).is_empty());
    }
}
