//! # `wmh-lsh` — classical LSH families and nearest-neighbour indexes
//!
//! The review's background section (paper §2.1, Table 1) surveys the
//! classical locality-sensitive hashing families alongside MinHash. This
//! crate implements that table:
//!
//! | Similarity (distance) measure | LSH family |
//! |---|---|
//! | Jaccard / generalized Jaccard | MinHash & weighted MinHash (via `wmh-core`) |
//! | Cosine similarity | [`simhash::SimHash`] |
//! | `l_p` distance, `p ∈ {1, 2}` | [`pstable::PStableLsh`] |
//! | Hamming distance | [`hamming::BitSamplingLsh`] |
//! | χ² distance | [`chi2::Chi2Lsh`] |
//!
//! plus the machinery the definitions of §2.1 call for:
//!
//! * [`amplify`] — AND/OR banding amplification and its S-curve
//!   (`Pr[candidate] = 1 − (1 − s^r)^b`), the standard way an
//!   `(R, cR, p₁, p₂)`-sensitive family (Definition 4) is boosted;
//! * [`index`] — [`index::LshIndex`], a banded hash index answering
//!   *c*-approximate near-neighbour queries (Definition 3);
//! * [`nn`] — exact brute-force baselines for NN / R-NN (Definitions 1–2)
//!   and recall evaluation against them;
//! * [`cluster`] — single-linkage clustering over LSH candidate pairs, the
//!   web-clustering application of \[Haveliwala et al., 2000\].

pub mod amplify;
pub mod chi2;
pub mod cluster;
pub mod hamming;
pub mod index;
pub mod nn;
pub mod pstable;
pub mod simhash;
pub mod vector_index;

pub use amplify::Bands;
pub use index::LshIndex;
pub use simhash::SimHash;
pub use vector_index::{VectorIndex, VectorSignature};
