//! A banded LSH index answering c-approximate near-neighbour queries
//! (Definition 3) over any `Sketcher` from `wmh-core`.
//!
//! Sketch codes are grouped into bands; each band hashes to a bucket key.
//! Points sharing at least one bucket with the query are *candidates*; the
//! index then re-ranks candidates by estimated similarity (sketch collision
//! fraction) or by an exact measure the caller supplies.

use crate::amplify::{Bands, BandsError};
use std::collections::{HashMap, HashSet};
use wmh_core::{Sketch, SketchError, Sketcher};
use wmh_sets::WeightedSet;

/// Errors for [`LshIndex`].
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// The banding scheme needs more hashes than the sketcher produces.
    BandsExceedSketch {
        /// Hashes required (`b·r`).
        required: usize,
        /// Hashes available (`D`).
        available: usize,
    },
    /// A pre-computed sketch did not match the index's configured sketcher
    /// — wrong algorithm, seed, or fingerprint length `D`. Ingesting it
    /// would silently poison every similarity estimate (and a short sketch
    /// would previously have been truncated against the banding layout),
    /// so the mismatch is rejected typed-ly instead.
    SketchMismatch {
        /// `(algorithm, seed, D)` the index's sketcher produces.
        expected: (String, u64, usize),
        /// `(algorithm, seed, D)` of the offered sketch.
        got: (String, u64, usize),
    },
    /// A banding computation failed (e.g. fewer codes than `b·r`). Only
    /// reachable through defense-in-depth: every ingest path validates
    /// lengths before banding.
    Bands(BandsError),
    /// Underlying sketching failure.
    Sketch(SketchError),
    /// An insert offered an id the index already holds. Ids are the
    /// mutation handle (`remove_sketch` / `update_sketch` address points by
    /// id), so a second point under the same id would make every later
    /// mutation ambiguous; callers wanting replace semantics use
    /// [`LshIndex::update_sketch`].
    DuplicateId(u64),
    /// A remove/update named an id the index does not hold.
    UnknownId(u64),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BandsExceedSketch { required, available } => {
                write!(f, "banding needs {required} hashes, sketcher provides {available}")
            }
            Self::SketchMismatch { expected, got } => write!(
                f,
                "sketch provenance mismatch: index expects ({}, seed {}, D {}), got ({}, seed {}, D {})",
                expected.0, expected.1, expected.2, got.0, got.1, got.2
            ),
            Self::Bands(e) => write!(f, "banding failed: {e}"),
            Self::Sketch(e) => write!(f, "sketching failed: {e}"),
            Self::DuplicateId(id) => write!(f, "id {id} is already indexed"),
            Self::UnknownId(id) => write!(f, "id {id} is not indexed"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<SketchError> for IndexError {
    fn from(e: SketchError) -> Self {
        Self::Sketch(e)
    }
}

impl From<BandsError> for IndexError {
    fn from(e: BandsError) -> Self {
        Self::Bands(e)
    }
}

/// A banded index over the sketches of one configured [`Sketcher`].
///
/// ```
/// use wmh_lsh::{Bands, LshIndex};
/// use wmh_core::cws::Icws;
/// use wmh_sets::WeightedSet;
/// let mut idx = LshIndex::new(Icws::new(1, 64), Bands::new(16, 4).unwrap()).unwrap();
/// let doc = WeightedSet::from_pairs((0..30).map(|k| (k, 1.0))).unwrap();
/// idx.insert(7, &doc).unwrap();
/// let top = idx.query_top_k(&doc, 1).unwrap();
/// assert_eq!(top, vec![(7, 1.0)]);
/// ```
pub struct LshIndex<S: Sketcher> {
    sketcher: S,
    bands: Bands,
    buckets: Vec<HashMap<u64, Vec<usize>>>,
    sketches: Vec<Sketch>,
    ids: Vec<u64>,
    slot_of: HashMap<u64, usize>,
}

impl<S: Sketcher> LshIndex<S> {
    /// Create an index with a banding scheme.
    ///
    /// # Errors
    /// [`IndexError::BandsExceedSketch`] when `bands.total_hashes()` exceeds
    /// the sketcher's `D`.
    pub fn new(sketcher: S, bands: Bands) -> Result<Self, IndexError> {
        if bands.total_hashes() > sketcher.num_hashes() {
            return Err(IndexError::BandsExceedSketch {
                required: bands.total_hashes(),
                available: sketcher.num_hashes(),
            });
        }
        Ok(Self {
            buckets: vec![HashMap::new(); bands.bands],
            sketcher,
            bands,
            sketches: Vec::new(),
            ids: Vec::new(),
            slot_of: HashMap::new(),
        })
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The banding configuration.
    #[must_use]
    pub fn bands(&self) -> Bands {
        self.bands
    }

    /// Validate that a pre-computed sketch carries this index's provenance.
    fn check_provenance(&self, sketch: &Sketch) -> Result<(), IndexError> {
        if sketch.algorithm != self.sketcher.name()
            || sketch.seed != self.sketcher.seed()
            || sketch.len() != self.sketcher.num_hashes()
        {
            return Err(IndexError::SketchMismatch {
                expected: (
                    self.sketcher.name().to_owned(),
                    self.sketcher.seed(),
                    self.sketcher.num_hashes(),
                ),
                got: (sketch.algorithm.clone(), sketch.seed, sketch.len()),
            });
        }
        Ok(())
    }

    /// Whether `id` is indexed.
    #[must_use]
    pub fn contains_id(&self, id: u64) -> bool {
        self.slot_of.contains_key(&id)
    }

    /// Insert a point under a caller-chosen id.
    ///
    /// # Errors
    /// Propagates sketching errors (e.g. empty sets);
    /// [`IndexError::DuplicateId`] if `id` is already indexed.
    pub fn insert(&mut self, id: u64, point: &WeightedSet) -> Result<(), IndexError> {
        let sketch = self.sketcher.sketch(point)?;
        self.insert_banded(id, sketch)
    }

    /// Insert a pre-computed sketch (e.g. streamed out of a
    /// `wmh_core::SketchStore`) under a caller-chosen id.
    ///
    /// # Errors
    /// [`IndexError::SketchMismatch`] when the sketch's algorithm, seed, or
    /// dimension `D` differs from the index's configured sketcher — the
    /// mismatched sketch is rejected, never truncated.
    /// [`IndexError::DuplicateId`] if `id` is already indexed.
    pub fn insert_sketch(&mut self, id: u64, sketch: Sketch) -> Result<(), IndexError> {
        self.check_provenance(&sketch)?;
        self.insert_banded(id, sketch)
    }

    fn insert_banded(&mut self, id: u64, sketch: Sketch) -> Result<(), IndexError> {
        if self.slot_of.contains_key(&id) {
            return Err(IndexError::DuplicateId(id));
        }
        let slot = self.sketches.len();
        for (b, key) in self.bands.band_keys(&sketch.codes)?.into_iter().enumerate() {
            self.buckets[b].entry(key).or_default().push(slot);
        }
        self.sketches.push(sketch);
        self.ids.push(id);
        self.slot_of.insert(id, slot);
        Ok(())
    }

    /// Drop `slot`'s entries from every band bucket of `sketch`, pruning
    /// buckets that become empty so deleted keys do not accumulate.
    fn unlink_slot(&mut self, slot: usize, codes: &[u64]) -> Result<(), IndexError> {
        for (b, key) in self.bands.band_keys(codes)?.into_iter().enumerate() {
            if let Some(slots) = self.buckets[b].get_mut(&key) {
                slots.retain(|&s| s != slot);
                if slots.is_empty() {
                    self.buckets[b].remove(&key);
                }
            }
        }
        Ok(())
    }

    /// Remove the point indexed under `id`, returning its sketch.
    ///
    /// Internally the point's slot is back-filled by `swap_remove`; bucket
    /// membership is re-pointed, so query results are unaffected by the
    /// physical reshuffle (candidate ids are sorted before they leave the
    /// index, and scoring is per-candidate).
    ///
    /// # Errors
    /// [`IndexError::UnknownId`] if `id` is not indexed.
    pub fn remove_sketch(&mut self, id: u64) -> Result<Sketch, IndexError> {
        let Some(&slot) = self.slot_of.get(&id) else {
            return Err(IndexError::UnknownId(id));
        };
        let codes = self.sketches[slot].codes.clone();
        self.unlink_slot(slot, &codes)?;
        let last = self.sketches.len() - 1;
        if slot != last {
            // Re-point the back-filled point's bucket entries at its new slot.
            let moved_codes = self.sketches[last].codes.clone();
            for (b, key) in self.bands.band_keys(&moved_codes)?.into_iter().enumerate() {
                if let Some(slots) = self.buckets[b].get_mut(&key) {
                    for s in slots.iter_mut() {
                        if *s == last {
                            *s = slot;
                        }
                    }
                }
            }
        }
        let sketch = self.sketches.swap_remove(slot);
        self.ids.swap_remove(slot);
        self.slot_of.remove(&id);
        if slot != last {
            self.slot_of.insert(self.ids[slot], slot);
        }
        Ok(sketch)
    }

    /// Replace the sketch indexed under `id` in place (slot and id are
    /// preserved; only the band-bucket membership moves).
    ///
    /// The replacement is validated *before* anything is unlinked, so a
    /// rejected update leaves the index untouched.
    ///
    /// # Errors
    /// [`IndexError::SketchMismatch`] on provenance mismatch (wrong
    /// algorithm, seed, or dimension `D`); [`IndexError::UnknownId`] if `id`
    /// is not indexed.
    pub fn update_sketch(&mut self, id: u64, sketch: Sketch) -> Result<(), IndexError> {
        self.check_provenance(&sketch)?;
        let Some(&slot) = self.slot_of.get(&id) else {
            return Err(IndexError::UnknownId(id));
        };
        let old_codes = self.sketches[slot].codes.clone();
        self.unlink_slot(slot, &old_codes)?;
        for (b, key) in self.bands.band_keys(&sketch.codes)?.into_iter().enumerate() {
            self.buckets[b].entry(key).or_default().push(slot);
        }
        self.sketches[slot] = sketch;
        Ok(())
    }

    /// Candidate slots sharing at least one band bucket with the sketch.
    fn candidate_slots(&self, sketch: &Sketch) -> Result<HashSet<usize>, IndexError> {
        let mut seen = HashSet::new();
        for (b, key) in self.bands.band_keys(&sketch.codes)?.into_iter().enumerate() {
            if let Some(slots) = self.buckets[b].get(&key) {
                seen.extend(slots.iter().copied());
            }
        }
        Ok(seen)
    }

    /// Candidate ids sharing at least one band bucket with the query.
    ///
    /// # Errors
    /// Propagates sketching errors.
    pub fn candidates(&self, query: &WeightedSet) -> Result<Vec<u64>, IndexError> {
        let sketch = self.sketcher.sketch(query)?;
        self.candidates_for_sketch(&sketch)
    }

    /// Candidate ids for a pre-computed query sketch (the sketch-once,
    /// probe-everywhere path the serving layer fans out over shards).
    ///
    /// # Errors
    /// [`IndexError::SketchMismatch`] on provenance mismatch.
    pub fn candidates_for_sketch(&self, sketch: &Sketch) -> Result<Vec<u64>, IndexError> {
        self.check_provenance(sketch)?;
        let mut out: Vec<u64> =
            self.candidate_slots(sketch)?.into_iter().map(|s| self.ids[s]).collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Top-`k` neighbours by estimated similarity among the candidates:
    /// `(id, estimated similarity)`, highest first.
    ///
    /// # Errors
    /// Propagates sketching errors.
    pub fn query_top_k(
        &self,
        query: &WeightedSet,
        k: usize,
    ) -> Result<Vec<(u64, f64)>, IndexError> {
        let sketch = self.sketcher.sketch(query)?;
        let mut scored = Vec::new();
        for s in self.candidate_slots(&sketch)? {
            // Index sketches share the sketcher by construction, but the
            // estimator stays total: a mismatch surfaces typed, not as a
            // panic in the middle of a query.
            let est = sketch.try_estimate_similarity(&self.sketches[s])?;
            scored.push((self.ids[s], est));
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// All ids whose *estimated* similarity to the query is at least
    /// `threshold` (the R-near-neighbour query of Definition 2, with
    /// similarity standing in for distance).
    ///
    /// # Errors
    /// Propagates sketching errors.
    pub fn query_above(
        &self,
        query: &WeightedSet,
        threshold: f64,
    ) -> Result<Vec<(u64, f64)>, IndexError> {
        let mut all = self.query_top_k(query, usize::MAX)?;
        all.retain(|&(_, est)| est >= threshold);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_core::cws::Icws;
    use wmh_core::minhash::MinHash;

    fn ws(pairs: &[(u64, f64)]) -> WeightedSet {
        WeightedSet::from_pairs(pairs.iter().copied()).expect("valid")
    }

    /// A small corpus: clusters of near-duplicates plus noise.
    fn corpus() -> Vec<(u64, WeightedSet)> {
        let mut docs = Vec::new();
        for c in 0..5u64 {
            let base: Vec<(u64, f64)> =
                (0..60).map(|i| (c * 1000 + i, 1.0 + (i % 4) as f64 * 0.3)).collect();
            for v in 0..4u64 {
                // Variants: drop a few elements, keep most weights.
                let pairs: Vec<(u64, f64)> = base
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !(*i as u64 + v).is_multiple_of(17))
                    .map(|(_, &p)| p)
                    .collect();
                docs.push((c * 10 + v, ws(&pairs)));
            }
        }
        docs
    }

    #[test]
    fn rejects_oversized_banding() {
        let err = match LshIndex::new(MinHash::new(1, 16), Bands::new(8, 4).unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("oversized banding accepted"),
        };
        assert_eq!(err, IndexError::BandsExceedSketch { required: 32, available: 16 });
    }

    #[test]
    fn near_duplicates_are_retrieved() {
        let mut idx = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        let docs = corpus();
        for (id, d) in &docs {
            idx.insert(*id, d).unwrap();
        }
        assert_eq!(idx.len(), docs.len());
        // Query with each doc: its cluster mates should dominate top-4.
        for (id, d) in &docs {
            let top = idx.query_top_k(d, 4).unwrap();
            assert_eq!(top[0].0, *id, "self is most similar");
            assert!((top[0].1 - 1.0).abs() < 1e-12);
            let cluster = id / 10;
            let mates = top.iter().filter(|(tid, _)| tid / 10 == cluster).count();
            assert!(mates >= 3, "doc {id}: only {mates} cluster mates in top-4");
        }
    }

    #[test]
    fn unrelated_queries_return_few_candidates() {
        let mut idx = LshIndex::new(MinHash::new(3, 128), Bands::new(16, 8).unwrap()).unwrap();
        for (id, d) in corpus() {
            idx.insert(id, &d).unwrap();
        }
        let probe = ws(&(0..50u64).map(|k| (900_000 + k, 1.0)).collect::<Vec<_>>());
        let cands = idx.candidates(&probe).unwrap();
        assert!(cands.len() <= 1, "unrelated probe matched {cands:?}");
    }

    #[test]
    fn query_above_threshold_filters() {
        let mut idx = LshIndex::new(Icws::new(4, 128), Bands::new(32, 4).unwrap()).unwrap();
        let docs = corpus();
        for (id, d) in &docs {
            idx.insert(*id, d).unwrap();
        }
        let hits = idx.query_above(&docs[0].1, 0.7).unwrap();
        assert!(hits.iter().any(|&(id, _)| id == docs[0].0));
        assert!(hits.iter().all(|&(_, est)| est >= 0.7));
    }

    #[test]
    fn empty_query_is_an_error() {
        let idx = LshIndex::new(MinHash::new(5, 64), Bands::new(16, 4).unwrap()).unwrap();
        assert!(matches!(
            idx.candidates(&WeightedSet::empty()),
            Err(IndexError::Sketch(SketchError::EmptySet))
        ));
    }

    #[test]
    fn insert_sketch_accepts_matching_provenance() {
        let sketcher = Icws::new(2, 128);
        let mut by_set = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        let mut by_sketch = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        let docs = corpus();
        for (id, d) in &docs {
            by_set.insert(*id, d).unwrap();
            by_sketch.insert_sketch(*id, sketcher.sketch(d).unwrap()).unwrap();
        }
        // Pre-sketched ingest is indistinguishable from set ingest.
        for (_, d) in &docs {
            assert_eq!(by_set.candidates(d).unwrap(), by_sketch.candidates(d).unwrap());
            assert_eq!(by_set.query_top_k(d, 4).unwrap(), by_sketch.query_top_k(d, 4).unwrap());
        }
    }

    #[test]
    fn insert_sketch_rejects_dimension_mismatch() {
        // Regression: a D=32 sketch offered to a D=128 index used to be
        // silently truncated by the banding slice (or panic, depending on
        // layout); it must be a typed rejection.
        let mut idx = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        let doc = ws(&[(1, 1.0), (2, 2.0), (3, 0.5)]);
        let short = Icws::new(2, 32).sketch(&doc).unwrap();
        let err = idx.insert_sketch(7, short).unwrap_err();
        assert_eq!(
            err,
            IndexError::SketchMismatch {
                expected: ("ICWS".into(), 2, 128),
                got: ("ICWS".into(), 2, 32),
            }
        );
        assert!(idx.is_empty(), "rejected sketch must not be ingested");
    }

    #[test]
    fn insert_sketch_rejects_wrong_algorithm_or_seed() {
        let mut idx = LshIndex::new(Icws::new(2, 64), Bands::new(16, 4).unwrap()).unwrap();
        let doc = ws(&[(1, 1.0), (2, 2.0)]);
        let minhash = MinHash::new(2, 64).sketch(&doc).unwrap();
        assert!(matches!(idx.insert_sketch(1, minhash), Err(IndexError::SketchMismatch { .. })));
        let wrong_seed = Icws::new(3, 64).sketch(&doc).unwrap();
        assert!(matches!(idx.insert_sketch(1, wrong_seed), Err(IndexError::SketchMismatch { .. })));
        // Query-side provenance is checked the same way.
        let q = Icws::new(3, 64).sketch(&doc).unwrap();
        assert!(matches!(idx.candidates_for_sketch(&q), Err(IndexError::SketchMismatch { .. })));
    }

    #[test]
    fn duplicate_id_is_rejected() {
        let mut idx = LshIndex::new(Icws::new(2, 64), Bands::new(16, 4).unwrap()).unwrap();
        let doc = ws(&[(1, 1.0), (2, 2.0)]);
        idx.insert(7, &doc).unwrap();
        assert_eq!(idx.insert(7, &doc).unwrap_err(), IndexError::DuplicateId(7));
        assert_eq!(idx.len(), 1, "rejected duplicate must not be ingested");
    }

    #[test]
    fn delete_then_query_forgets_the_point() {
        // Regression for the delete path: a removed id must vanish from
        // candidates AND top-k, and every surviving id must still be
        // retrievable despite the swap_remove backfill.
        let mut idx = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        let docs = corpus();
        for (id, d) in &docs {
            idx.insert(*id, d).unwrap();
        }
        // Remove half the corpus, front-loaded so backfill moves live slots.
        let (gone, kept): (Vec<_>, Vec<_>) = docs.iter().partition(|(id, _)| id % 2 == 0);
        for (id, _) in &gone {
            idx.remove_sketch(*id).unwrap();
            assert!(!idx.contains_id(*id));
        }
        assert_eq!(idx.len(), kept.len());
        for (id, d) in &gone {
            let cands = idx.candidates(d).unwrap();
            assert!(!cands.contains(id), "removed id {id} still a candidate");
        }
        for (id, d) in &kept {
            let top = idx.query_top_k(d, 4).unwrap();
            assert_eq!(top[0].0, *id, "surviving id {id} must stay its own best match");
            assert!(top.iter().all(|(tid, _)| !gone.iter().any(|(g, _)| g == tid)));
        }
        // Removing again is a typed error, not a panic or a silent no-op.
        assert_eq!(idx.remove_sketch(gone[0].0).unwrap_err(), IndexError::UnknownId(gone[0].0));
    }

    #[test]
    fn remove_matches_never_inserted() {
        // Delete-everything-then-reinsert must behave exactly like a fresh
        // index: no ghost buckets, no stale slots.
        let docs = corpus();
        let mut churned = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        for (id, d) in &docs {
            churned.insert(*id, d).unwrap();
        }
        for (id, _) in &docs {
            churned.remove_sketch(*id).unwrap();
        }
        assert!(churned.is_empty());
        for (id, d) in &docs {
            churned.insert(*id, d).unwrap();
        }
        let mut fresh = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        for (id, d) in &docs {
            fresh.insert(*id, d).unwrap();
        }
        for (_, d) in &docs {
            assert_eq!(churned.candidates(d).unwrap(), fresh.candidates(d).unwrap());
            assert_eq!(churned.query_top_k(d, 4).unwrap(), fresh.query_top_k(d, 4).unwrap());
        }
    }

    #[test]
    fn update_moves_the_point() {
        let sketcher = Icws::new(2, 128);
        let mut idx = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        let docs = corpus();
        for (id, d) in &docs {
            idx.insert(*id, d).unwrap();
        }
        // Drift doc 0 onto cluster 4's content: it must start matching its
        // new neighbourhood and stop matching its old one.
        let target = &docs.iter().find(|(id, _)| *id == 40).unwrap().1;
        idx.update_sketch(0, sketcher.sketch(target).unwrap()).unwrap();
        let top = idx.query_top_k(target, 2).unwrap();
        let top_ids: Vec<u64> = top.iter().map(|(id, _)| *id).collect();
        assert!(top_ids.contains(&0), "updated point must match its new content: {top_ids:?}");
        let old = idx.query_top_k(&docs[0].1, 4).unwrap();
        assert!(old.iter().all(|&(id, est)| id != 0 || est < 1.0));
        assert_eq!(idx.len(), docs.len(), "update must not change the point count");
    }

    #[test]
    fn update_rejects_dimension_mismatch_untouched() {
        // Regression: a dimension-mismatched update must be rejected BEFORE
        // the old sketch is unlinked, leaving the point queryable.
        let mut idx = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        let doc = ws(&[(1, 1.0), (2, 2.0), (3, 0.5)]);
        idx.insert(9, &doc).unwrap();
        let short = Icws::new(2, 32).sketch(&doc).unwrap();
        let err = idx.update_sketch(9, short).unwrap_err();
        assert!(matches!(err, IndexError::SketchMismatch { .. }));
        assert_eq!(idx.query_top_k(&doc, 1).unwrap()[0], (9, 1.0), "point must survive");
        // Unknown-id update is typed too.
        let fine = Icws::new(2, 128).sketch(&doc).unwrap();
        assert_eq!(idx.update_sketch(8, fine).unwrap_err(), IndexError::UnknownId(8));
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = LshIndex::new(MinHash::new(6, 64), Bands::new(16, 4).unwrap()).unwrap();
        assert!(idx.is_empty());
        let q = ws(&[(1, 1.0)]);
        assert!(idx.candidates(&q).unwrap().is_empty());
        assert!(idx.query_top_k(&q, 3).unwrap().is_empty());
    }
}
