//! A banded LSH index answering c-approximate near-neighbour queries
//! (Definition 3) over any `Sketcher` from `wmh-core`.
//!
//! Sketch codes are grouped into bands; each band hashes to a bucket key.
//! Points sharing at least one bucket with the query are *candidates*; the
//! index then re-ranks candidates by estimated similarity (sketch collision
//! fraction) or by an exact measure the caller supplies.

use crate::amplify::Bands;
use std::collections::{HashMap, HashSet};
use wmh_core::{Sketch, SketchError, Sketcher};
use wmh_hash::mix::combine;
use wmh_sets::WeightedSet;

/// Errors for [`LshIndex`].
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// The banding scheme needs more hashes than the sketcher produces.
    BandsExceedSketch {
        /// Hashes required (`b·r`).
        required: usize,
        /// Hashes available (`D`).
        available: usize,
    },
    /// Underlying sketching failure.
    Sketch(SketchError),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BandsExceedSketch { required, available } => {
                write!(f, "banding needs {required} hashes, sketcher provides {available}")
            }
            Self::Sketch(e) => write!(f, "sketching failed: {e}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<SketchError> for IndexError {
    fn from(e: SketchError) -> Self {
        Self::Sketch(e)
    }
}

/// A banded index over the sketches of one configured [`Sketcher`].
///
/// ```
/// use wmh_lsh::{Bands, LshIndex};
/// use wmh_core::cws::Icws;
/// use wmh_sets::WeightedSet;
/// let mut idx = LshIndex::new(Icws::new(1, 64), Bands::new(16, 4).unwrap()).unwrap();
/// let doc = WeightedSet::from_pairs((0..30).map(|k| (k, 1.0))).unwrap();
/// idx.insert(7, &doc).unwrap();
/// let top = idx.query_top_k(&doc, 1).unwrap();
/// assert_eq!(top, vec![(7, 1.0)]);
/// ```
pub struct LshIndex<S: Sketcher> {
    sketcher: S,
    bands: Bands,
    buckets: Vec<HashMap<u64, Vec<usize>>>,
    sketches: Vec<Sketch>,
    ids: Vec<u64>,
}

impl<S: Sketcher> LshIndex<S> {
    /// Create an index with a banding scheme.
    ///
    /// # Errors
    /// [`IndexError::BandsExceedSketch`] when `bands.total_hashes()` exceeds
    /// the sketcher's `D`.
    pub fn new(sketcher: S, bands: Bands) -> Result<Self, IndexError> {
        if bands.total_hashes() > sketcher.num_hashes() {
            return Err(IndexError::BandsExceedSketch {
                required: bands.total_hashes(),
                available: sketcher.num_hashes(),
            });
        }
        Ok(Self {
            buckets: vec![HashMap::new(); bands.bands],
            sketcher,
            bands,
            sketches: Vec::new(),
            ids: Vec::new(),
        })
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The banding configuration.
    #[must_use]
    pub fn bands(&self) -> Bands {
        self.bands
    }

    fn band_keys(&self, sketch: &Sketch) -> Vec<u64> {
        (0..self.bands.bands)
            .map(|b| {
                let start = b * self.bands.rows;
                let mut acc = 0x9E37_79B9u64 ^ b as u64;
                for &code in &sketch.codes[start..start + self.bands.rows] {
                    acc = combine(acc, code);
                }
                acc
            })
            .collect()
    }

    /// Insert a point under a caller-chosen id.
    ///
    /// # Errors
    /// Propagates sketching errors (e.g. empty sets).
    pub fn insert(&mut self, id: u64, point: &WeightedSet) -> Result<(), IndexError> {
        let sketch = self.sketcher.sketch(point)?;
        let slot = self.sketches.len();
        for (b, key) in self.band_keys(&sketch).into_iter().enumerate() {
            self.buckets[b].entry(key).or_default().push(slot);
        }
        self.sketches.push(sketch);
        self.ids.push(id);
        Ok(())
    }

    /// Candidate ids sharing at least one band bucket with the query.
    ///
    /// # Errors
    /// Propagates sketching errors.
    pub fn candidates(&self, query: &WeightedSet) -> Result<Vec<u64>, IndexError> {
        let sketch = self.sketcher.sketch(query)?;
        let mut seen = HashSet::new();
        for (b, key) in self.band_keys(&sketch).into_iter().enumerate() {
            if let Some(slots) = self.buckets[b].get(&key) {
                seen.extend(slots.iter().copied());
            }
        }
        let mut out: Vec<u64> = seen.into_iter().map(|s| self.ids[s]).collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Top-`k` neighbours by estimated similarity among the candidates:
    /// `(id, estimated similarity)`, highest first.
    ///
    /// # Errors
    /// Propagates sketching errors.
    pub fn query_top_k(
        &self,
        query: &WeightedSet,
        k: usize,
    ) -> Result<Vec<(u64, f64)>, IndexError> {
        let sketch = self.sketcher.sketch(query)?;
        let mut seen = HashSet::new();
        for (b, key) in self.band_keys(&sketch).into_iter().enumerate() {
            if let Some(slots) = self.buckets[b].get(&key) {
                seen.extend(slots.iter().copied());
            }
        }
        let mut scored: Vec<(u64, f64)> = seen
            .into_iter()
            .map(|s| {
                let est = sketch
                    .try_estimate_similarity(&self.sketches[s])
                    .expect("index sketches share the sketcher");
                (self.ids[s], est)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// All ids whose *estimated* similarity to the query is at least
    /// `threshold` (the R-near-neighbour query of Definition 2, with
    /// similarity standing in for distance).
    ///
    /// # Errors
    /// Propagates sketching errors.
    pub fn query_above(
        &self,
        query: &WeightedSet,
        threshold: f64,
    ) -> Result<Vec<(u64, f64)>, IndexError> {
        let mut all = self.query_top_k(query, usize::MAX)?;
        all.retain(|&(_, est)| est >= threshold);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_core::cws::Icws;
    use wmh_core::minhash::MinHash;

    fn ws(pairs: &[(u64, f64)]) -> WeightedSet {
        WeightedSet::from_pairs(pairs.iter().copied()).expect("valid")
    }

    /// A small corpus: clusters of near-duplicates plus noise.
    fn corpus() -> Vec<(u64, WeightedSet)> {
        let mut docs = Vec::new();
        for c in 0..5u64 {
            let base: Vec<(u64, f64)> =
                (0..60).map(|i| (c * 1000 + i, 1.0 + (i % 4) as f64 * 0.3)).collect();
            for v in 0..4u64 {
                // Variants: drop a few elements, keep most weights.
                let pairs: Vec<(u64, f64)> = base
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !(*i as u64 + v).is_multiple_of(17))
                    .map(|(_, &p)| p)
                    .collect();
                docs.push((c * 10 + v, ws(&pairs)));
            }
        }
        docs
    }

    #[test]
    fn rejects_oversized_banding() {
        let err = match LshIndex::new(MinHash::new(1, 16), Bands::new(8, 4).unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("oversized banding accepted"),
        };
        assert_eq!(err, IndexError::BandsExceedSketch { required: 32, available: 16 });
    }

    #[test]
    fn near_duplicates_are_retrieved() {
        let mut idx = LshIndex::new(Icws::new(2, 128), Bands::new(32, 4).unwrap()).unwrap();
        let docs = corpus();
        for (id, d) in &docs {
            idx.insert(*id, d).unwrap();
        }
        assert_eq!(idx.len(), docs.len());
        // Query with each doc: its cluster mates should dominate top-4.
        for (id, d) in &docs {
            let top = idx.query_top_k(d, 4).unwrap();
            assert_eq!(top[0].0, *id, "self is most similar");
            assert!((top[0].1 - 1.0).abs() < 1e-12);
            let cluster = id / 10;
            let mates = top.iter().filter(|(tid, _)| tid / 10 == cluster).count();
            assert!(mates >= 3, "doc {id}: only {mates} cluster mates in top-4");
        }
    }

    #[test]
    fn unrelated_queries_return_few_candidates() {
        let mut idx = LshIndex::new(MinHash::new(3, 128), Bands::new(16, 8).unwrap()).unwrap();
        for (id, d) in corpus() {
            idx.insert(id, &d).unwrap();
        }
        let probe = ws(&(0..50u64).map(|k| (900_000 + k, 1.0)).collect::<Vec<_>>());
        let cands = idx.candidates(&probe).unwrap();
        assert!(cands.len() <= 1, "unrelated probe matched {cands:?}");
    }

    #[test]
    fn query_above_threshold_filters() {
        let mut idx = LshIndex::new(Icws::new(4, 128), Bands::new(32, 4).unwrap()).unwrap();
        let docs = corpus();
        for (id, d) in &docs {
            idx.insert(*id, d).unwrap();
        }
        let hits = idx.query_above(&docs[0].1, 0.7).unwrap();
        assert!(hits.iter().any(|&(id, _)| id == docs[0].0));
        assert!(hits.iter().all(|&(_, est)| est >= 0.7));
    }

    #[test]
    fn empty_query_is_an_error() {
        let idx = LshIndex::new(MinHash::new(5, 64), Bands::new(16, 4).unwrap()).unwrap();
        assert!(matches!(
            idx.candidates(&WeightedSet::empty()),
            Err(IndexError::Sketch(SketchError::EmptySet))
        ));
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = LshIndex::new(MinHash::new(6, 64), Bands::new(16, 4).unwrap()).unwrap();
        assert!(idx.is_empty());
        let q = ws(&[(1, 1.0)]);
        assert!(idx.candidates(&q).unwrap().is_empty());
        assert!(idx.query_top_k(&q, 3).unwrap().is_empty());
    }
}
