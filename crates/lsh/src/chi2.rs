//! χ²-LSH for the χ² distance (Gorisse, Cord & Precioso, TPAMI 2012; paper
//! Table 1).
//!
//! Like the p-stable family, χ²-LSH projects onto a random Gaussian
//! direction — but quantizes the projection with *quadratically growing*
//! cells instead of equal-width ones: cell `m ≥ 0` covers
//! `[w²·m(m+1)/2, w²·(m+1)(m+2)/2)` on each side of the origin. Gorisse et
//! al. show this matches the geometry of the χ² distance
//! (`χ²(x, y) = Σ (x_i − y_i)²/(x_i + y_i)`), whose balls grow like the
//! *square root* of the corresponding `l_2` balls.

use wmh_hash::seeded::role;
use wmh_hash::SeededHash;
use wmh_rng::dist::normal_from_units;
use wmh_sets::WeightedSet;

/// The χ²-LSH family.
#[derive(Debug, Clone)]
pub struct Chi2Lsh {
    oracle: SeededHash,
    width: f64,
    num_hashes: usize,
}

/// Errors for [`Chi2Lsh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Chi2Error {
    /// Cell scale must be positive and finite.
    BadWidth(f64),
}

impl std::fmt::Display for Chi2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadWidth(w) => write!(f, "cell scale {w} must be positive and finite"),
        }
    }
}

impl std::error::Error for Chi2Error {}

impl Chi2Lsh {
    /// Create the family with cell scale `w`.
    ///
    /// # Errors
    /// [`Chi2Error::BadWidth`] for non-finite or non-positive scales.
    pub fn new(seed: u64, num_hashes: usize, width: f64) -> Result<Self, Chi2Error> {
        if !width.is_finite() || width <= 0.0 {
            return Err(Chi2Error::BadWidth(width));
        }
        Ok(Self { oracle: SeededHash::new(seed), width, num_hashes })
    }

    /// Number of hash functions.
    #[must_use]
    pub fn num_hashes(&self) -> usize {
        self.num_hashes
    }

    /// Quadratic cell index of a signed projection value: cell boundaries
    /// on each side of zero sit at `w²·m(m+1)/2`.
    #[must_use]
    pub fn cell(&self, projection: f64) -> i64 {
        let scaled = projection.abs() / (self.width * self.width);
        // Solve m(m+1)/2 ≤ scaled: m = ⌊(√(1+8·scaled) − 1)/2⌋.
        let m = (((1.0 + 8.0 * scaled).sqrt() - 1.0) / 2.0).floor() as i64;
        if projection < 0.0 {
            -m - 1
        } else {
            m
        }
    }

    /// The `d`-th cell index of a vector (with a consistent random offset,
    /// as in E2LSH).
    #[must_use]
    pub fn bucket(&self, v: &WeightedSet, d: usize) -> i64 {
        let dot: f64 = v
            .iter()
            .map(|(k, w)| {
                w * normal_from_units(
                    self.oracle.unit3(role::MINHASH ^ 0x71, d as u64, k),
                    self.oracle.unit3(role::MINHASH ^ 0x72, d as u64, k),
                )
            })
            .sum();
        let b = self.oracle.unit2(role::MINHASH ^ 0x73, d as u64) * self.width * self.width;
        self.cell(dot + b)
    }

    /// All `D` cell indices.
    #[must_use]
    pub fn signature(&self, v: &WeightedSet) -> Vec<i64> {
        (0..self.num_hashes).map(|d| self.bucket(v, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_sets::chi2_distance;

    fn ws(pairs: &[(u64, f64)]) -> WeightedSet {
        WeightedSet::from_pairs(pairs.iter().copied()).expect("valid")
    }

    #[test]
    fn rejects_bad_width() {
        assert!(Chi2Lsh::new(1, 4, -1.0).is_err());
        assert!(Chi2Lsh::new(1, 4, f64::INFINITY).is_err());
        assert!(Chi2Lsh::new(1, 4, 0.5).is_ok());
    }

    #[test]
    fn cell_boundaries_are_quadratic() {
        let lsh = Chi2Lsh::new(2, 1, 1.0).unwrap();
        // Boundaries at m(m+1)/2: 0, 1, 3, 6, 10 …
        assert_eq!(lsh.cell(0.0), 0);
        assert_eq!(lsh.cell(0.99), 0);
        assert_eq!(lsh.cell(1.01), 1);
        assert_eq!(lsh.cell(2.99), 1);
        assert_eq!(lsh.cell(3.01), 2);
        assert_eq!(lsh.cell(9.99), 3);
        assert_eq!(lsh.cell(10.01), 4);
        // Negative side mirrors with distinct indices.
        assert_eq!(lsh.cell(-0.5), -1);
        assert_eq!(lsh.cell(-1.5), -2);
    }

    #[test]
    fn cells_widen_away_from_origin() {
        let lsh = Chi2Lsh::new(3, 1, 1.0).unwrap();
        // Cell m spans m+1 units: verify occupancy of a uniform sweep.
        let mut width_of = std::collections::HashMap::new();
        let mut x = 0.0;
        while x < 50.0 {
            *width_of.entry(lsh.cell(x)).or_insert(0u32) += 1;
            x += 0.01;
        }
        assert!(width_of[&4] > width_of[&1]);
        assert!(width_of[&8] > width_of[&4]);
    }

    #[test]
    fn identical_points_always_collide() {
        let lsh = Chi2Lsh::new(4, 64, 0.7).unwrap();
        let v = ws(&[(1, 0.2), (9, 1.0)]);
        assert_eq!(lsh.signature(&v), lsh.signature(&v));
    }

    #[test]
    fn closer_in_chi2_collides_more() {
        let trials = 3000;
        let lsh = Chi2Lsh::new(5, trials, 1.0).unwrap();
        let base = ws(&(0..20u64).map(|k| (k, 1.0)).collect::<Vec<_>>());
        let near = ws(&(0..20u64).map(|k| (k, 1.2)).collect::<Vec<_>>());
        let far = ws(&(0..20u64).map(|k| (k, 6.0)).collect::<Vec<_>>());
        assert!(chi2_distance(&base, &near) < chi2_distance(&base, &far));
        let hits = |u: &WeightedSet| {
            (0..trials).filter(|&d| lsh.bucket(&base, d) == lsh.bucket(u, d)).count()
        };
        assert!(hits(&near) > hits(&far) + 100, "near {} far {}", hits(&near), hits(&far));
    }
}
