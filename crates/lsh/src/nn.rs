//! Exact nearest-neighbour baselines and recall evaluation (paper
//! Definitions 1–3).
//!
//! The brute-force scans here are the ground truth against which the
//! [`crate::index::LshIndex`] is measured: Definition 1 (NN), Definition 2
//! (R-NN) and the recall of a c-approximate answer set.

use wmh_sets::WeightedSet;

/// A similarity function (larger = closer). The generalized Jaccard of
/// Eq. 2 is the usual instantiation.
pub type Similarity = fn(&WeightedSet, &WeightedSet) -> f64;

/// Definition 1: the exact nearest neighbour by brute force.
///
/// Returns `(index into points, similarity)`; `None` for an empty corpus.
#[must_use]
pub fn nearest_neighbor(
    query: &WeightedSet,
    points: &[WeightedSet],
    sim: Similarity,
) -> Option<(usize, f64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, sim(query, p)))
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
}

/// Definition 2: all points with similarity at least `threshold`
/// (the similarity-form of the fixed-radius R-NN query), sorted by
/// descending similarity.
#[must_use]
pub fn range_neighbors(
    query: &WeightedSet,
    points: &[WeightedSet],
    sim: Similarity,
    threshold: f64,
) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, sim(query, p)))
        .filter(|&(_, s)| s >= threshold)
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Exact top-`k` by brute force, sorted by descending similarity.
#[must_use]
pub fn top_k(
    query: &WeightedSet,
    points: &[WeightedSet],
    sim: Similarity,
    k: usize,
) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> =
        points.iter().enumerate().map(|(i, p)| (i, sim(query, p))).collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

/// Recall of an approximate answer set against the exact one:
/// `|approx ∩ exact| / |exact|`. Returns 1.0 when the exact set is empty.
#[must_use]
pub fn recall(approx: &[u64], exact: &[u64]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let exact_set: std::collections::HashSet<u64> = exact.iter().copied().collect();
    let hit = approx.iter().filter(|id| exact_set.contains(id)).count();
    hit as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_sets::generalized_jaccard;

    fn ws(pairs: &[(u64, f64)]) -> WeightedSet {
        WeightedSet::from_pairs(pairs.iter().copied()).expect("valid")
    }

    fn corpus() -> Vec<WeightedSet> {
        vec![ws(&[(1, 1.0), (2, 1.0)]), ws(&[(1, 1.0), (2, 1.0), (3, 1.0)]), ws(&[(9, 1.0)])]
    }

    #[test]
    fn nearest_neighbor_finds_best() {
        let q = ws(&[(1, 1.0), (2, 1.0)]);
        let (i, s) = nearest_neighbor(&q, &corpus(), generalized_jaccard).unwrap();
        assert_eq!(i, 0);
        assert_eq!(s, 1.0);
        assert!(nearest_neighbor(&q, &[], generalized_jaccard).is_none());
    }

    #[test]
    fn range_neighbors_filters_and_sorts() {
        let q = ws(&[(1, 1.0), (2, 1.0)]);
        let r = range_neighbors(&q, &corpus(), generalized_jaccard, 0.5);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 0);
        assert_eq!(r[1].0, 1);
        assert!(r[0].1 >= r[1].1);
        assert!(range_neighbors(&q, &corpus(), generalized_jaccard, 1.1).is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let q = ws(&[(1, 1.0), (2, 1.0)]);
        let t = top_k(&q, &corpus(), generalized_jaccard, 2);
        assert_eq!(t.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(top_k(&q, &corpus(), generalized_jaccard, 0).len(), 0);
    }

    #[test]
    fn recall_reference_values() {
        assert_eq!(recall(&[1, 2, 3], &[1, 2]), 1.0);
        assert_eq!(recall(&[1], &[1, 2]), 0.5);
        assert_eq!(recall(&[], &[1, 2]), 0.0);
        assert_eq!(recall(&[5], &[]), 1.0);
    }
}
