//! Background integrity scrubbing for the durability lifecycle.
//!
//! Disks lie slowly: a snapshot or a sealed WAL segment that verified at
//! write time can rot in place, and the damage stays invisible until the
//! one moment it matters — recovery. The scrubber re-verifies the durable
//! files *before* they are needed and spot-checks that shard memory still
//! matches the authoritative mirror, so latent corruption is found (and
//! healed) while the service is healthy enough to re-establish
//! durability.
//!
//! The split of responsibilities:
//!
//! * [`scan_files`] (this module) is the read-only phase-A walk: verify
//!   every snapshot end-to-end and every WAL segment's frames, and
//!   classify what is damaged. It holds no locks and mutates nothing.
//! * [`crate::Service::scrub`] owns the healing: it runs `scan_files`
//!   under the writer lock, quarantines damaged files, takes a fresh
//!   snapshot, and audits/rebuilds mismatching shards. The split keeps
//!   the verification logic testable without a running fleet.
//! * [`Scrubber`]/[`spawn_scrubber`] wrap the whole pass in a
//!   low-priority background loop for the TCP front end.
//!
//! The injectable faults: `serve::scrub` fails a whole pass (exercising
//! the caller's error path), and `serve::scrub_audit` (tagged with the
//! shard id) injects a fingerprint mismatch, driving the
//! quarantine-and-rebuild healing path without having to corrupt a live
//! worker's memory from outside.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::Service;
use crate::snapshot;
use crate::wal::{self, WalError, WalProvenance};

/// What one scrub pass found and did. Damage is data, not an error: a
/// pass that finds corruption still returns `Ok(report)` with the healing
/// actions (and any healing *failures*) recorded here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Snapshot files verified end-to-end.
    pub snapshots_checked: usize,
    /// WAL segments whose frames were re-verified.
    pub segments_checked: usize,
    /// Damaged snapshots, as `path: reason` strings (quarantined to
    /// `*.bad` by the healing phase).
    pub corrupt_snapshots: Vec<String>,
    /// Generations of damaged *sealed* segments (the active tail's torn
    /// bytes are normal operation, not damage).
    pub corrupt_segments: Vec<u64>,
    /// Live ids spot-checked against shard memory.
    pub ids_spot_checked: usize,
    /// Shards that received an audit job.
    pub shards_audited: usize,
    /// Shards whose reported fingerprints disagreed with the mirror
    /// (quarantined and rebuilt by the healing phase).
    pub mismatched_shards: Vec<usize>,
    /// The fresh snapshot generation taken after file damage, if any.
    pub snapshot_taken: Option<u64>,
    /// Healing steps that themselves failed (the damage they targeted is
    /// still listed above).
    pub heal_errors: Vec<String>,
}

/// Phase-A findings: what the read-only file walk classified as damaged.
pub(crate) struct FileFindings {
    pub snapshots_checked: usize,
    pub segments_checked: usize,
    /// `(generation, path, reason)` per damaged snapshot.
    pub corrupt_snapshots: Vec<(u64, PathBuf, String)>,
    /// Generations of damaged sealed segments.
    pub corrupt_segments: Vec<u64>,
}

/// Walk `dir` read-only: verify every snapshot end-to-end and every WAL
/// segment's frames against `provenance`. Segments at `active_gen` are
/// exempt from the torn-bytes check (an in-progress tail is normal) and
/// never classified corrupt — the append path owns the active segment.
///
/// # Errors
/// [`WalError::Io`] when the directory itself cannot be walked. Per-file
/// damage is findings, not an error.
pub(crate) fn scan_files(
    dir: &Path,
    provenance: &WalProvenance,
    active_gen: u64,
) -> Result<FileFindings, WalError> {
    let mut findings = FileFindings {
        snapshots_checked: 0,
        segments_checked: 0,
        corrupt_snapshots: Vec::new(),
        corrupt_segments: Vec::new(),
    };
    for (gen, path) in snapshot::list(dir)? {
        findings.snapshots_checked += 1;
        if let Err(e) = snapshot::verify_file(&path, provenance) {
            findings.corrupt_snapshots.push((gen, path, e.to_string()));
        }
    }
    let info = wal::inspect(dir)?;
    for segment in &info.segments {
        findings.segments_checked += 1;
        if segment.generation >= active_gen {
            continue;
        }
        if segment.error.is_some() || segment.torn_bytes > 0 {
            findings.corrupt_segments.push(segment.generation);
        }
    }
    Ok(findings)
}

/// A running background scrubber; dropping it (or calling [`stop`])
/// stops the loop and joins the thread.
///
/// [`stop`]: Scrubber::stop
pub struct Scrubber {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Scrubber {
    /// Signal the loop to stop and join it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawn a background loop that runs [`Service::scrub`] every `interval`.
/// Pass outcomes — reports and errors alike — are absorbed: the scrubber
/// is maintenance, and a failed pass must never take the service down
/// with it (the next pass retries from scratch). The loop sleeps in short
/// slices so `stop` is responsive even at long intervals.
///
/// # Errors
/// `std::io::Error` when the OS refuses the thread.
pub fn spawn_scrubber(service: Arc<Service>, interval: Duration) -> std::io::Result<Scrubber> {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new().name("wmh-serve-scrub".into()).spawn(move || {
        const SLICE: Duration = Duration::from_millis(50);
        let mut slept = Duration::ZERO;
        loop {
            if flag.load(Ordering::Acquire) {
                return;
            }
            if slept >= interval {
                slept = Duration::ZERO;
                let _ = service.scrub();
            }
            std::thread::sleep(SLICE.min(interval));
            slept += SLICE.min(interval);
        }
    })?;
    Ok(Scrubber { stop, handle: Some(handle) })
}
