//! A minimal blocking client for the framed JSON protocol — what the
//! smoke test, the load generator's TCP mode, and operators' scripts use.

use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{HealthResponse, QueryRequest, QueryResponse, Request, Response};
use crate::wire::{self, WireError};

/// Errors a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed.
    Connect(String),
    /// Framing failed mid-call.
    Wire(WireError),
    /// The server's reply did not decode, or it answered the wrong op.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Connect(e) => write!(f, "connect failed: {e}"),
            Self::Wire(e) => write!(f, "wire failure: {e}"),
            Self::Protocol(e) => write!(f, "protocol failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection to a `wmh-serve` front end.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server address.
    ///
    /// # Errors
    /// [`ClientError::Connect`] when the TCP connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Connect(e.to_string()))?;
        Ok(Self { stream })
    }

    /// Issue a similarity query.
    ///
    /// # Errors
    /// [`ClientError`] on transport or decode failure. A degraded *service*
    /// answer is not an error — it arrives as the response's typed outcome.
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        match self.round_trip(&Request::Query(request.clone()))? {
            Response::Query(response) => Ok(response),
            Response::Health(_) => Err(ClientError::Protocol("health reply to a query".into())),
        }
    }

    /// Issue a health probe.
    ///
    /// # Errors
    /// [`ClientError`] on transport or decode failure.
    pub fn health(&mut self) -> Result<HealthResponse, ClientError> {
        match self.round_trip(&Request::Health)? {
            Response::Health(response) => Ok(response),
            Response::Query(_) => {
                Err(ClientError::Protocol("query reply to a health probe".into()))
            }
        }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, &wmh_json::to_string(request))
            .map_err(ClientError::Wire)?;
        let body = wire::read_frame(&mut self.stream)
            .map_err(ClientError::Wire)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        wmh_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }
}
