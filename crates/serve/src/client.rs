//! A minimal blocking client for the framed JSON protocol — what the
//! smoke test, the load generator's TCP mode, and operators' scripts use.

use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    HealthResponse, MutationKind, MutationRequest, MutationResponse, QueryRequest, QueryResponse,
    Request, Response,
};
use crate::wire::{self, WireError};

/// Errors a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed.
    Connect(String),
    /// Framing failed mid-call.
    Wire(WireError),
    /// The server's reply did not decode, or it answered the wrong op.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Connect(e) => write!(f, "connect failed: {e}"),
            Self::Wire(e) => write!(f, "wire failure: {e}"),
            Self::Protocol(e) => write!(f, "protocol failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection to a `wmh-serve` front end.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server address.
    ///
    /// # Errors
    /// [`ClientError::Connect`] when the TCP connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Connect(e.to_string()))?;
        Ok(Self { stream })
    }

    /// Issue a similarity query.
    ///
    /// # Errors
    /// [`ClientError`] on transport or decode failure. A degraded *service*
    /// answer is not an error — it arrives as the response's typed outcome.
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        match self.round_trip(&Request::Query(request.clone()))? {
            Response::Query(response) => Ok(response),
            Response::Health(_) | Response::Mutation(_) => {
                Err(ClientError::Protocol("non-query reply to a query".into()))
            }
        }
    }

    /// Insert a new document under `id`.
    ///
    /// # Errors
    /// [`ClientError`] on transport or decode failure. Rejections
    /// (duplicate id, bad document, read-only service, …) are not errors —
    /// they arrive as the response's typed outcome.
    pub fn insert(
        &mut self,
        id: u64,
        doc: Vec<(u64, f64)>,
        deadline_us: Option<u64>,
    ) -> Result<MutationResponse, ClientError> {
        self.mutate(&MutationRequest { id, kind: MutationKind::Insert { doc }, deadline_us })
    }

    /// Delete the document under `id`.
    ///
    /// # Errors
    /// [`ClientError`] on transport or decode failure.
    pub fn delete(
        &mut self,
        id: u64,
        deadline_us: Option<u64>,
    ) -> Result<MutationResponse, ClientError> {
        self.mutate(&MutationRequest { id, kind: MutationKind::Delete, deadline_us })
    }

    /// Feed `items` into the streaming document under `id` (creating it if
    /// absent), decaying the existing histogram by `lambda` first.
    ///
    /// # Errors
    /// [`ClientError`] on transport or decode failure.
    pub fn stream(
        &mut self,
        id: u64,
        lambda: f64,
        items: Vec<(u64, f64)>,
        deadline_us: Option<u64>,
    ) -> Result<MutationResponse, ClientError> {
        self.mutate(&MutationRequest {
            id,
            kind: MutationKind::Stream { lambda, items },
            deadline_us,
        })
    }

    /// Issue an arbitrary mutation.
    ///
    /// # Errors
    /// [`ClientError`] on transport or decode failure.
    pub fn mutate(&mut self, request: &MutationRequest) -> Result<MutationResponse, ClientError> {
        match self.round_trip(&Request::Mutate(request.clone()))? {
            Response::Mutation(response) => Ok(response),
            Response::Query(_) | Response::Health(_) => {
                Err(ClientError::Protocol("non-mutation reply to a mutation".into()))
            }
        }
    }

    /// Issue a health probe.
    ///
    /// # Errors
    /// [`ClientError`] on transport or decode failure.
    pub fn health(&mut self) -> Result<HealthResponse, ClientError> {
        match self.round_trip(&Request::Health)? {
            Response::Health(response) => Ok(response),
            Response::Query(_) | Response::Mutation(_) => {
                Err(ClientError::Protocol("non-health reply to a health probe".into()))
            }
        }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, &wmh_json::to_string(request))
            .map_err(ClientError::Wire)?;
        let body = wire::read_frame(&mut self.stream)
            .map_err(ClientError::Wire)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        wmh_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }
}
