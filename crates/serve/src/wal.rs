//! The write-ahead log: crash-safety for the live mutation path.
//!
//! Every mutation is appended here — length-prefixed, CRC-32C-framed,
//! fsynced — *before* it is applied to any shard index. The durable append
//! is the commit point: a mutation acknowledged `ok` has hit the log, so a
//! SIGKILL at any later point replays to the exact same service state. A
//! mutation that never reached the log was never acknowledged, so losing
//! it is correct.
//!
//! ## On-disk format
//!
//! ```text
//! magic       8 bytes  b"WMHWAL1\0"
//! frame*      each: [len: u32 LE] [payload: len bytes] [crc32c(payload): u32 LE]
//! ```
//!
//! The first frame is always a *provenance* record binding the log to one
//! `(algorithm, seed, D)` — a WAL replayed against the wrong store would
//! silently poison every index, so the binding is checked on every open.
//! Subsequent frames are mutations, `kind`-tagged in their first byte:
//!
//! ```text
//! kind 0  provenance  [seed u64] [D u32] [name_len u32] [name bytes]
//! kind 1  insert      [id u64] [n u32] [codes: n × u64]
//! kind 2  delete      [id u64]
//! kind 3  stream      [id u64] [λ: f64 bits] [n u32] [n × (key u64, mass: f64 bits)]
//! ```
//!
//! All integers are little-endian; floats travel as raw IEEE-754 bits so a
//! replayed stream update is *bit*-identical to the original, not merely
//! close.
//!
//! ## Replay rules
//!
//! Replay walks frames from the front and stops at the first frame that is
//! truncated or fails its CRC — everything before it is trusted, everything
//! from it on is discarded and the file is rewound to the valid prefix
//! (the same prefix-salvage contract as `SketchStore::salvage`). A torn
//! tail is the expected signature of a kill mid-append: the torn frame was
//! never acknowledged, so dropping it loses nothing that was promised.
//!
//! ## Failpoints
//!
//! `serve::wal_append` fires before the frame bytes are written and
//! `serve::wal_fsync` before the data sync; a reported failure rewinds the
//! file to its pre-append length, so a *failed* append never leaves a torn
//! frame behind — torn frames come only from crashes, which replay
//! tolerates.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use wmh_hash::crc32c::crc32c;

/// File magic: identifies a wmh-serve WAL, version 1.
pub const WAL_MAGIC: [u8; 8] = *b"WMHWAL1\0";

/// Hard cap on a single frame payload (matches the wire frame cap).
pub const MAX_WAL_RECORD: u32 = 16 << 20;

/// Errors from the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// Filesystem failure (or an injected fault standing in for one).
    Io(String),
    /// The file exists but does not start with [`WAL_MAGIC`].
    BadMagic,
    /// The log's provenance frame names a different `(algorithm, seed, D)`
    /// than the store the service is opening over.
    ProvenanceMismatch {
        /// `(algorithm, seed, D)` the service expects.
        expected: (String, u64, usize),
        /// `(algorithm, seed, D)` recorded in the log.
        got: (String, u64, usize),
    },
    /// A frame that passed its CRC decoded to garbage — a foreign or
    /// damaged log that prefix-salvage must not paper over.
    Corrupt(String),
    /// A mutation too large to frame.
    TooLarge(usize),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal I/O failed: {e}"),
            Self::BadMagic => write!(f, "not a wmh-serve WAL (bad magic)"),
            Self::ProvenanceMismatch { expected, got } => write!(
                f,
                "wal provenance mismatch: store is ({}, seed {}, D {}), log is ({}, seed {}, D {})",
                expected.0, expected.1, expected.2, got.0, got.1, got.2
            ),
            Self::Corrupt(e) => write!(f, "wal frame corrupt: {e}"),
            Self::TooLarge(len) => write!(f, "wal record {len} bytes exceeds cap {MAX_WAL_RECORD}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// An injected fault is indistinguishable from a real I/O failure to
/// callers — same `Io` variant, message naming the failpoint.
fn injected(point: Result<(), wmh_fault::Fault>) -> Result<(), WalError> {
    point.map_err(|f| WalError::Io(f.to_string()))
}

/// The `(algorithm, seed, D)` binding a WAL to one store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalProvenance {
    /// Catalog name of the sketching algorithm.
    pub algorithm: String,
    /// Master seed.
    pub seed: u64,
    /// Fingerprint length `D`.
    pub num_hashes: usize,
}

/// One logged mutation — the logical write, replayable bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Index a new point: its sketch codes (already sketched at the front,
    /// so replay needs no document).
    Insert {
        /// The point's id.
        id: u64,
        /// Its `D` sketch codes.
        codes: Vec<u64>,
    },
    /// Forget a point.
    Delete {
        /// The point's id.
        id: u64,
    },
    /// One streaming step for a drifting document: decay its accumulated
    /// histogram by `lambda`, then feed `items`. Replay re-runs the exact
    /// HistoSketch op sequence, so the rebuilt histogram is bit-identical.
    Stream {
        /// The point's id.
        id: u64,
        /// Gradual-forgetting factor in `(0, 1]`.
        lambda: f64,
        /// `(element, mass)` stream items.
        items: Vec<(u64, f64)>,
    },
}

impl Mutation {
    /// The id the mutation addresses.
    #[must_use]
    pub fn id(&self) -> u64 {
        match *self {
            Self::Insert { id, .. } | Self::Delete { id } | Self::Stream { id, .. } => id,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Insert { id, codes } => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(codes.len() as u32).to_le_bytes());
                for c in codes {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            Self::Delete { id } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Self::Stream { id, lambda, items } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&lambda.to_bits().to_le_bytes());
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for (k, mass) in items {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&mass.to_bits().to_le_bytes());
                }
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, WalError> {
        let mut r = Reader::new(payload);
        let mutation = match r.u8()? {
            1 => {
                let id = r.u64()?;
                let n = r.u32()? as usize;
                let mut codes = Vec::with_capacity(n.min(MAX_WAL_RECORD as usize / 8));
                for _ in 0..n {
                    codes.push(r.u64()?);
                }
                Self::Insert { id, codes }
            }
            2 => Self::Delete { id: r.u64()? },
            3 => {
                let id = r.u64()?;
                let lambda = f64::from_bits(r.u64()?);
                let n = r.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(MAX_WAL_RECORD as usize / 16));
                for _ in 0..n {
                    let k = r.u64()?;
                    let mass = f64::from_bits(r.u64()?);
                    items.push((k, mass));
                }
                Self::Stream { id, lambda, items }
            }
            kind => return Err(WalError::Corrupt(format!("unknown mutation kind {kind}"))),
        };
        r.finish()?;
        Ok(mutation)
    }
}

/// What replay found in an existing log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Mutations replayed (the provenance frame is not counted).
    pub records: usize,
    /// Torn-tail bytes discarded (0 for a cleanly closed log).
    pub bytes_discarded: usize,
}

/// An open write-ahead log (see the module docs for format and rules).
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Length of the valid prefix — where the next frame goes, and where a
    /// failed append rewinds to.
    len: u64,
}

impl Wal {
    /// Open (or create) the log at `path`, bound to `provenance`.
    ///
    /// An existing log is verified (magic + provenance), its mutations
    /// replayed into the returned `Vec`, and any torn tail rewound; a
    /// fresh log gets its magic + provenance frame written and fsynced.
    ///
    /// # Errors
    /// [`WalError::BadMagic`] / [`WalError::ProvenanceMismatch`] /
    /// [`WalError::Corrupt`] for a foreign or damaged log,
    /// [`WalError::Io`] on filesystem failure.
    pub fn open(
        path: &Path,
        provenance: &WalProvenance,
    ) -> Result<(Self, Vec<Mutation>, ReplayReport), WalError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        if bytes.is_empty() {
            return Ok((
                Self::create(path, provenance)?,
                Vec::new(),
                ReplayReport { records: 0, bytes_discarded: 0 },
            ));
        }
        if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }

        let mut at = WAL_MAGIC.len();
        // The provenance frame is load-bearing: a log whose first frame is
        // torn is indistinguishable from a foreign file, so it is an error,
        // not a salvage.
        let head = next_frame(&bytes, at)
            .ok_or_else(|| WalError::Corrupt("provenance frame missing or torn".into()))?;
        let got = decode_provenance(head.payload)?;
        let expected = WalProvenance {
            algorithm: provenance.algorithm.clone(),
            seed: provenance.seed,
            num_hashes: provenance.num_hashes,
        };
        if got != expected {
            return Err(WalError::ProvenanceMismatch {
                expected: (expected.algorithm, expected.seed, expected.num_hashes),
                got: (got.algorithm, got.seed, got.num_hashes),
            });
        }
        at = head.end;

        let mut mutations = Vec::new();
        while let Some(frame) = next_frame(&bytes, at) {
            // A CRC-valid frame that decodes to garbage is corruption, not
            // a torn tail — prefix salvage must not swallow it.
            mutations.push(Mutation::decode(frame.payload)?);
            at = frame.end;
        }
        let report = ReplayReport { records: mutations.len(), bytes_discarded: bytes.len() - at };

        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        // Rewind the torn tail so the next append starts at the valid
        // prefix instead of interleaving with garbage.
        file.set_len(at as u64)?;
        file.seek(SeekFrom::Start(at as u64))?;
        if report.bytes_discarded > 0 {
            file.sync_data()?;
        }
        Ok((Self { file, len: at as u64 }, mutations, report))
    }

    /// Create a fresh log: magic + provenance frame, durably.
    fn create(path: &Path, provenance: &WalProvenance) -> Result<Self, WalError> {
        let mut file =
            OpenOptions::new().create(true).truncate(true).read(true).write(true).open(path)?;
        let mut head = Vec::new();
        head.push(0u8);
        head.extend_from_slice(&provenance.seed.to_le_bytes());
        head.extend_from_slice(&(provenance.num_hashes as u32).to_le_bytes());
        head.extend_from_slice(&(provenance.algorithm.len() as u32).to_le_bytes());
        head.extend_from_slice(provenance.algorithm.as_bytes());
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&frame(&head)?);
        file.write_all(&bytes)?;
        file.sync_data()?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(Self { file, len: bytes.len() as u64 })
    }

    /// Durably append one mutation. On *any* failure — injected
    /// (`serve::wal_append`, `serve::wal_fsync`) or real — the file is
    /// rewound to its pre-append length, so a reported failure never
    /// leaves a torn frame.
    ///
    /// # Errors
    /// [`WalError::TooLarge`] for an oversized record, [`WalError::Io`]
    /// on write/sync failure.
    pub fn append(&mut self, mutation: &Mutation) -> Result<(), WalError> {
        let bytes = frame(&mutation.encode())?;
        let result = (|| -> Result<(), WalError> {
            injected(wmh_fault::point!("serve::wal_append"))?;
            self.file.write_all(&bytes)?;
            injected(wmh_fault::point!("serve::wal_fsync"))?;
            self.file.sync_data()?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.len += bytes.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Best-effort rewind; if even that fails the open-time
                // prefix salvage still recovers, because the torn frame
                // cannot pass its CRC.
                let _ = self.file.set_len(self.len);
                let _ = self.file.seek(SeekFrom::Start(self.len));
                Err(e)
            }
        }
    }

    /// Bytes in the valid prefix (magic + provenance + committed frames).
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

/// Frame a payload: `[len][payload][crc32c(payload)]`.
fn frame(payload: &[u8]) -> Result<Vec<u8>, WalError> {
    let len = u32::try_from(payload.len()).map_err(|_| WalError::TooLarge(payload.len()))?;
    if len > MAX_WAL_RECORD {
        return Err(WalError::TooLarge(payload.len()));
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    Ok(out)
}

struct Frame<'a> {
    payload: &'a [u8],
    end: usize,
}

/// The next whole, CRC-valid frame at `at`, or `None` for a torn tail.
fn next_frame(bytes: &[u8], at: usize) -> Option<Frame<'_>> {
    let len_end = at.checked_add(4)?;
    if len_end > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    if len > MAX_WAL_RECORD {
        return None;
    }
    let payload_end = len_end.checked_add(len as usize)?;
    let end = payload_end.checked_add(4)?;
    if end > bytes.len() {
        return None;
    }
    let payload = &bytes[len_end..payload_end];
    let stored = u32::from_le_bytes([
        bytes[payload_end],
        bytes[payload_end + 1],
        bytes[payload_end + 2],
        bytes[payload_end + 3],
    ]);
    if crc32c(payload) != stored {
        return None;
    }
    Some(Frame { payload, end })
}

fn decode_provenance(payload: &[u8]) -> Result<WalProvenance, WalError> {
    let mut r = Reader::new(payload);
    if r.u8()? != 0 {
        return Err(WalError::Corrupt("first frame is not a provenance record".into()));
    }
    let seed = r.u64()?;
    let num_hashes = r.u32()? as usize;
    let name_len = r.u32()? as usize;
    let name = r.bytes(name_len)?;
    let algorithm = std::str::from_utf8(name)
        .map_err(|e| WalError::Corrupt(format!("algorithm name not UTF-8: {e}")))?
        .to_owned();
    r.finish()?;
    Ok(WalProvenance { algorithm, seed, num_hashes })
}

/// A bounds-checked little-endian cursor; every short read is typed.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| WalError::Corrupt("record shorter than its fields".into()))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn finish(self) -> Result<(), WalError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WalError::Corrupt(format!(
                "{} trailing bytes after the last field",
                self.bytes.len() - self.at
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provenance() -> WalProvenance {
        WalProvenance { algorithm: "ICWS".into(), seed: 9, num_hashes: 128 }
    }

    fn dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("wmh-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn sample() -> Vec<Mutation> {
        vec![
            Mutation::Insert { id: 7, codes: vec![1, 2, 3] },
            Mutation::Stream { id: 9, lambda: 0.875, items: vec![(4, 1.5), (11, 0.062_5)] },
            Mutation::Delete { id: 7 },
        ]
    }

    #[test]
    fn append_replay_round_trips() {
        let d = dir("roundtrip");
        let path = d.join("serve.wal");
        let (mut wal, replayed, report) = Wal::open(&path, &provenance()).expect("create");
        assert!(replayed.is_empty());
        assert_eq!(report, ReplayReport { records: 0, bytes_discarded: 0 });
        for m in sample() {
            wal.append(&m).expect("append");
        }
        drop(wal);
        let (_, replayed, report) = Wal::open(&path, &provenance()).expect("reopen");
        assert_eq!(replayed, sample());
        assert_eq!(report, ReplayReport { records: 3, bytes_discarded: 0 });
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_rewound_and_appends_continue() {
        let d = dir("torn");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance()).expect("create");
        for m in sample() {
            wal.append(&m).expect("append");
        }
        let valid = wal.len_bytes();
        drop(wal);
        // A kill mid-append: half a frame lands.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&40u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&path, &bytes).expect("tear");

        let (mut wal, replayed, report) = Wal::open(&path, &provenance()).expect("salvage");
        assert_eq!(replayed, sample(), "valid prefix survives");
        assert_eq!(report.bytes_discarded, 7, "torn tail measured");
        assert_eq!(wal.len_bytes(), valid, "file rewound to the valid prefix");
        wal.append(&Mutation::Delete { id: 9 }).expect("append after salvage");
        drop(wal);
        let (_, replayed, report) = Wal::open(&path, &provenance()).expect("reopen");
        assert_eq!(replayed.len(), 4);
        assert_eq!(report.bytes_discarded, 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_middle_is_an_error_not_a_salvage() {
        let d = dir("corrupt");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance()).expect("create");
        for m in sample() {
            wal.append(&m).expect("append");
        }
        drop(wal);
        // Flip one payload byte in the middle: the CRC fails, which reads
        // as a torn tail — everything after it is discarded.
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");
        let (_, replayed, report) = Wal::open(&path, &provenance()).expect("salvage");
        assert!(replayed.len() < 3, "corrupted frame and successors dropped");
        assert!(report.bytes_discarded > 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn provenance_mismatch_is_typed() {
        let d = dir("prov");
        let path = d.join("serve.wal");
        let (_, _, _) = Wal::open(&path, &provenance()).expect("create");
        let other = WalProvenance { algorithm: "ICWS".into(), seed: 10, num_hashes: 128 };
        match Wal::open(&path, &other) {
            Err(WalError::ProvenanceMismatch { expected, got }) => {
                assert_eq!(expected.1, 10);
                assert_eq!(got.1, 9);
            }
            other => panic!("expected provenance mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        let d = dir("magic");
        let path = d.join("serve.wal");
        std::fs::write(&path, b"definitely not a wal").expect("write");
        assert_eq!(Wal::open(&path, &provenance()).unwrap_err(), WalError::BadMagic);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn float_payloads_survive_bit_exactly() {
        let d = dir("bits");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance()).expect("create");
        let m = Mutation::Stream {
            id: 1,
            lambda: 0.1 + 0.2, // deliberately non-representable
            items: vec![(2, 1.0 / 3.0), (3, f64::MIN_POSITIVE)],
        };
        wal.append(&m).expect("append");
        drop(wal);
        let (_, replayed, _) = Wal::open(&path, &provenance()).expect("reopen");
        let Mutation::Stream { lambda, items, .. } = &replayed[0] else { panic!("kind") };
        assert_eq!(lambda.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(items[0].1.to_bits(), (1.0f64 / 3.0).to_bits());
        let _ = std::fs::remove_dir_all(&d);
    }
}
