//! The write-ahead log: crash-safety for the live mutation path.
//!
//! Every mutation is appended here — length-prefixed, CRC-32C-framed,
//! fsynced — *before* it is applied to any shard index. The durable append
//! is the commit point: a mutation acknowledged `ok` has hit the log, so a
//! SIGKILL at any later point replays to the exact same service state. A
//! mutation that never reached the log was never acknowledged, so losing
//! it is correct.
//!
//! ## On-disk layout
//!
//! A WAL is a *directory* of generation-stamped segment files (a legacy
//! single-file WAL from before segmentation is migrated in place, crash-
//! safely, on first open):
//!
//! ```text
//! <dir>/wal-<generation:016x>.seg      one segment per generation
//! <dir>/snap-<generation:016x>.snap    snapshots (see `crate::snapshot`)
//! ```
//!
//! Each segment:
//!
//! ```text
//! magic       8 bytes  b"WMHWAL1\0"
//! frame*      each: [len: u32 LE] [payload: len bytes] [crc32c(payload): u32 LE]
//! ```
//!
//! The first frame is always a *provenance* record binding the log to one
//! `(algorithm, seed, D)` — a WAL replayed against the wrong store would
//! silently poison every index, so the binding is checked on every open.
//! The second frame of a post-segmentation segment stamps its generation
//! (cross-checked against the filename; absent only in migrated legacy
//! segments, which are generation 0 by construction). Subsequent frames
//! are mutations, `kind`-tagged in their first byte:
//!
//! ```text
//! kind 0  provenance  [seed u64] [D u32] [name_len u32] [name bytes]
//! kind 1  insert      [id u64] [n u32] [codes: n × u64]
//! kind 2  delete      [id u64]
//! kind 3  stream      [id u64] [λ: f64 bits] [n u32] [n × (key u64, mass: f64 bits)]
//! kind 4  generation  [generation u64]
//! ```
//!
//! All integers are little-endian; floats travel as raw IEEE-754 bits so a
//! replayed stream update is *bit*-identical to the original, not merely
//! close.
//!
//! ## Segmentation, rotation, retirement
//!
//! Appends go to the highest-generation segment (the *active* one).
//! [`Wal::rotate`] seals it and durably starts generation `g+1`; a
//! snapshot at generation `g` makes every segment *older* than the
//! previous retained snapshot redundant, and [`Wal::retire_below`] deletes
//! them — recovery cost is bounded by writes since the last snapshot, not
//! by total history. [`Wal::open`] takes the replay floor `from_gen` (the
//! recovering snapshot's generation) and *reads only* segments at or above
//! it; older, retirement-pending segments are merely counted.
//!
//! ## Replay rules
//!
//! Replay walks each live segment's frames from the front. In the **last**
//! segment, the first truncated or CRC-failing frame ends the log:
//! everything before it is trusted, everything from it on is discarded and
//! the file rewound to the valid prefix (the same prefix-salvage contract
//! as `SketchStore::salvage`) — a torn tail is the expected signature of a
//! kill mid-append, and the torn frame was never acknowledged. A **sealed**
//! segment was fully fsynced before rotation, so a bad frame there is
//! [`WalError::Corrupt`] (silent bitrot), never a salvage. A last segment
//! whose *header* never landed is a rotation the crash interrupted — it
//! cannot hold acknowledged records and is deleted, resuming the previous
//! segment as active.
//!
//! ## Failpoints
//!
//! `serve::wal_append` fires before the frame bytes are written and
//! `serve::wal_fsync` before the data sync; a reported failure rewinds the
//! file to its pre-append length, so a *failed* append never leaves a torn
//! frame behind — torn frames come only from crashes, which replay
//! tolerates. `serve::wal_rotate` fires before a rotation creates the new
//! segment (a failed rotation leaves the old segment active), and
//! `serve::wal_replay` fires once per segment actually read at open — a
//! never-firing probe on it turns replay work into an observable counter,
//! which is how the compaction bound is pinned in tests.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use wmh_hash::crc32c::crc32c;

/// File magic: identifies a wmh-serve WAL segment, version 1.
pub const WAL_MAGIC: [u8; 8] = *b"WMHWAL1\0";

/// Hard cap on a single frame payload (matches the wire frame cap).
pub const MAX_WAL_RECORD: u32 = 16 << 20;

/// Errors from the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// Filesystem failure (or an injected fault standing in for one).
    Io(String),
    /// The file exists but does not start with [`WAL_MAGIC`].
    BadMagic,
    /// The log's provenance frame names a different `(algorithm, seed, D)`
    /// than the store the service is opening over.
    ProvenanceMismatch {
        /// `(algorithm, seed, D)` the service expects.
        expected: (String, u64, usize),
        /// `(algorithm, seed, D)` recorded in the log.
        got: (String, u64, usize),
    },
    /// A frame that passed its CRC decoded to garbage, a sealed segment
    /// with a bad frame, or a segment chain with a hole — damage that
    /// prefix-salvage must not paper over.
    Corrupt(String),
    /// A mutation too large to frame.
    TooLarge(usize),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal I/O failed: {e}"),
            Self::BadMagic => write!(f, "not a wmh-serve WAL (bad magic)"),
            Self::ProvenanceMismatch { expected, got } => write!(
                f,
                "wal provenance mismatch: store is ({}, seed {}, D {}), log is ({}, seed {}, D {})",
                expected.0, expected.1, expected.2, got.0, got.1, got.2
            ),
            Self::Corrupt(e) => write!(f, "wal frame corrupt: {e}"),
            Self::TooLarge(len) => write!(f, "wal record {len} bytes exceeds cap {MAX_WAL_RECORD}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// An injected fault is indistinguishable from a real I/O failure to
/// callers — same `Io` variant, message naming the failpoint.
pub(crate) fn injected(point: Result<(), wmh_fault::Fault>) -> Result<(), WalError> {
    point.map_err(|f| WalError::Io(f.to_string()))
}

/// The `(algorithm, seed, D)` binding a WAL to one store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalProvenance {
    /// Catalog name of the sketching algorithm.
    pub algorithm: String,
    /// Master seed.
    pub seed: u64,
    /// Fingerprint length `D`.
    pub num_hashes: usize,
}

/// One logged mutation — the logical write, replayable bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Index a new point: its sketch codes (already sketched at the front,
    /// so replay needs no document).
    Insert {
        /// The point's id.
        id: u64,
        /// Its `D` sketch codes.
        codes: Vec<u64>,
    },
    /// Forget a point.
    Delete {
        /// The point's id.
        id: u64,
    },
    /// One streaming step for a drifting document: decay its accumulated
    /// histogram by `lambda`, then feed `items`. Replay re-runs the exact
    /// HistoSketch op sequence, so the rebuilt histogram is bit-identical.
    Stream {
        /// The point's id.
        id: u64,
        /// Gradual-forgetting factor in `(0, 1]`.
        lambda: f64,
        /// `(element, mass)` stream items.
        items: Vec<(u64, f64)>,
    },
}

impl Mutation {
    /// The id the mutation addresses.
    #[must_use]
    pub fn id(&self) -> u64 {
        match *self {
            Self::Insert { id, .. } | Self::Delete { id } | Self::Stream { id, .. } => id,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Insert { id, codes } => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(codes.len() as u32).to_le_bytes());
                for c in codes {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            Self::Delete { id } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Self::Stream { id, lambda, items } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&lambda.to_bits().to_le_bytes());
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for (k, mass) in items {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&mass.to_bits().to_le_bytes());
                }
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, WalError> {
        let mut r = Reader::new(payload);
        let mutation = match r.u8()? {
            1 => {
                let id = r.u64()?;
                let n = r.u32()? as usize;
                let mut codes = Vec::with_capacity(n.min(MAX_WAL_RECORD as usize / 8));
                for _ in 0..n {
                    codes.push(r.u64()?);
                }
                Self::Insert { id, codes }
            }
            2 => Self::Delete { id: r.u64()? },
            3 => {
                let id = r.u64()?;
                let lambda = f64::from_bits(r.u64()?);
                let n = r.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(MAX_WAL_RECORD as usize / 16));
                for _ in 0..n {
                    let k = r.u64()?;
                    let mass = f64::from_bits(r.u64()?);
                    items.push((k, mass));
                }
                Self::Stream { id, lambda, items }
            }
            kind => return Err(WalError::Corrupt(format!("unknown mutation kind {kind}"))),
        };
        r.finish()?;
        Ok(mutation)
    }
}

/// What replay found in an existing log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Mutations replayed (provenance/generation frames are not counted).
    pub records: usize,
    /// Torn-tail bytes discarded (0 for a cleanly closed log).
    pub bytes_discarded: usize,
    /// Segments actually read and replayed (at or above the replay floor).
    pub segments_replayed: usize,
    /// Segments present in the directory, replayed or retirement-pending.
    pub segments_total: usize,
}

/// Per-segment bookkeeping of an open [`Wal`].
///
/// `records`/`bytes` count what this process has seen: replayed segments
/// report their full contents, retirement-pending segments below the
/// replay floor report 0 records (they were deliberately not read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The segment's generation (from its filename, cross-checked against
    /// its stamped generation frame).
    pub generation: u64,
    /// Mutation records known in it.
    pub records: usize,
    /// Bytes in its valid prefix.
    pub bytes: u64,
}

/// An open, segmented write-ahead log (see the module docs).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    provenance: WalProvenance,
    active: File,
    active_gen: u64,
    /// Valid-prefix length of the active segment — where the next frame
    /// goes, and where a failed append rewinds to.
    active_len: u64,
    /// All non-quarantined segments, ascending by generation; the last is
    /// the active one.
    segments: Vec<SegmentInfo>,
}

/// How a segment header failed to parse.
enum HeaderIssue {
    /// The header is a truncated prefix — a crash mid-create.
    Torn,
    /// The header is present but wrong (foreign magic, provenance
    /// mismatch, generation mismatch).
    Fatal(WalError),
}

impl Wal {
    /// Open (or create) the segmented log in the directory at `path`,
    /// bound to `provenance`, replaying segments at or above `from_gen`
    /// (the generation of the snapshot recovery starts from; 0 replays
    /// everything present).
    ///
    /// A legacy single-file WAL at `path` is migrated into a directory
    /// first (crash-safely: the staging directory is re-adopted if a
    /// previous migration was interrupted). Existing segments are verified
    /// (magic + provenance + stamped generation), live ones replayed into
    /// the returned `Vec` in log order, and any torn tail of the last
    /// segment rewound; a fresh directory gets a generation-0 segment
    /// written and fsynced.
    ///
    /// # Errors
    /// [`WalError::BadMagic`] / [`WalError::ProvenanceMismatch`] /
    /// [`WalError::Corrupt`] for a foreign or damaged log (including a
    /// sealed segment with a bad frame, and a directory whose oldest
    /// segment is *above* `from_gen` — history needed for replay was
    /// compacted away), [`WalError::Io`] on filesystem failure.
    pub fn open(
        path: &Path,
        provenance: &WalProvenance,
        from_gen: u64,
    ) -> Result<(Self, Vec<Mutation>, ReplayReport), WalError> {
        prepare_dir(path)?;
        let mut gens = scan_segments(path)?;
        if gens.is_empty() {
            let (file, len) = create_segment(path, provenance, 0)?;
            let segments = vec![SegmentInfo { generation: 0, records: 0, bytes: len }];
            let wal = Self {
                dir: path.to_owned(),
                provenance: provenance.clone(),
                active: file,
                active_gen: 0,
                active_len: len,
                segments,
            };
            return Ok((wal, Vec::new(), ReplayReport::default()));
        }

        // A last segment whose header never fully landed is a rotation the
        // crash interrupted: it cannot hold acknowledged records. Drop it
        // and resume the previous segment as active.
        while gens.len() > 1 {
            let Some(&gen) = gens.last() else { break };
            let segpath = path.join(segment_file_name(gen));
            let bytes = std::fs::read(&segpath)?;
            match parse_segment_header(&bytes, provenance, gen) {
                Err(HeaderIssue::Torn) => {
                    std::fs::remove_file(&segpath)?;
                    sync_dir(path)?;
                    gens.pop();
                }
                _ => break,
            }
        }

        if gens[0] > from_gen {
            return Err(WalError::Corrupt(format!(
                "replay must start at generation {from_gen} but the oldest segment is \
                 generation {} — history was compacted past the recovery point",
                gens[0]
            )));
        }

        let mut mutations = Vec::new();
        let mut segments = Vec::with_capacity(gens.len());
        let mut report = ReplayReport { segments_total: gens.len(), ..ReplayReport::default() };
        let mut active_valid = 0u64;
        for (idx, &gen) in gens.iter().enumerate() {
            let last = idx == gens.len() - 1;
            let segpath = path.join(segment_file_name(gen));
            if gen < from_gen {
                // Retirement-pending: deliberately not read, so recovery
                // cost stays bounded by writes since the last snapshot.
                let bytes = std::fs::metadata(&segpath)?.len();
                segments.push(SegmentInfo { generation: gen, records: 0, bytes });
                continue;
            }
            let tag = gen.to_string();
            injected(wmh_fault::point!("serve::wal_replay", &tag))?;
            let bytes = std::fs::read(&segpath)?;
            let mut at = match parse_segment_header(&bytes, provenance, gen) {
                Ok(at) => at,
                Err(HeaderIssue::Fatal(e)) => return Err(e),
                // Only the last segment can be header-torn (handled above)
                // — and only when it is the *sole* segment, which keeps the
                // pre-segmentation contract: a log whose first frame is
                // torn is indistinguishable from a foreign file.
                Err(HeaderIssue::Torn) => {
                    if bytes.len() >= WAL_MAGIC.len() && bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                        return Err(WalError::BadMagic);
                    }
                    return Err(WalError::Corrupt("provenance frame missing or torn".into()));
                }
            };
            let mut seg_records = 0usize;
            while let Some(frame) = next_frame(&bytes, at) {
                // A CRC-valid frame that decodes to garbage is corruption,
                // not a torn tail — prefix salvage must not swallow it.
                mutations.push(Mutation::decode(frame.payload)?);
                seg_records += 1;
                at = frame.end;
            }
            let torn = bytes.len() - at;
            if torn > 0 && !last {
                return Err(WalError::Corrupt(format!(
                    "sealed segment generation {gen} has {torn} bad trailing bytes — it was \
                     fsynced whole before rotation, so this is damage, not a crash"
                )));
            }
            report.records += seg_records;
            report.bytes_discarded += torn;
            report.segments_replayed += 1;
            segments.push(SegmentInfo { generation: gen, records: seg_records, bytes: at as u64 });
            if last {
                active_valid = at as u64;
            }
        }

        let active_gen = *gens
            .last()
            .ok_or_else(|| WalError::Corrupt("WAL directory lists no segments".into()))?;
        let mut active = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.join(segment_file_name(active_gen)))?;
        // Rewind the torn tail so the next append starts at the valid
        // prefix instead of interleaving with garbage.
        active.set_len(active_valid)?;
        active.seek(SeekFrom::Start(active_valid))?;
        if report.bytes_discarded > 0 {
            active.sync_data()?;
        }
        let wal = Self {
            dir: path.to_owned(),
            provenance: provenance.clone(),
            active,
            active_gen,
            active_len: active_valid,
            segments,
        };
        Ok((wal, mutations, report))
    }

    /// Durably append one mutation to the active segment. On *any*
    /// failure — injected (`serve::wal_append`, `serve::wal_fsync`) or
    /// real — the file is rewound to its pre-append length, so a reported
    /// failure never leaves a torn frame.
    ///
    /// # Errors
    /// [`WalError::TooLarge`] for an oversized record, [`WalError::Io`]
    /// on write/sync failure.
    pub fn append(&mut self, mutation: &Mutation) -> Result<(), WalError> {
        let bytes = frame(&mutation.encode())?;
        let result = (|| -> Result<(), WalError> {
            injected(wmh_fault::point!("serve::wal_append"))?;
            self.active.write_all(&bytes)?;
            injected(wmh_fault::point!("serve::wal_fsync"))?;
            self.active.sync_data()?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.active_len += bytes.len() as u64;
                if let Some(seg) = self.segments.last_mut() {
                    seg.records += 1;
                    seg.bytes = self.active_len;
                }
                Ok(())
            }
            Err(e) => {
                // Best-effort rewind; if even that fails the open-time
                // prefix salvage still recovers, because the torn frame
                // cannot pass its CRC.
                let _ = self.active.set_len(self.active_len);
                let _ = self.active.seek(SeekFrom::Start(self.active_len));
                Err(e)
            }
        }
    }

    /// Seal the active segment and durably start the next generation.
    /// Appends after a successful rotation go to the new segment; on
    /// failure (including an injected `serve::wal_rotate` fault) the
    /// partial file is removed and the old segment stays active, so a
    /// failed rotation is invisible.
    ///
    /// # Errors
    /// [`WalError::Io`] on filesystem failure.
    pub fn rotate(&mut self) -> Result<u64, WalError> {
        let gen = self.active_gen + 1;
        let created = (|| -> Result<(File, u64), WalError> {
            injected(wmh_fault::point!("serve::wal_rotate"))?;
            create_segment(&self.dir, &self.provenance, gen)
        })();
        match created {
            Ok((file, len)) => {
                self.active = file;
                self.active_gen = gen;
                self.active_len = len;
                self.segments.push(SegmentInfo { generation: gen, records: 0, bytes: len });
                Ok(gen)
            }
            Err(e) => {
                let _ = std::fs::remove_file(self.dir.join(segment_file_name(gen)));
                Err(e)
            }
        }
    }

    /// Delete every sealed segment with generation below `gen` (the active
    /// segment is never retired). Returns how many were removed.
    ///
    /// # Errors
    /// [`WalError::Io`] on filesystem failure (already-removed segments
    /// stay removed; the survivors are still listed).
    pub fn retire_below(&mut self, gen: u64) -> Result<usize, WalError> {
        let mut removed = 0usize;
        let mut keep = Vec::with_capacity(self.segments.len());
        let mut failure = None;
        for seg in self.segments.drain(..) {
            if seg.generation < gen && seg.generation != self.active_gen && failure.is_none() {
                match std::fs::remove_file(self.dir.join(segment_file_name(seg.generation))) {
                    Ok(()) => removed += 1,
                    Err(e) => {
                        failure = Some(e.into());
                        keep.push(seg);
                    }
                }
            } else {
                keep.push(seg);
            }
        }
        self.segments = keep;
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(removed),
        }
    }

    /// Quarantine a sealed segment found damaged (by the scrubber): rename
    /// it to `<name>.bad` so opens no longer see it, keeping the bytes for
    /// forensics. Returns `false` when the generation is not listed
    /// (already retired or quarantined).
    ///
    /// # Errors
    /// [`WalError::Corrupt`] for the active generation (the write path
    /// owns it), [`WalError::Io`] on rename failure.
    pub fn quarantine_segment(&mut self, gen: u64) -> Result<bool, WalError> {
        if gen == self.active_gen {
            return Err(WalError::Corrupt("cannot quarantine the active segment".into()));
        }
        let Some(pos) = self.segments.iter().position(|s| s.generation == gen) else {
            return Ok(false);
        };
        let name = segment_file_name(gen);
        let mut bad = name.clone();
        bad.push_str(".bad");
        std::fs::rename(self.dir.join(&name), self.dir.join(&bad))?;
        sync_dir(&self.dir)?;
        self.segments.remove(pos);
        Ok(true)
    }

    /// The directory holding the segments.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Generation of the active (append-target) segment.
    #[must_use]
    pub fn active_generation(&self) -> u64 {
        self.active_gen
    }

    /// Generation of the oldest segment still on disk.
    #[must_use]
    pub fn oldest_generation(&self) -> u64 {
        self.segments.first().map_or(self.active_gen, |s| s.generation)
    }

    /// The live segments, ascending by generation (the last is active).
    #[must_use]
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.segments
    }

    /// Total bytes across all live segments' valid prefixes.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Total mutation records known across live segments (replayed plus
    /// appended; retirement-pending segments count 0 — see
    /// [`SegmentInfo`]).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.segments.iter().map(|s| s.records as u64).sum()
    }
}

/// One segment as seen by offline inspection ([`inspect`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReport {
    /// Generation from the filename.
    pub generation: u64,
    /// Whole mutation records found.
    pub records: usize,
    /// Bytes in the valid prefix.
    pub bytes: u64,
    /// Trailing bytes after the last valid frame (normal crash signature
    /// on the newest segment; damage anywhere else).
    pub torn_bytes: usize,
    /// Typed corruption, if the segment failed verification.
    pub error: Option<String>,
}

/// What [`inspect`] found in a WAL directory.
#[derive(Debug, Clone, PartialEq)]
pub struct WalInfo {
    /// Provenance recorded in the oldest readable segment.
    pub provenance: WalProvenance,
    /// Per-segment reports, ascending by generation.
    pub segments: Vec<SegmentReport>,
}

impl WalInfo {
    /// Whether any segment is damaged: a typed per-segment error, or torn
    /// bytes anywhere but the newest segment (a torn tail there is the
    /// expected kill-mid-append signature, not corruption).
    #[must_use]
    pub fn corrupt(&self) -> bool {
        let newest = self.segments.last().map(|s| s.generation);
        self.segments
            .iter()
            .any(|s| s.error.is_some() || (s.torn_bytes > 0 && Some(s.generation) != newest))
    }
}

/// Offline, read-only inspection of a WAL directory (or a legacy
/// single-file WAL, reported as one generation-0 segment): provenance,
/// per-segment record counts, torn-tail bytes, and typed corruption.
/// Nothing is migrated, rewound, or repaired. Provenance is taken from the
/// oldest readable segment; later segments are checked against it.
///
/// # Errors
/// [`WalError::Io`] when the path cannot be read, [`WalError::BadMagic`] /
/// [`WalError::Corrupt`] when no segment yields a readable provenance.
pub fn inspect(path: &Path) -> Result<WalInfo, WalError> {
    let sources: Vec<(u64, PathBuf)> = if path.is_file() {
        vec![(0, path.to_owned())]
    } else {
        scan_segments(path)?
            .into_iter()
            .map(|gen| (gen, path.join(segment_file_name(gen))))
            .collect()
    };
    if sources.is_empty() {
        return Err(WalError::Corrupt("no segments found".into()));
    }
    let mut provenance: Option<WalProvenance> = None;
    let mut segments = Vec::with_capacity(sources.len());
    for (gen, segpath) in &sources {
        let bytes = std::fs::read(segpath)?;
        let mut report =
            SegmentReport { generation: *gen, records: 0, bytes: 0, torn_bytes: 0, error: None };
        let parsed = (|| -> Result<(WalProvenance, usize), WalError> {
            if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                return Err(WalError::BadMagic);
            }
            let mut at = WAL_MAGIC.len();
            let head = next_frame(&bytes, at)
                .ok_or_else(|| WalError::Corrupt("provenance frame missing or torn".into()))?;
            let got = decode_provenance(head.payload)?;
            at = head.end;
            if let Some(f) = next_frame(&bytes, at) {
                if f.payload.first() == Some(&4) {
                    let stamped = decode_generation(f.payload)?;
                    if stamped != *gen {
                        return Err(WalError::Corrupt(format!(
                            "segment file says generation {gen} but its frame says {stamped}"
                        )));
                    }
                    at = f.end;
                }
            }
            Ok((got, at))
        })();
        match parsed {
            Err(e) => {
                report.error = Some(e.to_string());
                segments.push(report);
                continue;
            }
            Ok((got, mut at)) => {
                match &provenance {
                    None => provenance = Some(got),
                    Some(expected) if *expected != got => {
                        report.error = Some(
                            WalError::ProvenanceMismatch {
                                expected: (
                                    expected.algorithm.clone(),
                                    expected.seed,
                                    expected.num_hashes,
                                ),
                                got: (got.algorithm, got.seed, got.num_hashes),
                            }
                            .to_string(),
                        );
                        segments.push(report);
                        continue;
                    }
                    Some(_) => {}
                }
                while let Some(f) = next_frame(&bytes, at) {
                    match Mutation::decode(f.payload) {
                        Ok(_) => report.records += 1,
                        Err(e) => {
                            report.error = Some(e.to_string());
                            break;
                        }
                    }
                    at = f.end;
                }
                if report.error.is_none() {
                    report.torn_bytes = bytes.len() - at;
                }
                report.bytes = at as u64;
                segments.push(report);
            }
        }
    }
    let provenance = provenance
        .ok_or_else(|| WalError::Corrupt("no segment yields a readable provenance".into()))?;
    Ok(WalInfo { provenance, segments })
}

/// `wal-<generation:016x>.seg`.
fn segment_file_name(gen: u64) -> String {
    format!("wal-{gen:016x}.seg")
}

fn parse_segment_gen(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Segment generations present in `dir`, ascending.
fn scan_segments(dir: &Path) -> Result<Vec<u64>, WalError> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(gen) = entry.file_name().to_str().and_then(parse_segment_gen) {
            gens.push(gen);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Make `path` a usable WAL directory: adopt or finish a legacy-file
/// migration, create the directory, and sweep stale temp files.
fn prepare_dir(path: &Path) -> Result<(), WalError> {
    let staging = staging_path(path);
    if path.is_file() {
        migrate_legacy_file(path, &staging)?;
    } else if !path.exists() && staging.is_dir() {
        // A previous migration removed the original file but crashed
        // before the final rename; finish it.
        std::fs::rename(&staging, path)?;
        sync_parent(path);
    }
    std::fs::create_dir_all(path)?;
    for entry in std::fs::read_dir(path)? {
        let entry = entry?;
        if entry.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    Ok(())
}

fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".migrating");
    PathBuf::from(name)
}

/// Migrate a pre-segmentation single-file WAL at `path` into a directory
/// of the same name holding it as the generation-0 segment, byte-for-byte
/// (so its replay is identical; it simply has no generation frame).
/// Two-phase and idempotent: stage → remove original → rename staging into
/// place, with fsyncs, so a crash at any point either leaves the original
/// untouched or leaves a staging directory [`prepare_dir`] finishes.
fn migrate_legacy_file(path: &Path, staging: &Path) -> Result<(), WalError> {
    let bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        // An empty legacy file never held anything acknowledged.
        std::fs::remove_file(path)?;
        return Ok(());
    }
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let _ = std::fs::remove_dir_all(staging);
    std::fs::create_dir_all(staging)?;
    let seg = staging.join(segment_file_name(0));
    let mut f = File::create(&seg)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    sync_dir(staging)?;
    std::fs::remove_file(path)?;
    sync_parent(path);
    std::fs::rename(staging, path)?;
    sync_parent(path);
    Ok(())
}

/// Create segment `gen` durably: magic + provenance frame + generation
/// frame, fsynced, directory fsynced. Returns the open file positioned at
/// the end and the header length.
fn create_segment(
    dir: &Path,
    provenance: &WalProvenance,
    gen: u64,
) -> Result<(File, u64), WalError> {
    let path = dir.join(segment_file_name(gen));
    let mut file =
        OpenOptions::new().create(true).truncate(true).read(true).write(true).open(&path)?;
    let mut head = Vec::new();
    head.push(0u8);
    head.extend_from_slice(&provenance.seed.to_le_bytes());
    head.extend_from_slice(&(provenance.num_hashes as u32).to_le_bytes());
    head.extend_from_slice(&(provenance.algorithm.len() as u32).to_le_bytes());
    head.extend_from_slice(provenance.algorithm.as_bytes());
    let mut gen_frame = Vec::new();
    gen_frame.push(4u8);
    gen_frame.extend_from_slice(&gen.to_le_bytes());
    let mut bytes = WAL_MAGIC.to_vec();
    bytes.extend_from_slice(&frame(&head)?);
    bytes.extend_from_slice(&frame(&gen_frame)?);
    file.write_all(&bytes)?;
    file.sync_data()?;
    sync_dir(dir)?;
    Ok((file, bytes.len() as u64))
}

/// Parse a segment header (magic + provenance + optional generation
/// frame) and return the offset of the first mutation frame.
fn parse_segment_header(
    bytes: &[u8],
    provenance: &WalProvenance,
    gen: u64,
) -> Result<usize, HeaderIssue> {
    if bytes.len() < WAL_MAGIC.len() {
        return Err(HeaderIssue::Torn);
    }
    if bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(HeaderIssue::Fatal(WalError::BadMagic));
    }
    let mut at = WAL_MAGIC.len();
    let Some(head) = next_frame(bytes, at) else {
        return Err(HeaderIssue::Torn);
    };
    let got = decode_provenance(head.payload).map_err(HeaderIssue::Fatal)?;
    if got != *provenance {
        return Err(HeaderIssue::Fatal(WalError::ProvenanceMismatch {
            expected: (provenance.algorithm.clone(), provenance.seed, provenance.num_hashes),
            got: (got.algorithm, got.seed, got.num_hashes),
        }));
    }
    at = head.end;
    // The generation frame is optional (absent in migrated legacy
    // segments, which are generation 0); when present it must agree with
    // the filename. A torn generation frame reads as a torn tail after
    // the provenance — harmless, the filename still carries the
    // generation.
    if let Some(f) = next_frame(bytes, at) {
        if f.payload.first() == Some(&4) {
            let stamped = decode_generation(f.payload).map_err(HeaderIssue::Fatal)?;
            if stamped != gen {
                return Err(HeaderIssue::Fatal(WalError::Corrupt(format!(
                    "segment file says generation {gen} but its frame says {stamped}"
                ))));
            }
            at = f.end;
        }
    }
    Ok(at)
}

fn decode_generation(payload: &[u8]) -> Result<u64, WalError> {
    let mut r = Reader::new(payload);
    if r.u8()? != 4 {
        return Err(WalError::Corrupt("not a generation frame".into()));
    }
    let gen = r.u64()?;
    r.finish()?;
    Ok(gen)
}

/// Fsync a directory so renames/creates/removes inside it are durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), WalError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

fn sync_parent(path: &Path) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Frame a payload: `[len][payload][crc32c(payload)]`.
pub(crate) fn frame(payload: &[u8]) -> Result<Vec<u8>, WalError> {
    let len = u32::try_from(payload.len()).map_err(|_| WalError::TooLarge(payload.len()))?;
    if len > MAX_WAL_RECORD {
        return Err(WalError::TooLarge(payload.len()));
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    Ok(out)
}

pub(crate) struct Frame<'a> {
    pub(crate) payload: &'a [u8],
    pub(crate) end: usize,
}

/// The next whole, CRC-valid frame at `at`, or `None` for a torn tail.
pub(crate) fn next_frame(bytes: &[u8], at: usize) -> Option<Frame<'_>> {
    let len_end = at.checked_add(4)?;
    if len_end > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    if len > MAX_WAL_RECORD {
        return None;
    }
    let payload_end = len_end.checked_add(len as usize)?;
    let end = payload_end.checked_add(4)?;
    if end > bytes.len() {
        return None;
    }
    let payload = &bytes[len_end..payload_end];
    let stored = u32::from_le_bytes([
        bytes[payload_end],
        bytes[payload_end + 1],
        bytes[payload_end + 2],
        bytes[payload_end + 3],
    ]);
    if crc32c(payload) != stored {
        return None;
    }
    Some(Frame { payload, end })
}

pub(crate) fn decode_provenance(payload: &[u8]) -> Result<WalProvenance, WalError> {
    let mut r = Reader::new(payload);
    if r.u8()? != 0 {
        return Err(WalError::Corrupt("first frame is not a provenance record".into()));
    }
    let seed = r.u64()?;
    let num_hashes = r.u32()? as usize;
    let name_len = r.u32()? as usize;
    let name = r.bytes(name_len)?;
    let algorithm = std::str::from_utf8(name)
        .map_err(|e| WalError::Corrupt(format!("algorithm name not UTF-8: {e}")))?
        .to_owned();
    r.finish()?;
    Ok(WalProvenance { algorithm, seed, num_hashes })
}

/// Encode a provenance frame payload (shared with the snapshot format).
pub(crate) fn encode_provenance(provenance: &WalProvenance) -> Vec<u8> {
    let mut head = Vec::new();
    head.push(0u8);
    head.extend_from_slice(&provenance.seed.to_le_bytes());
    head.extend_from_slice(&(provenance.num_hashes as u32).to_le_bytes());
    head.extend_from_slice(&(provenance.algorithm.len() as u32).to_le_bytes());
    head.extend_from_slice(provenance.algorithm.as_bytes());
    head
}

/// A bounds-checked little-endian cursor; every short read is typed.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| WalError::Corrupt("record shorter than its fields".into()))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WalError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WalError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub(crate) fn finish(self) -> Result<(), WalError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WalError::Corrupt(format!(
                "{} trailing bytes after the last field",
                self.bytes.len() - self.at
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provenance() -> WalProvenance {
        WalProvenance { algorithm: "ICWS".into(), seed: 9, num_hashes: 128 }
    }

    fn dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("wmh-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn sample() -> Vec<Mutation> {
        vec![
            Mutation::Insert { id: 7, codes: vec![1, 2, 3] },
            Mutation::Stream { id: 9, lambda: 0.875, items: vec![(4, 1.5), (11, 0.062_5)] },
            Mutation::Delete { id: 7 },
        ]
    }

    /// The active segment's file, for tests that damage it directly.
    fn active_path(d: &Path, gen: u64) -> std::path::PathBuf {
        d.join(segment_file_name(gen))
    }

    #[test]
    fn append_replay_round_trips() {
        let d = dir("roundtrip");
        let path = d.join("serve.wal");
        let (mut wal, replayed, report) = Wal::open(&path, &provenance(), 0).expect("create");
        assert!(replayed.is_empty());
        assert_eq!(report, ReplayReport::default());
        for m in sample() {
            wal.append(&m).expect("append");
        }
        assert_eq!(wal.records(), 3);
        drop(wal);
        let (_, replayed, report) = Wal::open(&path, &provenance(), 0).expect("reopen");
        assert_eq!(replayed, sample());
        assert_eq!(
            report,
            ReplayReport {
                records: 3,
                bytes_discarded: 0,
                segments_replayed: 1,
                segments_total: 1
            }
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_rewound_and_appends_continue() {
        let d = dir("torn");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        for m in sample() {
            wal.append(&m).expect("append");
        }
        let valid = wal.len_bytes();
        let gen = wal.active_generation();
        drop(wal);
        // A kill mid-append: half a frame lands.
        let seg = active_path(&path, gen);
        let mut bytes = std::fs::read(&seg).expect("read");
        bytes.extend_from_slice(&40u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&seg, &bytes).expect("tear");

        let (mut wal, replayed, report) = Wal::open(&path, &provenance(), 0).expect("salvage");
        assert_eq!(replayed, sample(), "valid prefix survives");
        assert_eq!(report.bytes_discarded, 7, "torn tail measured");
        assert_eq!(wal.len_bytes(), valid, "file rewound to the valid prefix");
        wal.append(&Mutation::Delete { id: 9 }).expect("append after salvage");
        drop(wal);
        let (_, replayed, report) = Wal::open(&path, &provenance(), 0).expect("reopen");
        assert_eq!(replayed.len(), 4);
        assert_eq!(report.bytes_discarded, 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_middle_of_last_segment_reads_as_torn_tail() {
        let d = dir("corrupt");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        for m in sample() {
            wal.append(&m).expect("append");
        }
        let gen = wal.active_generation();
        drop(wal);
        // Flip one payload byte in the middle of the *active* segment: the
        // CRC fails, which reads as a torn tail — everything after it is
        // discarded.
        let seg = active_path(&path, gen);
        let mut bytes = std::fs::read(&seg).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("corrupt");
        let (_, replayed, report) = Wal::open(&path, &provenance(), 0).expect("salvage");
        assert!(replayed.len() < 3, "corrupted frame and successors dropped");
        assert!(report.bytes_discarded > 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_sealed_segment_is_a_typed_error_not_a_salvage() {
        let d = dir("sealed");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        for m in sample() {
            wal.append(&m).expect("append");
        }
        wal.rotate().expect("rotate");
        wal.append(&Mutation::Delete { id: 9 }).expect("append");
        drop(wal);
        // Damage the *sealed* generation-0 segment: it was fsynced whole
        // before rotation, so this is bitrot and must be typed, never
        // silently salvaged.
        let seg = active_path(&path, 0);
        let mut bytes = std::fs::read(&seg).expect("read");
        let at = bytes.len() - 10;
        bytes[at] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("corrupt");
        match Wal::open(&path, &provenance(), 0) {
            Err(WalError::Corrupt(e)) => assert!(e.contains("sealed"), "{e}"),
            other => panic!("expected sealed-segment corruption, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn rotation_seals_and_replay_crosses_segments_in_order() {
        let d = dir("rotate");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        wal.append(&sample()[0]).expect("append");
        assert_eq!(wal.rotate().expect("rotate"), 1);
        wal.append(&sample()[1]).expect("append");
        assert_eq!(wal.rotate().expect("rotate"), 2);
        wal.append(&sample()[2]).expect("append");
        assert_eq!(wal.segments().len(), 3);
        assert_eq!(wal.active_generation(), 2);
        drop(wal);
        let (wal, replayed, report) = Wal::open(&path, &provenance(), 0).expect("reopen");
        assert_eq!(replayed, sample(), "log order preserved across segments");
        assert_eq!(report.segments_replayed, 3);
        assert_eq!(report.segments_total, 3);
        assert_eq!(wal.oldest_generation(), 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn replay_floor_skips_retirement_pending_segments() {
        let d = dir("floor");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        wal.append(&sample()[0]).expect("append");
        wal.rotate().expect("rotate");
        wal.append(&sample()[1]).expect("append");
        wal.append(&sample()[2]).expect("append");
        drop(wal);
        let (_, replayed, report) = Wal::open(&path, &provenance(), 1).expect("reopen");
        assert_eq!(replayed, sample()[1..], "only generation >= 1 replayed");
        assert_eq!(report.records, 2);
        assert_eq!(report.segments_replayed, 1);
        assert_eq!(report.segments_total, 2);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn replay_floor_above_oldest_missing_history_is_corrupt() {
        let d = dir("hole");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        wal.rotate().expect("rotate");
        wal.rotate().expect("rotate");
        wal.retire_below(2).expect("retire");
        drop(wal);
        // The directory's oldest segment is generation 2; replaying from 0
        // would silently lose generations 0-1.
        match Wal::open(&path, &provenance(), 0) {
            Err(WalError::Corrupt(e)) => assert!(e.contains("compacted"), "{e}"),
            other => panic!("expected compaction-hole error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn retire_below_deletes_only_sealed_old_segments() {
        let d = dir("retire");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        wal.append(&sample()[0]).expect("append");
        wal.rotate().expect("rotate");
        wal.append(&sample()[1]).expect("append");
        wal.rotate().expect("rotate");
        assert_eq!(wal.retire_below(2).expect("retire"), 2);
        assert_eq!(wal.segments().len(), 1);
        assert_eq!(wal.oldest_generation(), 2);
        assert!(!active_path(&path, 0).exists());
        assert!(!active_path(&path, 1).exists());
        // Retiring at-or-above the active generation removes nothing.
        assert_eq!(wal.retire_below(10).expect("retire"), 0);
        assert_eq!(wal.segments().len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn quarantine_renames_a_sealed_segment_out_of_the_scan() {
        let d = dir("quarantine");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        wal.append(&sample()[0]).expect("append");
        wal.rotate().expect("rotate");
        assert!(wal.quarantine_segment(0).expect("quarantine"));
        assert!(!active_path(&path, 0).exists());
        assert!(path.join("wal-0000000000000000.seg.bad").exists());
        assert!(!wal.quarantine_segment(0).expect("already gone"));
        assert!(wal.quarantine_segment(1).is_err(), "active segment is protected");
        drop(wal);
        // The quarantined file no longer participates in opens; replaying
        // from generation 1 succeeds.
        let (_, replayed, _) = Wal::open(&path, &provenance(), 1).expect("reopen");
        assert!(replayed.is_empty());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn interrupted_rotation_header_is_dropped_and_previous_resumes() {
        let d = dir("tornrotate");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        for m in sample() {
            wal.append(&m).expect("append");
        }
        drop(wal);
        // A kill mid-rotation: the new segment file exists but its header
        // never fully landed.
        std::fs::write(active_path(&path, 1), &WAL_MAGIC[..4]).expect("torn header");
        let (wal, replayed, report) = Wal::open(&path, &provenance(), 0).expect("recover");
        assert_eq!(replayed, sample(), "nothing acknowledged was lost");
        assert_eq!(wal.active_generation(), 0, "previous segment resumed as active");
        assert_eq!(report.segments_total, 1);
        assert!(!active_path(&path, 1).exists(), "torn rotation removed");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn legacy_single_file_wal_migrates_in_place() {
        let d = dir("legacy");
        let path = d.join("serve.wal");
        // Build a directory WAL, then flatten its generation-0 segment
        // back into a single file at `path` — byte-identical to what the
        // pre-segmentation code wrote (minus the generation frame, which
        // legacy files never had; replay tolerates its absence).
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        for m in sample() {
            wal.append(&m).expect("append");
        }
        let gen = wal.active_generation();
        drop(wal);
        let bytes = std::fs::read(active_path(&path, gen)).expect("read");
        std::fs::remove_dir_all(&path).expect("flatten");
        std::fs::write(&path, &bytes).expect("legacy file");
        assert!(path.is_file());

        let (wal, replayed, _) = Wal::open(&path, &provenance(), 0).expect("migrate");
        assert_eq!(replayed, sample(), "migration preserves every record");
        assert!(path.is_dir(), "file became a directory");
        assert_eq!(wal.active_generation(), 0);
        drop(wal);
        // Idempotent: a second open replays identically.
        let (_, replayed, _) = Wal::open(&path, &provenance(), 0).expect("reopen");
        assert_eq!(replayed, sample());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn provenance_mismatch_is_typed() {
        let d = dir("prov");
        let path = d.join("serve.wal");
        let (_, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        let other = WalProvenance { algorithm: "ICWS".into(), seed: 10, num_hashes: 128 };
        match Wal::open(&path, &other, 0) {
            Err(WalError::ProvenanceMismatch { expected, got }) => {
                assert_eq!(expected.1, 10);
                assert_eq!(got.1, 9);
            }
            other => panic!("expected provenance mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        let d = dir("magic");
        let path = d.join("serve.wal");
        std::fs::write(&path, b"definitely not a wal").expect("write");
        assert_eq!(Wal::open(&path, &provenance(), 0).unwrap_err(), WalError::BadMagic);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn float_payloads_survive_bit_exactly() {
        let d = dir("bits");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        let m = Mutation::Stream {
            id: 1,
            lambda: 0.1 + 0.2, // deliberately non-representable
            items: vec![(2, 1.0 / 3.0), (3, f64::MIN_POSITIVE)],
        };
        wal.append(&m).expect("append");
        drop(wal);
        let (_, replayed, _) = Wal::open(&path, &provenance(), 0).expect("reopen");
        let Mutation::Stream { lambda, items, .. } = &replayed[0] else { panic!("kind") };
        assert_eq!(lambda.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(items[0].1.to_bits(), (1.0f64 / 3.0).to_bits());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn inspect_reports_segments_and_flags_corruption() {
        let d = dir("inspect");
        let path = d.join("serve.wal");
        let (mut wal, _, _) = Wal::open(&path, &provenance(), 0).expect("create");
        for m in sample() {
            wal.append(&m).expect("append");
        }
        wal.rotate().expect("rotate");
        wal.append(&Mutation::Delete { id: 9 }).expect("append");
        drop(wal);

        let info = inspect(&path).expect("inspect");
        assert_eq!(info.provenance, provenance());
        assert_eq!(info.segments.len(), 2);
        assert_eq!(info.segments[0].records, 3);
        assert_eq!(info.segments[1].records, 1);
        assert!(!info.corrupt());

        // A torn tail on the newest segment is a crash signature, not
        // corruption.
        let newest = active_path(&path, 1);
        let mut bytes = std::fs::read(&newest).expect("read");
        bytes.extend_from_slice(&[9, 9, 9]);
        std::fs::write(&newest, &bytes).expect("tear");
        let info = inspect(&path).expect("inspect");
        assert_eq!(info.segments[1].torn_bytes, 3);
        assert!(!info.corrupt());

        // The same bytes on a *sealed* segment are corruption.
        let sealed = active_path(&path, 0);
        let mut bytes = std::fs::read(&sealed).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&sealed, &bytes).expect("corrupt");
        let info = inspect(&path).expect("inspect");
        assert!(info.corrupt());
        let _ = std::fs::remove_dir_all(&d);
    }
}
