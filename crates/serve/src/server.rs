//! The TCP front end: an accept loop feeding per-connection handler
//! threads that speak length-prefixed JSON frames.
//!
//! Concurrency limits live in the [`Service`] (admission cap, bounded
//! shard inboxes), not in the transport: a connection is cheap, a request
//! is what gets admission-controlled. Malformed *JSON* gets a typed
//! `bad_request` response; broken *framing* (a peer that cannot even
//! speak length prefixes) closes the connection — there is no frame
//! boundary left to answer on.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::protocol::{Outcome, QueryResponse, Request, Response};
use crate::service::Service;
use crate::wire;

/// Errors from starting a server.
#[derive(Debug)]
pub enum ServerError {
    /// Binding the listen socket failed.
    Bind(String),
    /// The OS refused the accept-loop thread.
    Spawn(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bind(e) => write!(f, "binding listener: {e}"),
            Self::Spawn(e) => write!(f, "spawning accept loop: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// A running TCP front end. Dropping it stops the accept loop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (port 0 picks a free port — see [`Server::addr`]) and
    /// start accepting connections against `service`.
    ///
    /// # Errors
    /// [`ServerError`] when the bind or the accept-loop spawn fails.
    pub fn spawn(service: Arc<Service>, addr: impl ToSocketAddrs) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServerError::Bind(e.to_string()))?;
        let local = listener.local_addr().map_err(|e| ServerError::Bind(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("wmh-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let service = Arc::clone(&service);
                    // Handlers are detached: each exits when its peer
                    // closes, and the process does not wait on idle
                    // keep-alive connections to shut the listener down.
                    let _ = std::thread::Builder::new()
                        .name("wmh-serve-conn".into())
                        .spawn(move || handle_connection(&service, stream));
                }
            })
            .map_err(|e| ServerError::Spawn(e.to_string()))?;
        Ok(Self { addr: local, stop, accept: Some(accept) })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Open connections finish
    /// on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Self-connect to unblock the accept loop's blocking `incoming`.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serve one connection: a sequence of framed requests, each answered in
/// order on the same stream. A mutation response carrying `reshard_hint`
/// kicks off a background re-shard (at most one runs at a time — the
/// service absorbs concurrent attempts).
fn handle_connection(service: &Arc<Service>, mut stream: TcpStream) {
    loop {
        let body = match wire::read_frame(&mut stream) {
            Ok(Some(body)) => body,
            // Clean close, or framing so broken there is no boundary to
            // answer on.
            Ok(None) | Err(_) => return,
        };
        let response = match wmh_json::from_str::<Request>(&body) {
            Ok(Request::Query(query)) => Response::Query(service.query(&query)),
            Ok(Request::Mutate(mutation)) => {
                let response = service.mutate(&mutation);
                if response.reshard_hint {
                    service.spawn_reshard();
                }
                Response::Mutation(response)
            }
            Ok(Request::Health) => Response::Health(service.health()),
            Err(e) => Response::Query(QueryResponse::empty(
                0,
                Outcome::BadRequest,
                service.health().shards_total,
                Some(format!("malformed request: {e}")),
            )),
        };
        if wire::write_frame(&mut stream, &wmh_json::to_string(&response)).is_err() {
            return;
        }
    }
}
