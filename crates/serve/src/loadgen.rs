//! Closed-loop load generator: the instrument that turns the robustness
//! envelope into numbers.
//!
//! `concurrency` workers each run a closed loop — issue, wait for the
//! typed response, honor any `retry_after_us` hint, issue the next — over
//! a shared request counter, so exactly [`LoadConfig::requests`] requests
//! are issued in total regardless of worker count. Every response is
//! recorded: the central invariant of [`LoadReport::validate`] is that the
//! per-outcome counts sum to the requests issued, i.e. **no request ever
//! terminates without a typed outcome**. Latency percentiles are exact
//! (sorted order statistics, not histograms).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::protocol::{MutationKind, MutationRequest, Outcome, QueryRequest};
use crate::service::Service;

/// Schema tag of [`LoadReport`] files (`results/BENCH_serve_load.json`).
pub const LOAD_SCHEMA_VERSION: &str = "wmh-serve-load/v1";

/// Load-run shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total requests to issue.
    pub requests: usize,
    /// Closed-loop workers.
    pub concurrency: usize,
    /// Neighbours per query.
    pub k: usize,
    /// Per-request budget in microseconds.
    pub deadline_us: u64,
    /// Issue a mutation every Nth request (0 disables the write mix).
    /// Writes cycle insert → stream → delete, so a long run exercises the
    /// whole mutation surface, including deletes racing their own inserts
    /// (accounted as typed `bad_request`, never lost).
    pub write_every: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self { requests: 2000, concurrency: 4, k: 10, deadline_us: 20_000, write_every: 0 }
    }
}

/// Ids minted by the write mix start here, far above any corpus id.
const WRITE_ID_BASE: u64 = 1_000_000;

/// One load run's aggregate (schema [`LOAD_SCHEMA_VERSION`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Schema tag.
    pub schema: String,
    /// Corpus name (Table-4 style).
    pub corpus: String,
    /// Documents indexed.
    pub docs: usize,
    /// Service shard count.
    pub shards: usize,
    /// Requests issued.
    pub requests: usize,
    /// Closed-loop workers.
    pub concurrency: usize,
    /// Per-request budget.
    pub deadline_us: u64,
    /// Wall-clock of the whole run.
    pub elapsed_secs: f64,
    /// Requests per second (requests / elapsed).
    pub throughput_rps: f64,
    /// Median latency, exact order statistic.
    pub p50_us: u64,
    /// 99th-percentile latency, exact order statistic.
    pub p99_us: u64,
    /// Worst latency.
    pub max_us: u64,
    /// Requests with outcome `ok`.
    pub ok: usize,
    /// Requests with outcome `partial`.
    pub partial: usize,
    /// Requests with outcome `deadline_exceeded`.
    pub deadline_exceeded: usize,
    /// Requests with outcome `overloaded`.
    pub overloaded: usize,
    /// Requests with outcome `bad_request`.
    pub bad_request: usize,
    /// Requests with outcome `read_only` (mutations against a degraded or
    /// WAL-less service).
    pub read_only: usize,
    /// Mutations issued (counted inside `requests`; the write mix).
    pub writes: usize,
    /// Shard slices shed at full inboxes, summed over all requests.
    pub shed_slices: usize,
    /// Worst coverage among served (`ok`/`partial`) responses; 1.0 when
    /// nothing was served degraded.
    pub min_coverage: f64,
}

wmh_json::json_object!(LoadReport {
    schema,
    corpus,
    docs,
    shards,
    requests,
    concurrency,
    deadline_us,
    elapsed_secs,
    throughput_rps,
    p50_us,
    p99_us,
    max_us,
    ok,
    partial,
    deadline_exceeded,
    overloaded,
    bad_request,
    read_only,
    writes,
    shed_slices,
    min_coverage,
});

impl LoadReport {
    /// Arithmetic invariants every honest run satisfies; `check-report`
    /// and the chaos soak both gate on this.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != LOAD_SCHEMA_VERSION {
            return Err(format!("schema {:?}, expected {LOAD_SCHEMA_VERSION:?}", self.schema));
        }
        let accounted = self.ok
            + self.partial
            + self.deadline_exceeded
            + self.overloaded
            + self.bad_request
            + self.read_only;
        if accounted != self.requests {
            return Err(format!(
                "outcome counts sum to {accounted} but {} requests were issued — \
                 some request terminated without a typed outcome",
                self.requests
            ));
        }
        if self.writes > self.requests {
            return Err(format!(
                "{} writes exceed the {} requests issued",
                self.writes, self.requests
            ));
        }
        if !(self.p50_us <= self.p99_us && self.p99_us <= self.max_us) {
            return Err(format!(
                "latency order statistics out of order: p50 {} / p99 {} / max {}",
                self.p50_us, self.p99_us, self.max_us
            ));
        }
        if !(0.0..=1.0).contains(&self.min_coverage) {
            return Err(format!("min_coverage {} outside [0, 1]", self.min_coverage));
        }
        if !(self.elapsed_secs.is_finite() && self.elapsed_secs >= 0.0) {
            return Err(format!("elapsed_secs {} not a finite non-negative", self.elapsed_secs));
        }
        if !(self.throughput_rps.is_finite() && self.throughput_rps >= 0.0) {
            return Err(format!(
                "throughput_rps {} not a finite non-negative",
                self.throughput_rps
            ));
        }
        Ok(())
    }
}

/// One recorded response.
struct Sample {
    latency_us: u64,
    outcome: Outcome,
    coverage: f64,
    shed: usize,
    write: bool,
}

/// The write the mix issues at request index `i` (`i` is a multiple of
/// `write_every`). Cycles insert → stream → delete on fresh ids above
/// [`WRITE_ID_BASE`]; deletes target the insert from two write slots
/// earlier, so under concurrency a delete can race its own insert — a
/// typed `bad_request`, exercised on purpose.
fn write_request(
    i: usize,
    write_every: usize,
    doc: &[(u64, f64)],
    deadline_us: u64,
) -> MutationRequest {
    let slot = i / write_every;
    let kind = match slot % 3 {
        0 => MutationKind::Insert { doc: doc.to_vec() },
        1 => MutationKind::Stream { lambda: 0.5, items: doc.iter().take(8).copied().collect() },
        _ => MutationKind::Delete,
    };
    let id = match kind {
        // Deletes chase the insert from two slots back.
        MutationKind::Delete => WRITE_ID_BASE + (i - 2 * write_every) as u64,
        _ => WRITE_ID_BASE + i as u64,
    };
    MutationRequest { id, kind, deadline_us: Some(deadline_us) }
}

/// Drive `service` with the closed loop and aggregate the run.
///
/// `docs` are the query documents, cycled round-robin by request index.
/// Returns a report that always satisfies [`LoadReport::validate`] unless
/// the service itself broke the typed-outcome contract.
pub fn run(
    service: &Service,
    corpus: &str,
    docs: &[Vec<(u64, f64)>],
    config: &LoadConfig,
) -> LoadReport {
    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(config.requests));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.concurrency.max(1) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= config.requests || docs.is_empty() {
                        break;
                    }
                    let doc = &docs[i % docs.len()];
                    // Deletes never underflow: they fire only at write
                    // slots >= 2, so `i - 2 * write_every` stays in range.
                    let write = config.write_every > 0 && i.is_multiple_of(config.write_every);
                    let issued = Instant::now();
                    let (outcome, coverage, shed, retry_after_us) = if write {
                        let request = write_request(i, config.write_every, doc, config.deadline_us);
                        let response = service.mutate(&request);
                        (response.outcome, 1.0, 0, response.retry_after_us)
                    } else {
                        let request = QueryRequest {
                            id: i as u64,
                            doc: doc.clone(),
                            k: config.k,
                            deadline_us: Some(config.deadline_us),
                        };
                        let response = service.query(&request);
                        (
                            response.outcome,
                            response.coverage,
                            response.shed,
                            response.retry_after_us,
                        )
                    };
                    let latency_us =
                        u64::try_from(issued.elapsed().as_micros()).unwrap_or(u64::MAX);
                    if outcome == Outcome::Overloaded && retry_after_us > 0 {
                        // Honor the server's typed backpressure (capped so a
                        // long hint cannot stall the closed loop).
                        std::thread::sleep(Duration::from_micros(retry_after_us.min(2000)));
                    }
                    local.push(Sample { latency_us, outcome, coverage, shed, write });
                }
                samples.lock().unwrap_or_else(PoisonError::into_inner).extend(local);
            });
        }
    });
    let elapsed_secs = started.elapsed().as_secs_f64();
    let samples = samples.into_inner().unwrap_or_else(PoisonError::into_inner);

    let mut latencies: Vec<u64> = samples.iter().map(|s| s.latency_us).collect();
    latencies.sort_unstable();
    let percentile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[rank.min(latencies.len() - 1)]
    };
    let count = |outcome: Outcome| samples.iter().filter(|s| s.outcome == outcome).count();
    let min_coverage = samples
        .iter()
        .filter(|s| matches!(s.outcome, Outcome::Ok | Outcome::Partial))
        .map(|s| s.coverage)
        .fold(1.0f64, f64::min);

    LoadReport {
        schema: LOAD_SCHEMA_VERSION.to_owned(),
        corpus: corpus.to_owned(),
        docs: docs.len(),
        shards: service.health().shards_total,
        requests: samples.len(),
        concurrency: config.concurrency.max(1),
        deadline_us: config.deadline_us,
        elapsed_secs,
        throughput_rps: if elapsed_secs > 0.0 { samples.len() as f64 / elapsed_secs } else { 0.0 },
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        ok: count(Outcome::Ok),
        partial: count(Outcome::Partial),
        deadline_exceeded: count(Outcome::DeadlineExceeded),
        overloaded: count(Outcome::Overloaded),
        bad_request: count(Outcome::BadRequest),
        read_only: count(Outcome::ReadOnly),
        writes: samples.iter().filter(|s| s.write).count(),
        shed_slices: samples.iter().map(|s| s.shed).sum(),
        min_coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LoadReport {
        LoadReport {
            schema: LOAD_SCHEMA_VERSION.to_owned(),
            corpus: "Syn3E0.24S".to_owned(),
            docs: 600,
            shards: 4,
            requests: 100,
            concurrency: 4,
            deadline_us: 20_000,
            elapsed_secs: 0.5,
            throughput_rps: 200.0,
            p50_us: 150,
            p99_us: 900,
            max_us: 1200,
            ok: 97,
            partial: 2,
            deadline_exceeded: 1,
            overloaded: 0,
            bad_request: 0,
            read_only: 0,
            writes: 10,
            shed_slices: 1,
            min_coverage: 0.75,
        }
    }

    #[test]
    fn valid_report_passes_and_round_trips() {
        let r = report();
        r.validate().expect("valid");
        let back: LoadReport = wmh_json::from_str(&wmh_json::to_string(&r)).expect("parse");
        assert_eq!(r, back);
    }

    #[test]
    fn unaccounted_requests_fail_validation() {
        let mut r = report();
        r.ok -= 1;
        let err = r.validate().expect_err("must fail");
        assert!(err.contains("typed outcome"), "{err}");
    }

    #[test]
    fn overcounted_writes_fail_validation() {
        let mut r = report();
        r.writes = r.requests + 1;
        let err = r.validate().expect_err("must fail");
        assert!(err.contains("writes exceed"), "{err}");
    }

    #[test]
    fn write_mix_cycles_and_deletes_chase_inserts() {
        let doc = vec![(1u64, 1.0f64), (2, 2.0)];
        let insert = write_request(0, 5, &doc, 1000);
        assert!(matches!(insert.kind, MutationKind::Insert { .. }));
        let stream = write_request(5, 5, &doc, 1000);
        assert!(matches!(stream.kind, MutationKind::Stream { .. }));
        let delete = write_request(10, 5, &doc, 1000);
        assert!(matches!(delete.kind, MutationKind::Delete));
        // The delete targets the insert from two write slots back.
        assert_eq!(delete.id, insert.id);
    }

    #[test]
    fn misordered_percentiles_fail_validation() {
        let mut r = report();
        r.p99_us = r.max_us + 1;
        assert!(r.validate().is_err());
        let mut r = report();
        r.schema = "wmh-serve-load/v0".into();
        assert!(r.validate().is_err());
        let mut r = report();
        r.min_coverage = 1.5;
        assert!(r.validate().is_err());
    }
}
