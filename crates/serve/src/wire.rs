//! Length-prefixed framing: `u32` little-endian body length, then that
//! many bytes of UTF-8 JSON.
//!
//! The frame layer is deliberately dumb — it knows lengths, not JSON — so
//! its failure modes are few and typed: a peer that closes between frames
//! is a clean `None`, a peer that closes mid-frame is [`WireError::Truncated`],
//! and a length prefix beyond [`MAX_FRAME`] is rejected *before* any
//! allocation, so a hostile or corrupt prefix cannot balloon memory.

use std::io::{ErrorKind, Read, Write};

/// Hard cap on a single frame body (16 MiB).
pub const MAX_FRAME: u32 = 16 << 20;

/// Errors from the framing layer.
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// A length prefix above [`MAX_FRAME`].
    TooLarge(u32),
    /// The peer closed the stream mid-frame.
    Truncated {
        /// Bytes the frame promised.
        wanted: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The body was not valid UTF-8.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wire I/O failed: {e}"),
            Self::TooLarge(len) => write!(f, "frame length {len} exceeds cap {MAX_FRAME}"),
            Self::Truncated { wanted, got } => {
                write!(f, "stream closed mid-frame: wanted {wanted} bytes, got {got}")
            }
            Self::Malformed(e) => write!(f, "frame body is not UTF-8: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Write one frame: 4-byte little-endian length, then the body.
///
/// # Errors
/// [`WireError::TooLarge`] for oversized bodies; [`WireError::Io`] on
/// transport failure.
pub fn write_frame(w: &mut impl Write, body: &str) -> Result<(), WireError> {
    let len = u32::try_from(body.len()).map_err(|_| WireError::TooLarge(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    w.write_all(&len.to_le_bytes()).map_err(WireError::Io)?;
    w.write_all(body.as_bytes()).map_err(WireError::Io)?;
    w.flush().map_err(WireError::Io)
}

/// Read one frame; `Ok(None)` when the peer closed cleanly between frames.
///
/// # Errors
/// [`WireError::Truncated`] on a mid-frame close, [`WireError::TooLarge`]
/// for an oversized prefix, [`WireError::Malformed`] for non-UTF-8 bodies,
/// [`WireError::Io`] on transport failure.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, WireError> {
    let mut len_buf = [0u8; 4];
    if !fill(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    if !fill(r, &mut body)? {
        return Err(WireError::Truncated { wanted: len as usize, got: 0 });
    }
    String::from_utf8(body).map(Some).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Fill `buf` completely. `Ok(false)` when the stream ended *before the
/// first byte* — the clean-close signal; a later EOF is [`WireError::Truncated`].
fn fill(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return Ok(false),
            Ok(0) => return Err(WireError::Truncated { wanted: buf.len(), got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_frames_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "first").expect("write");
        write_frame(&mut buf, "").expect("write");
        write_frame(&mut buf, "川 second").expect("write");
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).expect("read"), Some("first".to_owned()));
        assert_eq!(read_frame(&mut r).expect("read"), Some(String::new()));
        assert_eq!(read_frame(&mut r).expect("read"), Some("川 second".to_owned()));
        assert_eq!(read_frame(&mut r).expect("read"), None, "clean EOF");
    }

    #[test]
    fn truncated_frames_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello world").expect("write");
        // Cut the body short.
        buf.truncate(4 + 5);
        let mut r = buf.as_slice();
        assert!(matches!(read_frame(&mut r), Err(WireError::Truncated { wanted: 11, got: 5 })));
        // Cut inside the length prefix itself.
        let mut r = &buf[..2];
        assert!(matches!(read_frame(&mut r), Err(WireError::Truncated { wanted: 4, got: 2 })));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = buf.as_slice();
        assert!(matches!(read_frame(&mut r), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn non_utf8_body_is_typed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = buf.as_slice();
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
    }
}
