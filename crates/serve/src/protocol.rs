//! The JSON request/response protocol, and the typed-outcome contract.
//!
//! Every response carries an [`Outcome`] — the service's one-word verdict
//! on what happened to the request. The precedence is fixed so clients can
//! branch on it without cross-checking other fields:
//!
//! * `bad_request` — the request itself was unusable (malformed JSON,
//!   empty document). Nothing was attempted.
//! * `overloaded` — admission control rejected the request before any
//!   work; `retry_after_us` carries the seeded-deterministic backoff hint.
//! * `deadline_exceeded` — the budget expired with **zero** shard slices
//!   merged; there are no results worth returning.
//! * `partial` — some but not all shards contributed (deadline miss on a
//!   slice, shed inbox, quarantined shard, merge fault). `coverage` says
//!   how much of the index the results actually consulted.
//! * `ok` — every shard answered in budget.
//!
//! Mutations (`insert` / `delete` / `stream`) share the taxonomy, with two
//! differences: they never return `partial` (a mutation touches exactly
//! one shard), and they can return `read_only` — the service is not
//! accepting writes (opened without a WAL, degraded after a WAL failure,
//! or mid-re-shard; `retry_after_us` hints when to retry for the
//! transient cases). Precedence for writes: `overloaded` (rejected at
//! admission, nothing attempted) → `read_only` → `bad_request` →
//! `deadline_exceeded` → `ok`. A write's `durable`/`applied` flags refine
//! the verdict: `deadline_exceeded` with `durable: true` means the
//! mutation **is** committed to the log and will be applied — only the
//! confirmation ran out of time.
//!
//! The outcome spellings are wire contract, pinned by
//! `outcome_spellings_are_stable` exactly like `wmh_core::ErrorKind`'s
//! stability test — renaming a variant must not break deployed clients.

use wmh_json::{FromJson, Json, JsonError, ToJson};

/// Default `k` when a query does not specify one.
pub const DEFAULT_K: usize = 10;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Similarity query.
    Query(QueryRequest),
    /// Live mutation (insert / delete / streaming update).
    Mutate(MutationRequest),
    /// Health / readiness probe.
    Health,
}

/// A similarity query: `{"op":"query","id":7,"doc":[[index,weight],…],
/// "k":10,"deadline_us":5000}`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: u64,
    /// The weighted document as `(index, weight)` pairs.
    pub doc: Vec<(u64, f64)>,
    /// Number of neighbours wanted (defaults to [`DEFAULT_K`]).
    pub k: usize,
    /// Wall-clock budget in microseconds; absent means the server default.
    pub deadline_us: Option<u64>,
}

/// The typed verdict on a request (see the module docs for precedence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every shard answered within budget.
    Ok,
    /// Results from a strict subset of shards (see `coverage`).
    Partial,
    /// The budget expired with no shard slice merged.
    DeadlineExceeded,
    /// Admission control rejected the request.
    Overloaded,
    /// The request was unusable.
    BadRequest,
    /// The service is not accepting writes (no WAL, WAL degraded, or a
    /// re-shard in progress). Mutation-only.
    ReadOnly,
}

impl Outcome {
    /// Every outcome, in precedence order (for exhaustive wire tests).
    pub const ALL: [Self; 6] = [
        Self::Ok,
        Self::Partial,
        Self::DeadlineExceeded,
        Self::Overloaded,
        Self::BadRequest,
        Self::ReadOnly,
    ];

    /// Wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Partial => "partial",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::Overloaded => "overloaded",
            Self::BadRequest => "bad_request",
            Self::ReadOnly => "read_only",
        }
    }

    /// Parse the wire spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(Self::Ok),
            "partial" => Some(Self::Partial),
            "deadline_exceeded" => Some(Self::DeadlineExceeded),
            "overloaded" => Some(Self::Overloaded),
            "bad_request" => Some(Self::BadRequest),
            "read_only" => Some(Self::ReadOnly),
            _ => None,
        }
    }
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_owned())
    }
}

impl FromJson for Outcome {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s =
            v.as_str().ok_or(JsonError::WrongType { expected: "string", got: v.type_name() })?;
        Self::parse(s).ok_or_else(|| JsonError::Invalid(format!("unknown outcome {s:?}")))
    }
}

/// A similarity response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The request's correlation id.
    pub id: u64,
    /// Typed verdict.
    pub outcome: Outcome,
    /// `(id, estimated similarity)`, best first; ties break by id.
    pub results: Vec<(u64, f64)>,
    /// Fraction of shards whose slice made it into `results`.
    pub coverage: f64,
    /// Shards the service is configured with.
    pub shards_total: usize,
    /// Shards whose slice was merged.
    pub shards_answered: usize,
    /// Slices shed at full shard inboxes (explicit load-shedding).
    pub shed: usize,
    /// For `overloaded`: the seeded backoff hint, else 0.
    pub retry_after_us: u64,
    /// Human-readable detail for degraded outcomes.
    pub error: Option<String>,
}

wmh_json::json_object!(QueryResponse {
    id,
    outcome,
    results,
    coverage,
    shards_total,
    shards_answered,
    shed,
    retry_after_us,
    error,
});

impl QueryResponse {
    /// A response that carries no results — the rejected/expired shapes.
    #[must_use]
    pub fn empty(id: u64, outcome: Outcome, shards_total: usize, error: Option<String>) -> Self {
        Self {
            id,
            outcome,
            results: Vec::new(),
            coverage: 0.0,
            shards_total,
            shards_answered: 0,
            shed: 0,
            retry_after_us: 0,
            error,
        }
    }
}

/// A live mutation: the `id` is the *point* id being written (it doubles
/// as the correlation id, echoed back verbatim).
#[derive(Debug, Clone, PartialEq)]
pub struct MutationRequest {
    /// The point id the mutation addresses.
    pub id: u64,
    /// What to do to it.
    pub kind: MutationKind,
    /// Wall-clock budget in microseconds; absent means the server default.
    /// Bounds the wait for the ack, never whether a committed mutation is
    /// applied.
    pub deadline_us: Option<u64>,
}

/// The three write shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationKind {
    /// Index a new document: `{"op":"insert","id":7,"doc":[[k,w],…]}`.
    Insert {
        /// The weighted document as `(index, weight)` pairs.
        doc: Vec<(u64, f64)>,
    },
    /// Forget a point: `{"op":"delete","id":7}`.
    Delete,
    /// One streaming step for a drifting document:
    /// `{"op":"stream","id":7,"lambda":0.9,"items":[[k,mass],…]}`.
    /// Decays the point's accumulated histogram by `lambda`, then feeds
    /// `items` through the HistoSketch gradual-forgetting path. An unknown
    /// id with non-empty items is created.
    Stream {
        /// Gradual-forgetting factor in `(0, 1]`.
        lambda: f64,
        /// `(element, mass)` stream items.
        items: Vec<(u64, f64)>,
    },
}

/// A mutation response.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationResponse {
    /// The point id, echoed.
    pub id: u64,
    /// Typed verdict (see the module docs for the write precedence).
    pub outcome: Outcome,
    /// Whether the mutation reached the WAL — the commit point. A durable
    /// mutation survives any crash, whatever else the response says.
    pub durable: bool,
    /// Whether the owning shard confirmed the in-memory apply in budget.
    pub applied: bool,
    /// The owning shard, once routing happened.
    pub shard: Option<usize>,
    /// Live points across all shards after this mutation.
    pub indexed: usize,
    /// The id distribution has skewed past the configured threshold; a
    /// background re-shard is advised.
    pub reshard_hint: bool,
    /// For `overloaded`/`read_only`: the seeded backoff hint, else 0.
    pub retry_after_us: u64,
    /// Human-readable detail for degraded outcomes.
    pub error: Option<String>,
}

wmh_json::json_object!(MutationResponse {
    id,
    outcome,
    durable,
    applied,
    shard,
    indexed,
    reshard_hint,
    retry_after_us,
    error,
});

impl MutationResponse {
    /// A response for a mutation that changed nothing — the rejected /
    /// degraded shapes.
    #[must_use]
    pub fn rejected(id: u64, outcome: Outcome, indexed: usize, error: Option<String>) -> Self {
        Self {
            id,
            outcome,
            durable: false,
            applied: false,
            shard: None,
            indexed,
            reshard_hint: false,
            retry_after_us: 0,
            error,
        }
    }
}

/// A health / readiness snapshot, durability state included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthResponse {
    /// Whether at least one shard is serving.
    pub ready: bool,
    /// Points indexed across all shards.
    pub indexed: usize,
    /// Configured shard count.
    pub shards_total: usize,
    /// Shards currently quarantined.
    pub shards_quarantined: usize,
    /// Requests currently between admission and response.
    pub inflight: usize,
    /// Whether writes are currently rejected with `read_only`.
    pub read_only: bool,
    /// Whether the write gate is tripped and probing (half-open): writes
    /// are rejected fast, except the periodic probe that re-admits them
    /// once the disk fault clears. `read_only` is always true while
    /// `half_open` is.
    pub half_open: bool,
    /// Whether a background re-shard is in progress.
    pub resharding: bool,
    /// Mutation records across the live WAL segments (replayed at open
    /// plus appended since; 0 for read-only services).
    pub wal_records: u64,
    /// Bytes across the live WAL segments' valid prefixes.
    pub wal_bytes: u64,
    /// Records replayed by the open-time recovery (0 for read-only
    /// services and fresh logs).
    pub replayed_records: u64,
    /// Torn-tail bytes the open-time recovery discarded (the crash
    /// signature; 0 for a cleanly closed log).
    pub replay_bytes_discarded: u64,
    /// Generation of the newest durable snapshot, `null` before the first
    /// one (and for read-only services).
    pub snapshot_generation: Option<u64>,
}

wmh_json::json_object!(HealthResponse {
    ready,
    indexed,
    shards_total,
    shards_quarantined,
    inflight,
    read_only,
    half_open,
    resharding,
    wal_records,
    wal_bytes,
    replayed_records,
    replay_bytes_discarded,
    snapshot_generation,
});

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Query(QueryResponse),
    /// Answer to [`Request::Mutate`] (wire op `mutation`, whatever the
    /// request op was).
    Mutation(MutationResponse),
    /// Answer to [`Request::Health`].
    Health(HealthResponse),
}

fn tagged(op: &str, inner: Json) -> Json {
    let mut entries = vec![("op".to_owned(), Json::Str(op.to_owned()))];
    if let Json::Obj(rest) = inner {
        entries.extend(rest);
    }
    Json::Obj(entries)
}

fn op_of(v: &Json) -> Result<&str, JsonError> {
    let op = v.field("op")?;
    op.as_str().ok_or(JsonError::WrongType { expected: "string", got: op.type_name() })
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Self::Query(q) => tagged("query", q.to_json()),
            Self::Mutate(m) => {
                let op = match m.kind {
                    MutationKind::Insert { .. } => "insert",
                    MutationKind::Delete => "delete",
                    MutationKind::Stream { .. } => "stream",
                };
                tagged(op, m.to_json())
            }
            Self::Health => tagged("health", Json::Obj(Vec::new())),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let op = op_of(v)?;
        match op {
            "query" => Ok(Self::Query(QueryRequest::from_json(v)?)),
            "insert" | "delete" | "stream" => Ok(Self::Mutate(MutationRequest::decode(op, v)?)),
            "health" => Ok(Self::Health),
            other => Err(JsonError::Invalid(format!("unknown request op {other:?}"))),
        }
    }
}

impl ToJson for MutationRequest {
    fn to_json(&self) -> Json {
        let mut entries = vec![("id".to_owned(), self.id.to_json())];
        match &self.kind {
            MutationKind::Insert { doc } => entries.push(("doc".to_owned(), doc.to_json())),
            MutationKind::Delete => {}
            MutationKind::Stream { lambda, items } => {
                entries.push(("lambda".to_owned(), lambda.to_json()));
                entries.push(("items".to_owned(), items.to_json()));
            }
        }
        entries.push(("deadline_us".to_owned(), self.deadline_us.to_json()));
        Json::Obj(entries)
    }
}

impl MutationRequest {
    /// Decode the body of an `insert`/`delete`/`stream` request.
    fn decode(op: &str, v: &Json) -> Result<Self, JsonError> {
        let kind = match op {
            "insert" => MutationKind::Insert { doc: Vec::from_json(v.field("doc")?)? },
            "delete" => MutationKind::Delete,
            "stream" => MutationKind::Stream {
                lambda: f64::from_json(v.field("lambda")?)?,
                items: Vec::from_json(v.field("items")?)?,
            },
            other => return Err(JsonError::Invalid(format!("unknown mutation op {other:?}"))),
        };
        let deadline_us = match v.field_opt("deadline_us") {
            Some(field) => Option::<u64>::from_json(field)?,
            None => None,
        };
        Ok(Self { id: u64::from_json(v.field("id")?)?, kind, deadline_us })
    }
}

impl ToJson for QueryRequest {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_owned(), self.id.to_json()),
            ("doc".to_owned(), self.doc.to_json()),
            ("k".to_owned(), self.k.to_json()),
            ("deadline_us".to_owned(), self.deadline_us.to_json()),
        ])
    }
}

impl FromJson for QueryRequest {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let k = match v.field_opt("k") {
            Some(field) => usize::from_json(field)?,
            None => DEFAULT_K,
        };
        let deadline_us = match v.field_opt("deadline_us") {
            Some(field) => Option::<u64>::from_json(field)?,
            None => None,
        };
        Ok(Self {
            id: u64::from_json(v.field("id")?)?,
            doc: Vec::from_json(v.field("doc")?)?,
            k,
            deadline_us,
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Self::Query(q) => tagged("query", q.to_json()),
            Self::Mutation(m) => tagged("mutation", m.to_json()),
            Self::Health(h) => tagged("health", h.to_json()),
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match op_of(v)? {
            "query" => Ok(Self::Query(QueryResponse::from_json(v)?)),
            "mutation" => Ok(Self::Mutation(MutationResponse::from_json(v)?)),
            "health" => Ok(Self::Health(HealthResponse::from_json(v)?)),
            other => Err(JsonError::Invalid(format!("unknown response op {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_round_trips() {
        let req = Request::Query(QueryRequest {
            id: 7,
            doc: vec![(3, 1.5), (9, 0.25)],
            k: 4,
            deadline_us: Some(5000),
        });
        let text = wmh_json::to_string(&req);
        assert!(text.contains("\"op\":\"query\""), "{text}");
        let back: Request = wmh_json::from_str(&text).expect("parse");
        assert_eq!(req, back);
    }

    #[test]
    fn query_request_defaults_apply() {
        let req: Request =
            wmh_json::from_str(r#"{"op":"query","id":1,"doc":[[0,1.0]]}"#).expect("parse");
        let Request::Query(q) = req else { panic!("expected query") };
        assert_eq!(q.k, DEFAULT_K);
        assert_eq!(q.deadline_us, None);
    }

    #[test]
    fn health_round_trips() {
        let req: Request = wmh_json::from_str(r#"{"op":"health"}"#).expect("parse");
        assert_eq!(req, Request::Health);
        let resp = Response::Health(HealthResponse {
            ready: true,
            indexed: 600,
            shards_total: 4,
            shards_quarantined: 1,
            inflight: 2,
            read_only: false,
            half_open: false,
            resharding: true,
            wal_records: 37,
            wal_bytes: 4096,
            replayed_records: 12,
            replay_bytes_discarded: 7,
            snapshot_generation: Some(3),
        });
        let back: Response = wmh_json::from_str(&wmh_json::to_string(&resp)).expect("parse");
        assert_eq!(resp, back);
        // The no-snapshot shape survives the wire too (`null` generation).
        let cold = Response::Health(HealthResponse {
            snapshot_generation: None,
            ..match resp {
                Response::Health(h) => h,
                _ => unreachable!(),
            }
        });
        let back: Response = wmh_json::from_str(&wmh_json::to_string(&cold)).expect("parse");
        assert_eq!(cold, back);
    }

    #[test]
    fn mutation_requests_round_trip() {
        for (req, op) in [
            (
                Request::Mutate(MutationRequest {
                    id: 42,
                    kind: MutationKind::Insert { doc: vec![(3, 1.5), (9, 0.25)] },
                    deadline_us: Some(7000),
                }),
                "insert",
            ),
            (
                Request::Mutate(MutationRequest {
                    id: 42,
                    kind: MutationKind::Delete,
                    deadline_us: None,
                }),
                "delete",
            ),
            (
                Request::Mutate(MutationRequest {
                    id: 42,
                    kind: MutationKind::Stream { lambda: 0.875, items: vec![(5, 2.0)] },
                    deadline_us: Some(1),
                }),
                "stream",
            ),
        ] {
            let text = wmh_json::to_string(&req);
            assert!(text.contains(&format!("\"op\":\"{op}\"")), "{text}");
            let back: Request = wmh_json::from_str(&text).expect("parse");
            assert_eq!(req, back);
        }
    }

    #[test]
    fn mutation_response_round_trips() {
        let resp = Response::Mutation(MutationResponse {
            id: 42,
            outcome: Outcome::Ok,
            durable: true,
            applied: true,
            shard: Some(3),
            indexed: 601,
            reshard_hint: true,
            retry_after_us: 0,
            error: None,
        });
        let text = wmh_json::to_string(&resp);
        assert!(text.contains("\"op\":\"mutation\""), "{text}");
        let back: Response = wmh_json::from_str(&text).expect("parse");
        assert_eq!(resp, back);
        // The degraded shape keeps its flags honest.
        let degraded = Response::Mutation(MutationResponse {
            outcome: Outcome::DeadlineExceeded,
            durable: true,
            applied: false,
            ..match resp {
                Response::Mutation(m) => m,
                _ => unreachable!(),
            }
        });
        let back: Response = wmh_json::from_str(&wmh_json::to_string(&degraded)).expect("parse");
        assert_eq!(degraded, back);
    }

    /// The wire spellings are a deployed-client contract, pinned the same
    /// way `wmh_core::ErrorKind`'s kebab-case codes are: this test names
    /// every spelling literally, so an enum rename that would change the
    /// wire format fails here instead of in production.
    #[test]
    fn outcome_spellings_are_stable() {
        let expected = [
            (Outcome::Ok, "ok"),
            (Outcome::Partial, "partial"),
            (Outcome::DeadlineExceeded, "deadline_exceeded"),
            (Outcome::Overloaded, "overloaded"),
            (Outcome::BadRequest, "bad_request"),
            (Outcome::ReadOnly, "read_only"),
        ];
        assert_eq!(expected.len(), Outcome::ALL.len(), "new outcomes must be pinned here");
        for (outcome, spelling) in expected {
            assert_eq!(outcome.as_str(), spelling);
            assert_eq!(Outcome::parse(spelling), Some(outcome));
        }
        // Request/response op names are contract too.
        for (req, op) in [
            (
                Request::Mutate(MutationRequest {
                    id: 1,
                    kind: MutationKind::Insert { doc: vec![(0, 1.0)] },
                    deadline_us: None,
                }),
                "insert",
            ),
            (
                Request::Mutate(MutationRequest {
                    id: 1,
                    kind: MutationKind::Delete,
                    deadline_us: None,
                }),
                "delete",
            ),
            (
                Request::Mutate(MutationRequest {
                    id: 1,
                    kind: MutationKind::Stream { lambda: 1.0, items: vec![] },
                    deadline_us: None,
                }),
                "stream",
            ),
        ] {
            assert!(wmh_json::to_string(&req).contains(&format!("\"op\":\"{op}\"")));
        }
    }

    #[test]
    fn query_response_round_trips_with_outcome_spelling() {
        let resp = Response::Query(QueryResponse {
            id: 9,
            outcome: Outcome::Partial,
            results: vec![(12, 0.875), (40, 0.5)],
            coverage: 0.75,
            shards_total: 4,
            shards_answered: 3,
            shed: 1,
            retry_after_us: 0,
            error: Some("shard 2: injected".to_owned()),
        });
        let text = wmh_json::to_string(&resp);
        assert!(text.contains("\"outcome\":\"partial\""), "{text}");
        let back: Response = wmh_json::from_str(&text).expect("parse");
        assert_eq!(resp, back);
    }

    #[test]
    fn unknown_ops_and_outcomes_are_typed_errors() {
        assert!(wmh_json::from_str::<Request>(r#"{"op":"mystery"}"#).is_err());
        assert!(wmh_json::from_str::<Request>(r#"{"id":1}"#).is_err());
        assert_eq!(Outcome::parse("sideways"), None);
        for outcome in Outcome::ALL {
            assert_eq!(Outcome::parse(outcome.as_str()), Some(outcome));
        }
    }
}
