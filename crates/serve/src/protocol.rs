//! The JSON request/response protocol, and the typed-outcome contract.
//!
//! Every response carries an [`Outcome`] — the service's one-word verdict
//! on what happened to the request. The precedence is fixed so clients can
//! branch on it without cross-checking other fields:
//!
//! * `bad_request` — the request itself was unusable (malformed JSON,
//!   empty document). Nothing was attempted.
//! * `overloaded` — admission control rejected the request before any
//!   work; `retry_after_us` carries the seeded-deterministic backoff hint.
//! * `deadline_exceeded` — the budget expired with **zero** shard slices
//!   merged; there are no results worth returning.
//! * `partial` — some but not all shards contributed (deadline miss on a
//!   slice, shed inbox, quarantined shard, merge fault). `coverage` says
//!   how much of the index the results actually consulted.
//! * `ok` — every shard answered in budget.

use wmh_json::{FromJson, Json, JsonError, ToJson};

/// Default `k` when a query does not specify one.
pub const DEFAULT_K: usize = 10;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Similarity query.
    Query(QueryRequest),
    /// Health / readiness probe.
    Health,
}

/// A similarity query: `{"op":"query","id":7,"doc":[[index,weight],…],
/// "k":10,"deadline_us":5000}`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: u64,
    /// The weighted document as `(index, weight)` pairs.
    pub doc: Vec<(u64, f64)>,
    /// Number of neighbours wanted (defaults to [`DEFAULT_K`]).
    pub k: usize,
    /// Wall-clock budget in microseconds; absent means the server default.
    pub deadline_us: Option<u64>,
}

/// The typed verdict on a request (see the module docs for precedence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every shard answered within budget.
    Ok,
    /// Results from a strict subset of shards (see `coverage`).
    Partial,
    /// The budget expired with no shard slice merged.
    DeadlineExceeded,
    /// Admission control rejected the request.
    Overloaded,
    /// The request was unusable.
    BadRequest,
}

impl Outcome {
    /// Wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Partial => "partial",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::Overloaded => "overloaded",
            Self::BadRequest => "bad_request",
        }
    }

    /// Parse the wire spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(Self::Ok),
            "partial" => Some(Self::Partial),
            "deadline_exceeded" => Some(Self::DeadlineExceeded),
            "overloaded" => Some(Self::Overloaded),
            "bad_request" => Some(Self::BadRequest),
            _ => None,
        }
    }
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_owned())
    }
}

impl FromJson for Outcome {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s =
            v.as_str().ok_or(JsonError::WrongType { expected: "string", got: v.type_name() })?;
        Self::parse(s).ok_or_else(|| JsonError::Invalid(format!("unknown outcome {s:?}")))
    }
}

/// A similarity response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The request's correlation id.
    pub id: u64,
    /// Typed verdict.
    pub outcome: Outcome,
    /// `(id, estimated similarity)`, best first; ties break by id.
    pub results: Vec<(u64, f64)>,
    /// Fraction of shards whose slice made it into `results`.
    pub coverage: f64,
    /// Shards the service is configured with.
    pub shards_total: usize,
    /// Shards whose slice was merged.
    pub shards_answered: usize,
    /// Slices shed at full shard inboxes (explicit load-shedding).
    pub shed: usize,
    /// For `overloaded`: the seeded backoff hint, else 0.
    pub retry_after_us: u64,
    /// Human-readable detail for degraded outcomes.
    pub error: Option<String>,
}

wmh_json::json_object!(QueryResponse {
    id,
    outcome,
    results,
    coverage,
    shards_total,
    shards_answered,
    shed,
    retry_after_us,
    error,
});

impl QueryResponse {
    /// A response that carries no results — the rejected/expired shapes.
    #[must_use]
    pub fn empty(id: u64, outcome: Outcome, shards_total: usize, error: Option<String>) -> Self {
        Self {
            id,
            outcome,
            results: Vec::new(),
            coverage: 0.0,
            shards_total,
            shards_answered: 0,
            shed: 0,
            retry_after_us: 0,
            error,
        }
    }
}

/// A health / readiness snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthResponse {
    /// Whether at least one shard is serving.
    pub ready: bool,
    /// Points indexed across all shards.
    pub indexed: usize,
    /// Configured shard count.
    pub shards_total: usize,
    /// Shards currently quarantined.
    pub shards_quarantined: usize,
    /// Requests currently between admission and response.
    pub inflight: usize,
}

wmh_json::json_object!(HealthResponse {
    ready,
    indexed,
    shards_total,
    shards_quarantined,
    inflight,
});

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Query(QueryResponse),
    /// Answer to [`Request::Health`].
    Health(HealthResponse),
}

fn tagged(op: &str, inner: Json) -> Json {
    let mut entries = vec![("op".to_owned(), Json::Str(op.to_owned()))];
    if let Json::Obj(rest) = inner {
        entries.extend(rest);
    }
    Json::Obj(entries)
}

fn op_of(v: &Json) -> Result<&str, JsonError> {
    let op = v.field("op")?;
    op.as_str().ok_or(JsonError::WrongType { expected: "string", got: op.type_name() })
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Self::Query(q) => tagged("query", q.to_json()),
            Self::Health => tagged("health", Json::Obj(Vec::new())),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match op_of(v)? {
            "query" => Ok(Self::Query(QueryRequest::from_json(v)?)),
            "health" => Ok(Self::Health),
            other => Err(JsonError::Invalid(format!("unknown request op {other:?}"))),
        }
    }
}

impl ToJson for QueryRequest {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_owned(), self.id.to_json()),
            ("doc".to_owned(), self.doc.to_json()),
            ("k".to_owned(), self.k.to_json()),
            ("deadline_us".to_owned(), self.deadline_us.to_json()),
        ])
    }
}

impl FromJson for QueryRequest {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let k = match v.field_opt("k") {
            Some(field) => usize::from_json(field)?,
            None => DEFAULT_K,
        };
        let deadline_us = match v.field_opt("deadline_us") {
            Some(field) => Option::<u64>::from_json(field)?,
            None => None,
        };
        Ok(Self {
            id: u64::from_json(v.field("id")?)?,
            doc: Vec::from_json(v.field("doc")?)?,
            k,
            deadline_us,
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Self::Query(q) => tagged("query", q.to_json()),
            Self::Health(h) => tagged("health", h.to_json()),
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match op_of(v)? {
            "query" => Ok(Self::Query(QueryResponse::from_json(v)?)),
            "health" => Ok(Self::Health(HealthResponse::from_json(v)?)),
            other => Err(JsonError::Invalid(format!("unknown response op {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_round_trips() {
        let req = Request::Query(QueryRequest {
            id: 7,
            doc: vec![(3, 1.5), (9, 0.25)],
            k: 4,
            deadline_us: Some(5000),
        });
        let text = wmh_json::to_string(&req);
        assert!(text.contains("\"op\":\"query\""), "{text}");
        let back: Request = wmh_json::from_str(&text).expect("parse");
        assert_eq!(req, back);
    }

    #[test]
    fn query_request_defaults_apply() {
        let req: Request =
            wmh_json::from_str(r#"{"op":"query","id":1,"doc":[[0,1.0]]}"#).expect("parse");
        let Request::Query(q) = req else { panic!("expected query") };
        assert_eq!(q.k, DEFAULT_K);
        assert_eq!(q.deadline_us, None);
    }

    #[test]
    fn health_round_trips() {
        let req: Request = wmh_json::from_str(r#"{"op":"health"}"#).expect("parse");
        assert_eq!(req, Request::Health);
        let resp = Response::Health(HealthResponse {
            ready: true,
            indexed: 600,
            shards_total: 4,
            shards_quarantined: 1,
            inflight: 2,
        });
        let back: Response = wmh_json::from_str(&wmh_json::to_string(&resp)).expect("parse");
        assert_eq!(resp, back);
    }

    #[test]
    fn query_response_round_trips_with_outcome_spelling() {
        let resp = Response::Query(QueryResponse {
            id: 9,
            outcome: Outcome::Partial,
            results: vec![(12, 0.875), (40, 0.5)],
            coverage: 0.75,
            shards_total: 4,
            shards_answered: 3,
            shed: 1,
            retry_after_us: 0,
            error: Some("shard 2: injected".to_owned()),
        });
        let text = wmh_json::to_string(&resp);
        assert!(text.contains("\"outcome\":\"partial\""), "{text}");
        let back: Response = wmh_json::from_str(&text).expect("parse");
        assert_eq!(resp, back);
    }

    #[test]
    fn unknown_ops_and_outcomes_are_typed_errors() {
        assert!(wmh_json::from_str::<Request>(r#"{"op":"mystery"}"#).is_err());
        assert!(wmh_json::from_str::<Request>(r#"{"id":1}"#).is_err());
        assert_eq!(Outcome::parse("sideways"), None);
        for outcome in [
            Outcome::Ok,
            Outcome::Partial,
            Outcome::DeadlineExceeded,
            Outcome::Overloaded,
            Outcome::BadRequest,
        ] {
            assert_eq!(Outcome::parse(outcome.as_str()), Some(outcome));
        }
    }
}
