//! Shard workers: one thread per shard, each owning its slice of the
//! banded index plus the packed fingerprints of its points.
//!
//! The inbox is a *bounded* `sync_channel`: the front end uses `try_send`,
//! so a shard that falls behind sheds load explicitly at enqueue time
//! instead of growing an invisible backlog. A shard never answers out of
//! band — every job it dequeues is answered on the job's own reply
//! channel with exactly one [`Slice`], and a reply nobody is waiting for
//! anymore (deadline already served) is dropped by the disconnected
//! channel, not by shard-side bookkeeping.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::deadline::Deadline;
use crate::fingerprint::BbitFingerprint;
use wmh_core::{Sketch, Sketcher};
use wmh_lsh::LshIndex;

/// The runtime-selected sketcher shards are built over.
pub(crate) type DynSketcher = Box<dyn Sketcher + Send + Sync>;

/// What one shard reports back for its slice of a query.
pub(crate) enum SliceOutcome {
    /// Scored candidates, already ranked and truncated to `k`.
    Hits(Vec<(u64, f64)>),
    /// The budget was spent before the shard reached the job. Not a shard
    /// fault: it must not feed quarantine accounting.
    Expired,
    /// A typed shard failure (real or injected) — quarantine accounting
    /// counts these.
    Failed(String),
}

/// One shard's reply.
pub(crate) struct Slice {
    /// Which shard answered.
    pub shard: usize,
    /// Its verdict.
    pub outcome: SliceOutcome,
}

/// A unit of fan-out work.
pub(crate) struct Job {
    /// The query sketch (sketched once at the front).
    pub sketch: Arc<Sketch>,
    /// The query's packed fingerprint (packed once at the front).
    pub fp: Arc<BbitFingerprint>,
    /// Neighbours wanted.
    pub k: usize,
    /// The request's budget.
    pub deadline: Deadline,
    /// Where the slice goes.
    pub reply: Sender<Slice>,
}

/// A running shard: its bounded inbox and its worker thread.
pub(crate) struct Shard {
    /// Bounded inbox; `try_send` failures are explicit sheds.
    pub tx: SyncSender<Job>,
    /// The worker, joined on service drop.
    pub handle: JoinHandle<()>,
}

impl Shard {
    /// Spawn a shard worker over its slice of the index.
    pub fn spawn(
        id: usize,
        index: LshIndex<DynSketcher>,
        fingerprints: HashMap<u64, BbitFingerprint>,
        queue_depth: usize,
    ) -> Result<Self, String> {
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        let handle = std::thread::Builder::new()
            .name(format!("wmh-serve-shard-{id}"))
            .spawn(move || {
                let tag = id.to_string();
                while let Ok(job) = rx.recv() {
                    let outcome = run_query(&tag, &index, &fingerprints, &job);
                    // A receiver that stopped listening (deadline served,
                    // client gone) is not an error the shard can act on.
                    let _ = job.reply.send(Slice { shard: id, outcome });
                }
            })
            .map_err(|e| format!("spawning shard {id} worker: {e}"))?;
        Ok(Self { tx, handle })
    }
}

/// Probe the banded index, re-rank candidates against packed fingerprints.
fn run_query(
    tag: &str,
    index: &LshIndex<DynSketcher>,
    fingerprints: &HashMap<u64, BbitFingerprint>,
    job: &Job,
) -> SliceOutcome {
    if job.deadline.expired() {
        return SliceOutcome::Expired;
    }
    if let Err(fault) = wmh_fault::point!("serve::shard_query", tag) {
        return SliceOutcome::Failed(fault.to_string());
    }
    let ids = match index.candidates_for_sketch(&job.sketch) {
        Ok(ids) => ids,
        Err(e) => return SliceOutcome::Failed(e.to_string()),
    };
    let mut hits = Vec::with_capacity(ids.len());
    for id in ids {
        let Some(fp) = fingerprints.get(&id) else {
            return SliceOutcome::Failed(format!("no fingerprint for candidate {id}"));
        };
        match job.fp.estimate(fp) {
            Ok(est) => hits.push((id, est)),
            Err(e) => return SliceOutcome::Failed(e.to_string()),
        }
    }
    // Deterministic slice order: estimate descending, id ascending — the
    // merge keeps the same rule, so responses are schedule-independent.
    hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    hits.truncate(job.k);
    SliceOutcome::Hits(hits)
}
