//! Shard workers: one thread per shard, each owning its slice of the
//! banded index plus the packed fingerprints of its points.
//!
//! The inbox is a *bounded* `sync_channel`. Queries use `try_send`, so a
//! shard that falls behind sheds load explicitly at enqueue time instead
//! of growing an invisible backlog. Mutations use a blocking `send`: by
//! the time a mutation is dispatched it is already durable in the WAL, so
//! dropping it would desynchronize memory from the log — the worker always
//! drains its inbox, so the wait is bounded by the queue depth.
//!
//! A shard never answers out of band — every job it dequeues is answered
//! on the job's own reply channel with exactly one message, and a reply
//! nobody is waiting for anymore (deadline already served) is dropped by
//! the disconnected channel, not by shard-side bookkeeping.
//!
//! ## Applying mutations
//!
//! The worker owns its index mutably, so applies need no locking: WAL
//! order is per-shard apply order because the front end serializes writes
//! and the inbox is FIFO. A mutation is applied *regardless of its
//! request deadline* — the deadline bounds how long the client waits for
//! the ack, not whether a committed record takes effect; skipping an
//! expired apply would silently fork memory from the log. Injected
//! `serve::apply` faults are transient and retried in-worker under the
//! service's retry policy; exhaustion is reported to the front end, which
//! self-heals by rebuilding the shard from the durable state.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::deadline::Deadline;
use crate::fingerprint::BbitFingerprint;
use wmh_core::{Sketch, Sketcher};
use wmh_fault::supervisor::{supervise, Attempt, CellOutcome, RetryPolicy};
use wmh_lsh::LshIndex;

/// The runtime-selected sketcher shards are built over.
pub(crate) type DynSketcher = Box<dyn Sketcher + Send + Sync>;

/// What one shard reports back for its slice of a query.
pub(crate) enum SliceOutcome {
    /// Scored candidates, already ranked and truncated to `k`.
    Hits(Vec<(u64, f64)>),
    /// The budget was spent before the shard reached the job. Not a shard
    /// fault: it must not feed quarantine accounting.
    Expired,
    /// A typed shard failure (real or injected) — quarantine accounting
    /// counts these.
    Failed(String),
}

/// One shard's reply to a query.
pub(crate) struct Slice {
    /// Which shard answered.
    pub shard: usize,
    /// Its verdict.
    pub outcome: SliceOutcome,
}

/// A query fan-out unit.
pub(crate) struct QueryJob {
    /// The query sketch (sketched once at the front).
    pub sketch: Arc<Sketch>,
    /// The query's packed fingerprint (packed once at the front).
    pub fp: Arc<BbitFingerprint>,
    /// Neighbours wanted.
    pub k: usize,
    /// The request's budget.
    pub deadline: Deadline,
    /// Where the slice goes.
    pub reply: Sender<Slice>,
}

/// A committed mutation, pre-sketched at the front so the worker only
/// touches its own index.
pub(crate) enum ApplyOp {
    /// Index a new point.
    Insert {
        /// The point's id.
        id: u64,
        /// Its sketch.
        sketch: Sketch,
        /// Its packed re-ranking fingerprint.
        fp: BbitFingerprint,
    },
    /// Forget a point.
    Delete {
        /// The point's id.
        id: u64,
    },
    /// Upsert a drifting point's refreshed sketch (insert if absent).
    Upsert {
        /// The point's id.
        id: u64,
        /// Its refreshed sketch.
        sketch: Sketch,
        /// Its refreshed fingerprint.
        fp: BbitFingerprint,
    },
}

/// A mutation apply unit.
pub(crate) struct ApplyJob {
    /// The committed mutation.
    pub op: ApplyOp,
    /// Where the ack goes.
    pub reply: Sender<ApplyAck>,
}

/// The worker's verdict on one apply. (No shard id: the ack channel is
/// per-request, so the sender already knows which shard it asked.)
pub(crate) struct ApplyAck {
    /// `Err` after the in-worker retry budget is exhausted (or the index
    /// rejected the op — a desync the front end repairs by rebuild).
    pub result: Result<(), String>,
}

/// A scrubber's spot-check unit: report the shard's fingerprints for a
/// sample of ids so the front end can compare them with the authoritative
/// mirror. Because the inbox is FIFO and mutations are dispatched before
/// the writer lock is released, an audit enqueued under that lock sees
/// every mutation the mirror has.
pub(crate) struct AuditJob {
    /// The ids to report on.
    pub ids: Vec<u64>,
    /// Where `(id, fingerprint-if-present)` pairs go.
    pub reply: Sender<Vec<(u64, Option<BbitFingerprint>)>>,
}

/// A unit of shard work.
pub(crate) enum Job {
    /// Probe + re-rank.
    Query(QueryJob),
    /// Apply a committed mutation.
    Apply(Box<ApplyJob>),
    /// Report fingerprints for a scrub spot-check.
    Audit(AuditJob),
}

/// A running shard: its bounded inbox and its worker thread.
pub(crate) struct Shard {
    /// Bounded inbox; query `try_send` failures are explicit sheds.
    pub tx: SyncSender<Job>,
    /// The worker, joined on service drop (detached when a re-shard swaps
    /// the fleet — the worker exits on its own once the inbox drains).
    pub handle: JoinHandle<()>,
}

impl Shard {
    /// Spawn a shard worker over its slice of the index.
    pub fn spawn(
        id: usize,
        index: LshIndex<DynSketcher>,
        fingerprints: HashMap<u64, BbitFingerprint>,
        queue_depth: usize,
        retry: RetryPolicy,
        seed: u64,
    ) -> Result<Self, String> {
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        let handle = std::thread::Builder::new()
            .name(format!("wmh-serve-shard-{id}"))
            .spawn(move || {
                let mut index = index;
                let mut fingerprints = fingerprints;
                let tag = id.to_string();
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Query(job) => {
                            let outcome = run_query(&tag, &index, &fingerprints, &job);
                            // A receiver that stopped listening (deadline
                            // served, client gone) is not an error the
                            // shard can act on.
                            let _ = job.reply.send(Slice { shard: id, outcome });
                        }
                        Job::Apply(job) => {
                            let result = run_apply(
                                &retry,
                                seed,
                                &tag,
                                &mut index,
                                &mut fingerprints,
                                &job.op,
                            );
                            let _ = job.reply.send(ApplyAck { result });
                        }
                        Job::Audit(job) => {
                            let report = job
                                .ids
                                .iter()
                                .map(|&id| (id, fingerprints.get(&id).cloned()))
                                .collect();
                            let _ = job.reply.send(report);
                        }
                    }
                }
            })
            .map_err(|e| format!("spawning shard {id} worker: {e}"))?;
        Ok(Self { tx, handle })
    }
}

/// Probe the banded index, re-rank candidates against packed fingerprints.
fn run_query(
    tag: &str,
    index: &LshIndex<DynSketcher>,
    fingerprints: &HashMap<u64, BbitFingerprint>,
    job: &QueryJob,
) -> SliceOutcome {
    if job.deadline.expired() {
        return SliceOutcome::Expired;
    }
    if let Err(fault) = wmh_fault::point!("serve::shard_query", tag) {
        return SliceOutcome::Failed(fault.to_string());
    }
    let ids = match index.candidates_for_sketch(&job.sketch) {
        Ok(ids) => ids,
        Err(e) => return SliceOutcome::Failed(e.to_string()),
    };
    let mut hits = Vec::with_capacity(ids.len());
    for id in ids {
        let Some(fp) = fingerprints.get(&id) else {
            return SliceOutcome::Failed(format!("no fingerprint for candidate {id}"));
        };
        match job.fp.estimate(fp) {
            Ok(est) => hits.push((id, est)),
            Err(e) => return SliceOutcome::Failed(e.to_string()),
        }
    }
    // Deterministic slice order: estimate descending, id ascending — the
    // merge keeps the same rule, so responses are schedule-independent.
    hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    hits.truncate(job.k);
    SliceOutcome::Hits(hits)
}

/// Apply one committed mutation, retrying injected `serve::apply` faults
/// under the retry policy. The index call itself fires at most once per
/// attempt and is atomic (it either takes effect or returns typed).
fn run_apply(
    retry: &RetryPolicy,
    seed: u64,
    tag: &str,
    index: &mut LshIndex<DynSketcher>,
    fingerprints: &mut HashMap<u64, BbitFingerprint>,
    op: &ApplyOp,
) -> Result<(), String> {
    let cell = op_id(op);
    let outcome = supervise(retry, seed, cell, |_| {
        if let Err(fault) = wmh_fault::point!("serve::apply", tag) {
            return Attempt::Transient(fault.to_string());
        }
        Attempt::Done(apply_once(index, fingerprints, op))
    });
    match outcome {
        CellOutcome::Completed(result) => result,
        CellOutcome::TimedOut => Err("apply deadline".into()),
        CellOutcome::Quarantined { attempts, error } => {
            Err(format!("apply failed after {attempts} attempts: {error}"))
        }
    }
}

fn op_id(op: &ApplyOp) -> u64 {
    match *op {
        ApplyOp::Insert { id, .. } | ApplyOp::Delete { id } | ApplyOp::Upsert { id, .. } => id,
    }
}

fn apply_once(
    index: &mut LshIndex<DynSketcher>,
    fingerprints: &mut HashMap<u64, BbitFingerprint>,
    op: &ApplyOp,
) -> Result<(), String> {
    match op {
        ApplyOp::Insert { id, sketch, fp } => {
            index.insert_sketch(*id, sketch.clone()).map_err(|e| e.to_string())?;
            fingerprints.insert(*id, fp.clone());
        }
        ApplyOp::Delete { id } => {
            index.remove_sketch(*id).map_err(|e| e.to_string())?;
            fingerprints.remove(id);
        }
        ApplyOp::Upsert { id, sketch, fp } => {
            if index.contains_id(*id) {
                index.update_sketch(*id, sketch.clone()).map_err(|e| e.to_string())?;
            } else {
                index.insert_sketch(*id, sketch.clone()).map_err(|e| e.to_string())?;
            }
            fingerprints.insert(*id, fp.clone());
        }
    }
    Ok(())
}
