//! Atomic, generation-numbered snapshots of the mutation mirror.
//!
//! A snapshot freezes everything recovery would otherwise reconstruct by
//! replaying the WAL from the cold store: the live id set, the overlay
//! codes of every id whose indexed sketch differs from the store, and the
//! full streaming state of every drifting document. Restoring the mirror
//! from snapshot generation `g` plus the WAL segments at or above `g` is
//! *bit*-identical to replaying the whole log — which is what lets
//! [`crate::wal::Wal::retire_below`] delete the history the snapshot
//! subsumes and keep recovery cost bounded by writes since the last
//! snapshot.
//!
//! ## On-disk format
//!
//! One file per generation, `snap-<generation:016x>.snap`, next to the WAL
//! segments, using the same `[len][payload][crc32c]` framing
//! ([`crate::wal::frame`]) behind its own magic:
//!
//! ```text
//! magic    8 bytes  b"WMHSNAP1"
//! kind 0   header   [gen u64] [seed u64] [D u32] [name_len u32] [name]
//!                   [live u64] [overlays u64] [streams u64]
//! kind 1   live ids [n u32] [n × id u64]          (sorted, chunked)
//! kind 2   overlay  [id u64] [n u32] [n × code u64]
//! kind 3   stream   [id u64] [support u32] [support × (elem u64, w f64 bits)]
//!                   [num_hashes u32] [num_hashes × (tag u8, elem u64, value f64 bits)]
//! kind 255 footer   [live u64] [overlays u64] [streams u64]
//! ```
//!
//! The header binds the snapshot to one `(algorithm, seed, D)` — restoring
//! a mirror over the wrong store would poison every shard, so the binding
//! is a hard error, never a silent skip. The footer is the completeness
//! marker: a torn write cannot produce a footer whose counts match the
//! header, so "last frame is a matching footer" distinguishes a whole
//! snapshot from a truncated one even though every surviving frame passes
//! its CRC. Floats travel as raw IEEE-754 bits (weights sorted by element,
//! ids sorted ascending), so the same mirror always serializes to the same
//! bytes.
//!
//! ## Atomicity
//!
//! [`write`] stages to `<name>.tmp`, fsyncs, renames into place, and
//! fsyncs the directory — the SketchStore discipline — so a crash or an
//! ENOSPC at any point leaves either the complete new generation or no
//! trace of it (the previous generation keeps serving). The failpoints
//! `serve::snapshot_write`, `serve::snapshot_fsync`, and
//! `serve::snapshot_rename` sit immediately before the three syscalls that
//! can tear.
//!
//! ## Fallback
//!
//! [`load_latest`] walks generations newest-first and returns the first
//! snapshot that verifies end-to-end, listing every rejected newer file —
//! a flipped bit in generation `g` silently falls back to `g-1` (whose
//! covering WAL segments are retained by the lag-one retirement policy in
//! [`crate::Service`]), and a directory with no valid snapshot falls back
//! to cold store + full replay when the log still reaches generation 0.

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use wmh_core::extensions::HistoSketchState;

use crate::wal::{
    encode_provenance, frame, injected, next_frame, sync_dir, Reader, WalError, WalProvenance,
};

/// File magic: identifies a wmh-serve snapshot, version 1.
pub const SNAP_MAGIC: [u8; 8] = *b"WMHSNAP1";

/// Live ids per kind-1 frame: keeps frames well under [`crate::wal::MAX_WAL_RECORD`].
const LIVE_CHUNK: usize = 2048;

/// The complete mutation mirror at one generation — everything recovery
/// needs beyond the cold store.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    /// WAL generation this snapshot subsumes: recovery restores this state
    /// and replays segments at generation `>= generation`.
    pub generation: u64,
    /// Every live id, ascending.
    pub live: Vec<u64>,
    /// `(id, codes)` for every id whose indexed sketch differs from the
    /// cold store (inserted after the store was built, or drifted by
    /// stream updates), ascending by id.
    pub overlays: Vec<(u64, Vec<u64>)>,
    /// Full streaming state per drifting id, ascending by id.
    pub streams: Vec<(u64, HistoSketchState)>,
}

/// A snapshot [`load_latest`] settled on.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The restored mirror.
    pub state: SnapshotState,
    /// The file it came from.
    pub path: PathBuf,
    /// Newer snapshot files that failed verification, newest first —
    /// surfaced so callers can log the fallback and the scrubber can
    /// quarantine them.
    pub rejected: Vec<(PathBuf, String)>,
}

/// `snap-<generation:016x>.snap`.
#[must_use]
pub fn snapshot_file_name(gen: u64) -> String {
    format!("snap-{gen:016x}.snap")
}

fn parse_snapshot_gen(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Snapshot files present in `dir`, ascending by generation.
///
/// # Errors
/// [`WalError::Io`] when the directory cannot be read.
pub fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(gen) = entry.file_name().to_str().and_then(parse_snapshot_gen) {
            out.push((gen, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(gen, _)| gen);
    Ok(out)
}

/// Atomically write `state` as generation `state.generation` in `dir`:
/// stage to `<name>.tmp`, fsync, rename into place, fsync the directory.
/// On *any* failure — injected (`serve::snapshot_write`,
/// `serve::snapshot_fsync`, `serve::snapshot_rename`) or real, ENOSPC
/// included — the temp file is removed and the directory is exactly as
/// before: the previous generation keeps serving.
///
/// # Errors
/// [`WalError::Io`] on filesystem failure, [`WalError::TooLarge`] if a
/// single frame exceeds the record cap.
pub fn write(
    dir: &Path,
    provenance: &WalProvenance,
    state: &SnapshotState,
) -> Result<PathBuf, WalError> {
    let name = snapshot_file_name(state.generation);
    let path = dir.join(&name);
    let tmp = dir.join(format!("{name}.tmp"));
    let result = (|| -> Result<(), WalError> {
        let bytes = encode(provenance, state)?;
        let mut file = File::create(&tmp)?;
        injected(wmh_fault::point!("serve::snapshot_write"))?;
        file.write_all(&bytes)?;
        injected(wmh_fault::point!("serve::snapshot_fsync"))?;
        file.sync_all()?;
        drop(file);
        injected(wmh_fault::point!("serve::snapshot_rename"))?;
        std::fs::rename(&tmp, &path)?;
        sync_dir(dir)?;
        Ok(())
    })();
    match result {
        Ok(()) => Ok(path),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Read and fully verify one snapshot file: magic, every frame CRC, the
/// provenance binding, header/footer count agreement, and id ordering.
///
/// # Errors
/// [`WalError::BadMagic`] / [`WalError::Corrupt`] /
/// [`WalError::ProvenanceMismatch`] on damage or a foreign snapshot,
/// [`WalError::Io`] when the file cannot be read.
pub fn read_file(path: &Path, provenance: &WalProvenance) -> Result<SnapshotState, WalError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes, provenance)
}

/// [`read_file`], discarding the state: the scrubber's cheap "is this
/// snapshot still whole?" check.
///
/// # Errors
/// As [`read_file`].
pub fn verify_file(path: &Path, provenance: &WalProvenance) -> Result<(), WalError> {
    read_file(path, provenance).map(drop)
}

/// What [`load_latest`] found: the newest verifying snapshot (if any) and
/// every rejected `(path, reason)` pair walked past while looking.
pub type LoadOutcome = (Option<LoadedSnapshot>, Vec<(PathBuf, String)>);

/// Load the newest snapshot in `dir` that verifies end-to-end, walking
/// generations newest-first. Returns `None` when the directory holds no
/// snapshot at all; a directory where *some* snapshots exist but all fail
/// verification returns `None` with the failures in mind — callers must
/// then check the WAL still reaches generation 0 before cold-replaying
/// (see [`crate::Service`]).
///
/// # Errors
/// [`WalError::ProvenanceMismatch`] the moment any snapshot names a
/// different store — that is a configuration error, not damage, and must
/// not be silently skipped. [`WalError::Io`] when the directory cannot be
/// read.
pub fn load_latest(dir: &Path, provenance: &WalProvenance) -> Result<LoadOutcome, WalError> {
    let mut rejected = Vec::new();
    for (_, path) in list(dir)?.into_iter().rev() {
        match read_file(&path, provenance) {
            Ok(state) => {
                return Ok((
                    Some(LoadedSnapshot { state, path, rejected: rejected.clone() }),
                    rejected,
                ))
            }
            Err(e @ WalError::ProvenanceMismatch { .. }) => return Err(e),
            Err(e) => rejected.push((path, e.to_string())),
        }
    }
    Ok((None, rejected))
}

/// Keep the newest `keep` snapshot files, deleting the rest. Returns how
/// many were removed. The service keeps two: the newest for recovery, the
/// one before it as the fallback a flipped bit in the newest falls back
/// to.
///
/// # Errors
/// [`WalError::Io`] on filesystem failure.
pub fn retain_latest(dir: &Path, keep: usize) -> Result<usize, WalError> {
    let files = list(dir)?;
    let excess = files.len().saturating_sub(keep);
    for (_, path) in &files[..excess] {
        std::fs::remove_file(path)?;
    }
    if excess > 0 {
        sync_dir(dir)?;
    }
    Ok(excess)
}

fn encode(provenance: &WalProvenance, state: &SnapshotState) -> Result<Vec<u8>, WalError> {
    let mut bytes = SNAP_MAGIC.to_vec();
    let mut header = vec![0u8];
    header.extend_from_slice(&state.generation.to_le_bytes());
    // Reuse the WAL provenance layout (seed, D, name) inside the header so
    // the two formats cannot drift apart.
    header.extend_from_slice(&encode_provenance(provenance)[1..]);
    header.extend_from_slice(&(state.live.len() as u64).to_le_bytes());
    header.extend_from_slice(&(state.overlays.len() as u64).to_le_bytes());
    header.extend_from_slice(&(state.streams.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&frame(&header)?);

    for chunk in state.live.chunks(LIVE_CHUNK) {
        let mut payload = vec![1u8];
        payload.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        for id in chunk {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        bytes.extend_from_slice(&frame(&payload)?);
    }
    for (id, codes) in &state.overlays {
        let mut payload = vec![2u8];
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(&(codes.len() as u32).to_le_bytes());
        for c in codes {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        bytes.extend_from_slice(&frame(&payload)?);
    }
    for (id, hs) in &state.streams {
        let mut payload = vec![3u8];
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(&(hs.weights.len() as u32).to_le_bytes());
        for (elem, w) in &hs.weights {
            payload.extend_from_slice(&elem.to_le_bytes());
            payload.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        payload.extend_from_slice(&(hs.slots.len() as u32).to_le_bytes());
        for slot in &hs.slots {
            match slot {
                None => {
                    payload.push(0);
                    payload.extend_from_slice(&0u64.to_le_bytes());
                    payload.extend_from_slice(&0u64.to_le_bytes());
                }
                Some((elem, value)) => {
                    payload.push(1);
                    payload.extend_from_slice(&elem.to_le_bytes());
                    payload.extend_from_slice(&value.to_bits().to_le_bytes());
                }
            }
        }
        bytes.extend_from_slice(&frame(&payload)?);
    }

    let mut footer = vec![255u8];
    footer.extend_from_slice(&(state.live.len() as u64).to_le_bytes());
    footer.extend_from_slice(&(state.overlays.len() as u64).to_le_bytes());
    footer.extend_from_slice(&(state.streams.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&frame(&footer)?);
    Ok(bytes)
}

fn decode(bytes: &[u8], provenance: &WalProvenance) -> Result<SnapshotState, WalError> {
    if bytes.len() < SNAP_MAGIC.len() || bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(WalError::BadMagic);
    }
    let mut at = SNAP_MAGIC.len();
    let head = next_frame(bytes, at)
        .ok_or_else(|| WalError::Corrupt("snapshot header missing or torn".into()))?;
    at = head.end;
    let mut r = Reader::new(head.payload);
    if r.u8()? != 0 {
        return Err(WalError::Corrupt("first frame is not a snapshot header".into()));
    }
    let generation = r.u64()?;
    // Provenance fields mirror the WAL layout (minus its kind byte).
    let seed = r.u64()?;
    let num_hashes = r.u32()? as usize;
    let name_len = r.u32()? as usize;
    let name = r.bytes(name_len)?;
    let algorithm = std::str::from_utf8(name)
        .map_err(|e| WalError::Corrupt(format!("algorithm name not UTF-8: {e}")))?
        .to_owned();
    let got = WalProvenance { algorithm, seed, num_hashes };
    if got != *provenance {
        return Err(WalError::ProvenanceMismatch {
            expected: (provenance.algorithm.clone(), provenance.seed, provenance.num_hashes),
            got: (got.algorithm, got.seed, got.num_hashes),
        });
    }
    let live_count = r.u64()? as usize;
    let overlay_count = r.u64()? as usize;
    let stream_count = r.u64()? as usize;
    r.finish()?;

    let mut state = SnapshotState {
        generation,
        live: Vec::with_capacity(live_count.min(1 << 20)),
        overlays: Vec::with_capacity(overlay_count.min(1 << 16)),
        streams: Vec::with_capacity(stream_count.min(1 << 16)),
    };
    let mut footer_seen = false;
    while let Some(f) = next_frame(bytes, at) {
        if footer_seen {
            return Err(WalError::Corrupt("frames after the snapshot footer".into()));
        }
        at = f.end;
        let mut r = Reader::new(f.payload);
        match r.u8()? {
            1 => {
                let n = r.u32()? as usize;
                for _ in 0..n {
                    state.live.push(r.u64()?);
                }
                r.finish()?;
            }
            2 => {
                let id = r.u64()?;
                let n = r.u32()? as usize;
                let mut codes = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    codes.push(r.u64()?);
                }
                r.finish()?;
                state.overlays.push((id, codes));
            }
            3 => {
                let id = r.u64()?;
                let support = r.u32()? as usize;
                let mut weights = Vec::with_capacity(support.min(1 << 20));
                for _ in 0..support {
                    let elem = r.u64()?;
                    weights.push((elem, f64::from_bits(r.u64()?)));
                }
                let slot_count = r.u32()? as usize;
                let mut slots = Vec::with_capacity(slot_count.min(1 << 16));
                for _ in 0..slot_count {
                    let tag = r.u8()?;
                    let elem = r.u64()?;
                    let value = f64::from_bits(r.u64()?);
                    slots.push(match tag {
                        0 => None,
                        1 => Some((elem, value)),
                        t => {
                            return Err(WalError::Corrupt(format!("unknown slot tag {t}")));
                        }
                    });
                }
                r.finish()?;
                state.streams.push((
                    id,
                    HistoSketchState {
                        seed: provenance.seed,
                        num_hashes: slot_count,
                        weights,
                        slots,
                    },
                ));
            }
            255 => {
                let live = r.u64()? as usize;
                let overlays = r.u64()? as usize;
                let streams = r.u64()? as usize;
                r.finish()?;
                if (live, overlays, streams)
                    != (state.live.len(), state.overlays.len(), state.streams.len())
                {
                    return Err(WalError::Corrupt(format!(
                        "footer counts ({live}/{overlays}/{streams}) disagree with frames \
                         ({}/{}/{})",
                        state.live.len(),
                        state.overlays.len(),
                        state.streams.len()
                    )));
                }
                footer_seen = true;
            }
            kind => return Err(WalError::Corrupt(format!("unknown snapshot frame kind {kind}"))),
        }
    }
    if at != bytes.len() {
        return Err(WalError::Corrupt(format!(
            "snapshot has {} bad trailing bytes",
            bytes.len() - at
        )));
    }
    if !footer_seen {
        return Err(WalError::Corrupt("snapshot footer missing — write was torn".into()));
    }
    if (state.live.len(), state.overlays.len(), state.streams.len())
        != (live_count, overlay_count, stream_count)
    {
        return Err(WalError::Corrupt("header counts disagree with frames".into()));
    }
    if !state.live.windows(2).all(|w| w[0] < w[1]) {
        return Err(WalError::Corrupt("live ids not strictly ascending".into()));
    }
    if !state.overlays.windows(2).all(|w| w[0].0 < w[1].0)
        || !state.streams.windows(2).all(|w| w[0].0 < w[1].0)
    {
        return Err(WalError::Corrupt("overlay/stream ids not strictly ascending".into()));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmh_core::extensions::HistoSketch;

    fn provenance() -> WalProvenance {
        WalProvenance { algorithm: "ICWS".into(), seed: 9, num_hashes: 8 }
    }

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wmh-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn sample(gen: u64) -> SnapshotState {
        let mut hs = HistoSketch::new(9, 8).expect("histosketch");
        hs.decay(0.5).expect("decay");
        hs.add(3, 1.5).expect("add");
        hs.add(17, 0.25).expect("add");
        SnapshotState {
            generation: gen,
            live: vec![1, 5, 9, 1_000 + gen],
            overlays: vec![(5, vec![10, 20, 30]), (9, vec![7; 8])],
            streams: vec![(9, hs.state())],
        }
    }

    #[test]
    fn round_trip_is_bit_exact_and_newest_valid_wins() {
        let d = dir("roundtrip");
        let p = provenance();
        write(&d, &p, &sample(1)).expect("write gen 1");
        write(&d, &p, &sample(4)).expect("write gen 4");
        let state = read_file(&d.join(snapshot_file_name(4)), &p).expect("read");
        assert_eq!(state, sample(4));
        // The stream state reconstructs a working sketch.
        let hs = HistoSketch::from_state(&state.streams[0].1).expect("from_state");
        assert_eq!(hs.state(), sample(4).streams[0].1);
        let (loaded, rejected) = load_latest(&d, &p).expect("load");
        assert_eq!(loaded.expect("some").state.generation, 4);
        assert!(rejected.is_empty());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_newest_falls_back_one_generation() {
        let d = dir("fallback");
        let p = provenance();
        write(&d, &p, &sample(2)).expect("write gen 2");
        let newest = write(&d, &p, &sample(3)).expect("write gen 3");
        let mut bytes = std::fs::read(&newest).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).expect("flip");
        assert!(verify_file(&newest, &p).is_err(), "flip detected");
        let (loaded, rejected) = load_latest(&d, &p).expect("load");
        let loaded = loaded.expect("fallback generation");
        assert_eq!(loaded.state, sample(2), "previous generation restored bit-exactly");
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, newest);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn truncated_snapshot_is_rejected_by_the_footer() {
        let d = dir("torn");
        let p = provenance();
        let path = write(&d, &p, &sample(1)).expect("write");
        let bytes = std::fs::read(&path).expect("read");
        // Drop the footer frame's last byte: every remaining frame still
        // passes its CRC, but the completeness marker is gone.
        std::fs::write(&path, &bytes[..bytes.len() - 1]).expect("truncate");
        match read_file(&path, &p) {
            Err(WalError::Corrupt(_)) => {}
            other => panic!("expected corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn provenance_mismatch_is_a_hard_error_not_a_skip() {
        let d = dir("prov");
        write(&d, &provenance(), &sample(1)).expect("write");
        let other = WalProvenance { algorithm: "ICWS".into(), seed: 10, num_hashes: 8 };
        match load_latest(&d, &other) {
            Err(WalError::ProvenanceMismatch { .. }) => {}
            other => panic!("expected provenance mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn failed_write_leaves_no_trace() {
        let d = dir("enospc");
        let p = provenance();
        write(&d, &p, &sample(1)).expect("write gen 1");
        for point in ["serve::snapshot_write", "serve::snapshot_fsync", "serve::snapshot_rename"] {
            let guard = wmh_fault::scenario(&format!("{point}=always"), 0xC1A05).expect("scenario");
            let err = write(&d, &p, &sample(2)).expect_err("injected failure");
            assert!(matches!(err, WalError::Io(_)), "{err}");
            drop(guard);
            let names: Vec<String> = std::fs::read_dir(&d)
                .expect("ls")
                .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
                .collect();
            assert!(
                !names.iter().any(|n| n.ends_with(".tmp")),
                "temp file swept after {point}: {names:?}"
            );
            assert!(
                !names.iter().any(|n| *n == snapshot_file_name(2)),
                "failed generation must not appear after {point}"
            );
        }
        // The previous generation is untouched and still loads.
        let (loaded, _) = load_latest(&d, &p).expect("load");
        assert_eq!(loaded.expect("some").state, sample(1));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn retain_latest_keeps_the_newest_two() {
        let d = dir("retain");
        let p = provenance();
        for gen in 1..=5 {
            write(&d, &p, &sample(gen)).expect("write");
        }
        assert_eq!(retain_latest(&d, 2).expect("retain"), 3);
        let gens: Vec<u64> = list(&d).expect("list").into_iter().map(|(g, _)| g).collect();
        assert_eq!(gens, vec![4, 5]);
        let _ = std::fs::remove_dir_all(&d);
    }
}
