//! b-bit packed fingerprints for cache-resident candidate re-ranking.
//!
//! Shards keep the full 64-bit sketch codes inside their LSH index for
//! banding, but re-rank candidates against a *packed* copy: the low `b`
//! bits of each of the `D` codes, `⌊64/b⌋` cells per word. At `b = 16` a
//! `D = 128` fingerprint is 256 bytes — four cache lines — so scoring a
//! candidate never touches the full sketch (the 0-bit/b-bit CWS line of
//! the review, applied to serving).
//!
//! Truncation biases the collision fraction upward: unrelated codes still
//! agree on their low `b` bits with probability `2⁻ᵇ`. The estimator
//! debiases exactly as the b-bit MinHash literature does,
//! `Ĵ = (ĉ − 2⁻ᵇ) / (1 − 2⁻ᵇ)`, clamped into `[0, 1]`.

/// Errors from fingerprint construction and comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FingerprintError {
    /// Bit width outside the supported `1..=32` range.
    BadBits(u32),
    /// Compared fingerprints differ in bit width or cell count.
    ShapeMismatch {
        /// `(bits, cells)` of the left-hand fingerprint.
        left: (u32, usize),
        /// `(bits, cells)` of the right-hand fingerprint.
        right: (u32, usize),
    },
}

impl std::fmt::Display for FingerprintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadBits(bits) => write!(f, "fingerprint bit width {bits} outside 1..=32"),
            Self::ShapeMismatch { left, right } => write!(
                f,
                "fingerprint shape mismatch: {}x{} cells vs {}x{} cells",
                left.0, left.1, right.0, right.1
            ),
        }
    }
}

impl std::error::Error for FingerprintError {}

/// The low `b` bits of each sketch code, densely packed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbitFingerprint {
    bits: u32,
    cells: usize,
    words: Vec<u64>,
}

impl BbitFingerprint {
    /// Pack the low `bits` bits of each code.
    ///
    /// # Errors
    /// [`FingerprintError::BadBits`] when `bits` is outside `1..=32`.
    pub fn pack(codes: &[u64], bits: u32) -> Result<Self, FingerprintError> {
        if !(1..=32).contains(&bits) {
            return Err(FingerprintError::BadBits(bits));
        }
        let per_word = (64 / bits) as usize;
        let mask = (1u64 << bits) - 1;
        let mut words = vec![0u64; codes.len().div_ceil(per_word)];
        for (j, &code) in codes.iter().enumerate() {
            words[j / per_word] |= (code & mask) << ((j % per_word) as u32 * bits);
        }
        Ok(Self { bits, cells: codes.len(), words })
    }

    /// Bit width `b` per cell.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of packed cells (the sketch length `D`).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Packed size in bytes — what a shard actually keeps hot per point.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Number of cells on which the two fingerprints agree.
    fn matches(&self, other: &Self) -> usize {
        let per_word = (64 / self.bits) as usize;
        let mask = (1u64 << self.bits) - 1;
        let mut matches = 0usize;
        for j in 0..self.cells {
            let shift = (j % per_word) as u32 * self.bits;
            let a = (self.words[j / per_word] >> shift) & mask;
            let b = (other.words[j / per_word] >> shift) & mask;
            matches += usize::from(a == b);
        }
        matches
    }

    /// Debiased similarity estimate from b-bit collisions:
    /// `Ĵ = (ĉ − 2⁻ᵇ) / (1 − 2⁻ᵇ)`, clamped to `[0, 1]`.
    ///
    /// # Errors
    /// [`FingerprintError::ShapeMismatch`] when widths or cell counts
    /// differ — comparing such fingerprints would be silently meaningless.
    pub fn estimate(&self, other: &Self) -> Result<f64, FingerprintError> {
        if self.bits != other.bits || self.cells != other.cells {
            return Err(FingerprintError::ShapeMismatch {
                left: (self.bits, self.cells),
                right: (other.bits, other.cells),
            });
        }
        if self.cells == 0 {
            return Ok(0.0);
        }
        let c_hat = self.matches(other) as f64 / self.cells as f64;
        let floor = 0.5f64.powi(self.bits as i32);
        Ok(((c_hat - floor) / (1.0 - floor)).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_codes_estimate_one() {
        let codes: Vec<u64> = (0..128).map(|i| i * 0x9E37_79B9).collect();
        for bits in [1, 4, 8, 16, 32] {
            let fp = BbitFingerprint::pack(&codes, bits).expect("pack");
            assert_eq!(fp.estimate(&fp), Ok(1.0), "b={bits}");
        }
    }

    #[test]
    fn disjoint_codes_estimate_near_zero() {
        // Pseudo-random unrelated codes: raw collision fraction ≈ 2⁻ᵇ, so
        // the debiased estimate must sit near zero, not near 2⁻ᵇ.
        let mix = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        let a: Vec<u64> = (0..4096u64).map(mix).collect();
        let b: Vec<u64> = (0..4096u64).map(|i| mix(i + 1_000_000)).collect();
        for bits in [4, 8, 16] {
            let fa = BbitFingerprint::pack(&a, bits).expect("pack");
            let fb = BbitFingerprint::pack(&b, bits).expect("pack");
            let est = fa.estimate(&fb).expect("estimate");
            assert!(est < 0.05, "b={bits}: debiased estimate {est} too large");
        }
    }

    #[test]
    fn only_low_bits_matter() {
        let a: Vec<u64> = (0..64).collect();
        let b: Vec<u64> = a.iter().map(|&x| x | 0xFFFF_0000_0000_0000).collect();
        let fa = BbitFingerprint::pack(&a, 8).expect("pack");
        let fb = BbitFingerprint::pack(&b, 8).expect("pack");
        assert_eq!(fa.estimate(&fb), Ok(1.0), "high bits must be ignored");
    }

    #[test]
    fn packing_is_dense() {
        let codes = vec![0u64; 128];
        let fp = BbitFingerprint::pack(&codes, 16).expect("pack");
        assert_eq!(fp.bytes(), 128 * 2);
        assert_eq!(fp.cells(), 128);
        assert_eq!(fp.bits(), 16);
    }

    #[test]
    fn bad_bits_and_shape_mismatch_are_typed() {
        assert_eq!(BbitFingerprint::pack(&[1], 0), Err(FingerprintError::BadBits(0)));
        assert_eq!(BbitFingerprint::pack(&[1], 33), Err(FingerprintError::BadBits(33)));
        let a = BbitFingerprint::pack(&[1, 2, 3], 8).expect("pack");
        let b = BbitFingerprint::pack(&[1, 2], 8).expect("pack");
        let c = BbitFingerprint::pack(&[1, 2, 3], 4).expect("pack");
        assert!(matches!(a.estimate(&b), Err(FingerprintError::ShapeMismatch { .. })));
        assert!(matches!(a.estimate(&c), Err(FingerprintError::ShapeMismatch { .. })));
    }

    #[test]
    fn empty_fingerprint_estimates_zero() {
        let e = BbitFingerprint::pack(&[], 8).expect("pack");
        assert_eq!(e.estimate(&e), Ok(0.0));
    }
}
