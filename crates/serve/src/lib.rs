//! # `wmh-serve` — sharded similarity search with a robustness envelope
//!
//! A dependency-free similarity-search service over the weighted MinHash
//! toolbox: sketches are ingested in batches from a CRC'd
//! [`wmh_core::SketchStore`] into one banded [`wmh_lsh::LshIndex`] per
//! shard, candidates are re-ranked against b-bit-packed fingerprints that
//! stay cache-resident, and a length-prefixed-TCP front end speaks a small
//! JSON protocol.
//!
//! The headline is not the lookup — it is the *robustness envelope* around
//! it. Every request terminates with a **typed outcome**, never a silent
//! drop and never a panic:
//!
//! * **Deadline propagation.** A per-request budget (`deadline_us`) is
//!   fixed at admission and carried through sketching, shard fan-out, and
//!   merge. A shard that misses its slice does not block the merge; the
//!   response degrades to [`protocol::Outcome::Partial`] with an explicit
//!   coverage fraction.
//! * **Backpressure.** Shard inboxes are bounded queues; a full inbox
//!   sheds that slice explicitly (counted in the response). A global
//!   in-flight cap rejects at admission with
//!   [`protocol::Outcome::Overloaded`] and a seeded-deterministic
//!   `retry_after_us` computed by the same
//!   [`wmh_fault::supervisor::RetryPolicy`] backoff the sweep engine uses.
//! * **Graceful degradation.** A shard failing
//!   [`service::ServiceConfig::quarantine_after`] consecutive queries is
//!   quarantined; the service keeps answering from the healthy shards and
//!   half-open-probes the quarantined one until it recovers. Health and
//!   readiness are observable over the wire.
//! * **Crash-safe live mutation.** Services opened over a write-ahead log
//!   ([`Service::open`](service::Service::open)) accept typed `insert` /
//!   `delete` / `stream` ops: every mutation commits to the CRC-32C-framed
//!   [`wal`] *before* touching any index, so a SIGKILL at any point replays
//!   byte-identical to the acknowledged state. Streaming updates drive
//!   per-id HistoSketch gradual forgetting; id-skew triggers a background
//!   re-shard that serves degraded-but-correct behind quarantine and
//!   converges byte-identical to a from-scratch partition; a write path
//!   that cannot log degrades to a typed `read_only`, never a lie.
//!
//! Failure paths are exercised, not hoped for: `wmh_fault::point!` sites
//! thread through ingest (`serve::ingest`), shard queries
//! (`serve::shard_query`, tagged by shard id), admission
//! (`serve::admission`), merge (`serve::merge`), and the whole mutation
//! commit path (`serve::wal_append`, `serve::wal_fsync`, `serve::apply`,
//! `serve::reshard`); the crate's chaos soaks drive the closed-loop
//! [`loadgen`] and the kill-resume/mutation scripts under injected faults,
//! asserting that outcome counts always sum to requests issued and that
//! recovery — quarantine repair, WAL replay, shard self-heal, re-shard —
//! is byte-identical to never having failed.

pub mod client;
pub mod deadline;
pub mod fingerprint;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod service;
mod shard;
pub mod wal;
pub mod wire;

pub use client::{Client, ClientError};
pub use deadline::Deadline;
pub use fingerprint::{BbitFingerprint, FingerprintError};
pub use loadgen::{LoadConfig, LoadReport, LOAD_SCHEMA_VERSION};
pub use protocol::{
    HealthResponse, MutationKind, MutationRequest, MutationResponse, Outcome, QueryRequest,
    QueryResponse, Request, Response,
};
pub use server::{Server, ServerError};
pub use service::{ReshardReport, Service, ServiceConfig, ServiceError};
pub use wal::{Mutation, ReplayReport, Wal, WalError, WalProvenance};
pub use wire::{read_frame, write_frame, WireError, MAX_FRAME};
