//! # `wmh-serve` — sharded similarity search with a robustness envelope
//!
//! A dependency-free similarity-search service over the weighted MinHash
//! toolbox: sketches are ingested in batches from a CRC'd
//! [`wmh_core::SketchStore`] into one banded [`wmh_lsh::LshIndex`] per
//! shard, candidates are re-ranked against b-bit-packed fingerprints that
//! stay cache-resident, and a length-prefixed-TCP front end speaks a small
//! JSON protocol.
//!
//! The headline is not the lookup — it is the *robustness envelope* around
//! it. Every request terminates with a **typed outcome**, never a silent
//! drop and never a panic:
//!
//! * **Deadline propagation.** A per-request budget (`deadline_us`) is
//!   fixed at admission and carried through sketching, shard fan-out, and
//!   merge. A shard that misses its slice does not block the merge; the
//!   response degrades to [`protocol::Outcome::Partial`] with an explicit
//!   coverage fraction.
//! * **Backpressure.** Shard inboxes are bounded queues; a full inbox
//!   sheds that slice explicitly (counted in the response). A global
//!   in-flight cap rejects at admission with
//!   [`protocol::Outcome::Overloaded`] and a seeded-deterministic
//!   `retry_after_us` computed by the same
//!   [`wmh_fault::supervisor::RetryPolicy`] backoff the sweep engine uses.
//! * **Graceful degradation.** A shard failing
//!   [`service::ServiceConfig::quarantine_after`] consecutive queries is
//!   quarantined; the service keeps answering from the healthy shards and
//!   half-open-probes the quarantined one until it recovers. Health and
//!   readiness are observable over the wire.
//! * **Crash-safe live mutation.** Services opened over a write-ahead log
//!   ([`Service::open`](service::Service::open)) accept typed `insert` /
//!   `delete` / `stream` ops: every mutation commits to the CRC-32C-framed
//!   [`wal`] *before* touching any index, so a SIGKILL at any point replays
//!   byte-identical to the acknowledged state. Streaming updates drive
//!   per-id HistoSketch gradual forgetting; id-skew triggers a background
//!   re-shard that serves degraded-but-correct behind quarantine and
//!   converges byte-identical to a from-scratch partition; a write path
//!   that cannot log degrades to a typed `read_only`, never a lie.
//! * **Durability lifecycle.** The log is a directory of
//!   generation-numbered segments. [`Service::snapshot`](service::Service::snapshot)
//!   atomically freezes the mutation mirror ([`snapshot`]), rotates the
//!   log, and retires segments the second-newest snapshot subsumes —
//!   recovery replays only writes since the last snapshot, and a flipped
//!   bit in the newest snapshot falls back one generation. A background
//!   [`scrub`] re-verifies every durable CRC and spot-checks shard memory
//!   against the mirror, quarantining and self-healing what disagrees.
//!   And a WAL append failure trips a half-open write [`gate`] instead of
//!   a sticky read-only latch: deterministic probe appends re-admit
//!   writes the moment the disk recovers.
//!
//! Failure paths are exercised, not hoped for: `wmh_fault::point!` sites
//! thread through ingest (`serve::ingest`), shard queries
//! (`serve::shard_query`, tagged by shard id), admission
//! (`serve::admission`), merge (`serve::merge`), the whole mutation
//! commit path (`serve::wal_append`, `serve::wal_fsync`, `serve::apply`,
//! `serve::reshard`), and the durability lifecycle (`serve::wal_rotate`,
//! `serve::wal_replay` tagged by generation, `serve::snapshot_write`,
//! `serve::snapshot_fsync`, `serve::snapshot_rename`, `serve::scrub`,
//! `serve::scrub_audit` tagged by shard id); the crate's chaos soaks
//! drive the closed-loop [`loadgen`] and the kill-resume/mutation/snapshot
//! scripts under injected faults, asserting that outcome counts always
//! sum to requests issued and that recovery — quarantine repair, WAL
//! replay, snapshot restore, shard self-heal, re-shard — is
//! byte-identical to never having failed.

pub mod client;
pub mod deadline;
pub mod fingerprint;
pub mod gate;
pub mod loadgen;
pub mod protocol;
pub mod scrub;
pub mod server;
pub mod service;
mod shard;
pub mod snapshot;
pub mod wal;
pub mod wire;

pub use client::{Client, ClientError};
pub use deadline::Deadline;
pub use fingerprint::{BbitFingerprint, FingerprintError};
pub use gate::{WriteAdmission, WriteGate};
pub use loadgen::{LoadConfig, LoadReport, LOAD_SCHEMA_VERSION};
pub use protocol::{
    HealthResponse, MutationKind, MutationRequest, MutationResponse, Outcome, QueryRequest,
    QueryResponse, Request, Response,
};
pub use scrub::{spawn_scrubber, ScrubReport, Scrubber};
pub use server::{Server, ServerError};
pub use service::{RecoveryInfo, ReshardReport, Service, ServiceConfig, ServiceError};
pub use snapshot::{LoadedSnapshot, SnapshotState};
pub use wal::{
    Mutation, ReplayReport, SegmentInfo, SegmentReport, Wal, WalError, WalInfo, WalProvenance,
};
pub use wire::{read_frame, write_frame, WireError, MAX_FRAME};

/// Schema version stamped into `results/BENCH_serve_recovery.json` by the
/// `recovery-bench` CLI verb (pinned by `wmh-perf`'s schema registry).
pub const RECOVERY_SCHEMA_VERSION: &str = "wmh-serve-recovery/v1";
