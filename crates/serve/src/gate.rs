//! The write gate: half-open admission for the durable write path.
//!
//! When a durable WAL append exhausts its retry budget the service used to
//! latch a `read_only` flag that nothing ever cleared — one transient disk
//! fault (a full disk later freed, a hiccuping volume) left the service
//! permanently read-only until a restart. The gate replaces that latch
//! with the same half-open discipline shard quarantine uses:
//!
//! * **open** — writes are admitted normally;
//! * **tripped** — writes are rejected *fast* (with a backoff hint) so a
//!   broken disk is not hammered with doomed fsyncs, **except** that every
//!   `probe_every`-th rejected attempt is admitted as a *probe*: it runs
//!   the real durable append, and if that succeeds the fault has cleared —
//!   the probe's own mutation commits and the gate re-opens.
//!
//! The probe is the caller's real write, not a synthetic one: a successful
//! probe has already paid for a durable append, so it would be absurd to
//! throw the evidence away and ask the client to retry. The cadence is a
//! deterministic counter, not a timer — under a pinned fault seed the
//! exact attempt on which the service recovers is reproducible, which is
//! what the soak tests pin.
//!
//! The gate is deliberately dumb: it neither performs I/O nor knows *why*
//! it tripped. The service trips it on append exhaustion and restores it
//! when a probe append succeeds, so the gate can be tested exhaustively as
//! a standalone state machine.

use std::sync::Mutex;

/// What the gate says about one write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAdmission {
    /// The gate is open: proceed normally.
    Open,
    /// The gate is tripped, but this attempt is the periodic probe:
    /// proceed with the real durable append, and report the result back
    /// via [`WriteGate::restore`] (success) or nothing (failure — the gate
    /// stays tripped).
    Probe,
    /// The gate is tripped: reject without touching the disk.
    Reject,
}

#[derive(Debug)]
struct GateInner {
    open: bool,
    trips: u64,
    rejected_since_trip: u64,
}

/// The half-open write gate (see the module docs).
#[derive(Debug)]
pub struct WriteGate {
    inner: Mutex<GateInner>,
    probe_every: u64,
}

impl WriteGate {
    /// A gate that probes on every `probe_every`-th rejected attempt
    /// (clamped to at least 1: a zero cadence would mean "never probe",
    /// which is the sticky latch this type exists to delete).
    #[must_use]
    pub fn new(probe_every: usize) -> Self {
        Self {
            inner: Mutex::new(GateInner { open: true, trips: 0, rejected_since_trip: 0 }),
            probe_every: (probe_every as u64).max(1),
        }
    }

    /// Classify one write attempt.
    pub fn admit(&self) -> WriteAdmission {
        let mut g = self.lock();
        if g.open {
            return WriteAdmission::Open;
        }
        g.rejected_since_trip += 1;
        if g.rejected_since_trip.is_multiple_of(self.probe_every) {
            WriteAdmission::Probe
        } else {
            WriteAdmission::Reject
        }
    }

    /// Trip the gate: the durable write path just exhausted its retries.
    /// Idempotent — re-tripping an already-tripped gate is not a new trip.
    pub fn trip(&self) {
        let mut g = self.lock();
        if g.open {
            g.open = false;
            g.trips += 1;
            g.rejected_since_trip = 0;
        }
    }

    /// Re-open the gate: a probe append succeeded, the fault has cleared.
    pub fn restore(&self) {
        let mut g = self.lock();
        g.open = true;
        g.rejected_since_trip = 0;
    }

    /// Whether writes are currently admitted normally.
    pub fn is_open(&self) -> bool {
        self.lock().open
    }

    /// How many times the gate has tripped since construction.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateInner> {
        // The gate holds no invariants a panic could half-apply.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_gate_admits_everything() {
        let gate = WriteGate::new(4);
        assert!(gate.is_open());
        for _ in 0..100 {
            assert_eq!(gate.admit(), WriteAdmission::Open);
        }
        assert_eq!(gate.trips(), 0);
    }

    #[test]
    fn tripped_gate_probes_on_a_deterministic_cadence() {
        let gate = WriteGate::new(4);
        gate.trip();
        assert!(!gate.is_open());
        let admissions: Vec<WriteAdmission> = (0..8).map(|_| gate.admit()).collect();
        assert_eq!(
            admissions,
            vec![
                WriteAdmission::Reject,
                WriteAdmission::Reject,
                WriteAdmission::Reject,
                WriteAdmission::Probe,
                WriteAdmission::Reject,
                WriteAdmission::Reject,
                WriteAdmission::Reject,
                WriteAdmission::Probe,
            ]
        );
    }

    #[test]
    fn restore_reopens_and_resets_the_cadence() {
        let gate = WriteGate::new(3);
        gate.trip();
        assert_eq!(gate.admit(), WriteAdmission::Reject);
        gate.restore();
        assert!(gate.is_open());
        assert_eq!(gate.admit(), WriteAdmission::Open);
        // A fresh trip starts the cadence over.
        gate.trip();
        assert_eq!(gate.admit(), WriteAdmission::Reject);
        assert_eq!(gate.admit(), WriteAdmission::Reject);
        assert_eq!(gate.admit(), WriteAdmission::Probe);
        assert_eq!(gate.trips(), 2);
    }

    #[test]
    fn retrip_while_tripped_is_not_a_new_trip() {
        let gate = WriteGate::new(2);
        gate.trip();
        gate.trip();
        gate.trip();
        assert_eq!(gate.trips(), 1);
        // Cadence was not reset by the redundant trips.
        assert_eq!(gate.admit(), WriteAdmission::Reject);
        assert_eq!(gate.admit(), WriteAdmission::Probe);
    }

    #[test]
    fn probe_every_one_probes_immediately() {
        let gate = WriteGate::new(1);
        gate.trip();
        assert_eq!(gate.admit(), WriteAdmission::Probe);
        assert_eq!(gate.admit(), WriteAdmission::Probe);
    }

    #[test]
    fn zero_cadence_is_clamped_not_sticky() {
        let gate = WriteGate::new(0);
        gate.trip();
        assert_eq!(gate.admit(), WriteAdmission::Probe, "a gate must always probe eventually");
    }
}
