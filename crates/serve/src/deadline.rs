//! Request deadlines: a wall-clock budget fixed once at admission and
//! propagated by value through sketching, shard fan-out, and merge.
//!
//! The budget travels as an absolute expiry instant, so every layer that
//! checks it — the front end before fan-out, each shard before probing its
//! index, the merge loop sizing its `recv_timeout` — measures against the
//! *same* clock reading taken at admission. There is no per-hop budget
//! arithmetic to drift, and an expired deadline is expired everywhere at
//! once.

use std::time::{Duration, Instant};

/// An absolute point in time after which a request's work is worthless.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    /// `None` means unbounded (administrative requests, health probes).
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    #[must_use]
    pub fn unbounded() -> Self {
        Self { at: None }
    }

    /// Expire `budget` from now. A zero budget is already expired — the
    /// deterministic way to force a `DeadlineExceeded` outcome. A budget
    /// too large to represent saturates to unbounded.
    #[must_use]
    pub fn after(budget: Duration) -> Self {
        Self { at: Instant::now().checked_add(budget) }
    }

    /// Time left before expiry; `None` when unbounded.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Whether the budget is spent. Unbounded deadlines never expire.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.remaining().is_some_and(|left| left.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::unbounded();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_is_already_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_has_time_remaining() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().is_some_and(|left| left > Duration::from_secs(3000)));
    }

    #[test]
    fn overflowing_budget_saturates_to_unbounded() {
        let d = Deadline::after(Duration::MAX);
        assert!(!d.expired());
    }
}
