//! `wmh-serve` — CLI for the sharded similarity-search service.
//!
//! ```text
//! wmh-serve smoke [--quick]
//! wmh-serve load  --out results/BENCH_serve_load.json [--requests N] [--concurrency C]
//!                 [--docs N] [--shards S] [--k K] [--deadline-us U] [--seed X]
//! wmh-serve check-report <path>
//! wmh-serve serve --store sketches.bin [--addr 127.0.0.1:7878]
//! ```
//!
//! * `smoke` — CI's end-to-end gate: a loopback server answering typed
//!   outcomes for a healthy query, a forced deadline miss, a forced
//!   overload, and a bad request.
//! * `load` — the closed-loop load generator over a Table-4 medium corpus
//!   (`Syn3E0.24S`, scaled preserving pairwise overlap); writes the
//!   `wmh-serve-load/v1` report the perf gate checks.
//! * `check-report` — validate a report file's schema and arithmetic
//!   invariants (outcome counts must sum to requests issued).
//! * `serve` — run a real server over a saved sketch store.

use std::process::ExitCode;
use std::sync::Arc;

use wmh_core::{SketchStore, Sketcher};
use wmh_data::PAPER_DATASETS;
use wmh_serve::{
    loadgen, Client, LoadConfig, LoadReport, Outcome, QueryRequest, Server, Service, ServiceConfig,
};
use wmh_sets::WeightedSet;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  wmh-serve smoke [--quick]\n  wmh-serve load --out FILE [--requests N] [--concurrency C] [--docs N]\n                 [--shards S] [--k K] [--deadline-us U] [--seed X]\n  wmh-serve check-report FILE\n  wmh-serve serve --store FILE [--addr 127.0.0.1:7878]"
        .to_owned()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let flag = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let num = |name: &str, default: u64| -> Result<u64, String> {
        flag(name).map_or(Ok(default), |raw| {
            raw.parse().map_err(|e| format!("invalid {name} {raw:?}: {e}"))
        })
    };
    match cmd.as_str() {
        "smoke" => smoke(args.iter().any(|a| a == "--quick")),
        "load" => {
            let out = flag("--out").ok_or_else(|| format!("missing --out\n{}", usage()))?;
            load(
                &out,
                num("--requests", 2000)? as usize,
                num("--concurrency", 4)? as usize,
                num("--docs", 600)? as usize,
                num("--shards", 4)? as usize,
                num("--k", 10)? as usize,
                num("--deadline-us", 20_000)?,
                num("--seed", 42)?,
            )
        }
        "check-report" => {
            let path = args.get(1).ok_or_else(|| format!("missing FILE\n{}", usage()))?;
            check_report(path)
        }
        "serve" => {
            let store = flag("--store").ok_or_else(|| format!("missing --store\n{}", usage()))?;
            let addr = flag("--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
            serve(&store, &addr)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// The Table-4 medium corpus (`Syn3E0.24S`), scaled down preserving the
/// expected pairwise overlap so similarity estimates stay in the paper's
/// regime.
fn corpus(docs: usize, seed: u64) -> Result<(String, Vec<WeightedSet>), String> {
    let config = PAPER_DATASETS[2].scaled_down_preserving_overlap(docs, 20_000);
    let dataset = config.generate(seed)?;
    Ok((dataset.name, dataset.docs))
}

/// Sketch every document with catalog ICWS and fill a store.
fn build_store(docs: &[WeightedSet], seed: u64) -> Result<SketchStore, String> {
    let sketcher = wmh_core::cws::Icws::new(seed, 128);
    let mut store = SketchStore::new();
    for (id, doc) in docs.iter().enumerate() {
        let sketch = sketcher.sketch(doc).map_err(|e| format!("sketching doc {id}: {e}"))?;
        store.insert(id as u64, &sketch).map_err(|e| format!("storing doc {id}: {e}"))?;
    }
    Ok(store)
}

fn pairs_of(doc: &WeightedSet) -> Vec<(u64, f64)> {
    doc.iter().collect()
}

fn expect(step: &str, ok: bool, detail: String) -> Result<(), String> {
    if ok {
        println!("smoke: {step}: ok");
        Ok(())
    } else {
        Err(format!("smoke: {step}: FAILED — {detail}"))
    }
}

/// End-to-end smoke over a loopback port: every outcome class must be
/// reachable and typed.
fn smoke(quick: bool) -> Result<(), String> {
    let docs_n = if quick { 60 } else { 240 };
    let (name, docs) = corpus(docs_n, 42)?;
    let store = build_store(&docs, 42)?;
    let config = ServiceConfig { shards: 4, ..ServiceConfig::default() };
    let service = Arc::new(Service::from_store(&store, config).map_err(|e| format!("build: {e}"))?);
    let server =
        Server::spawn(Arc::clone(&service), "127.0.0.1:0").map_err(|e| format!("spawn: {e}"))?;
    let mut client = Client::connect(server.addr()).map_err(|e| format!("connect: {e}"))?;
    println!("smoke: serving {docs_n} docs of {name} on {}", server.addr());

    let health = client.health().map_err(|e| format!("health: {e}"))?;
    expect(
        "health",
        health.ready && health.indexed == docs_n && health.shards_quarantined == 0,
        format!("{health:?}"),
    )?;

    let ok = client
        .query(&QueryRequest { id: 1, doc: pairs_of(&docs[0]), k: 5, deadline_us: Some(2_000_000) })
        .map_err(|e| format!("query: {e}"))?;
    expect(
        "ok outcome",
        ok.outcome == Outcome::Ok
            && ok.results.first().is_some_and(|&(id, est)| id == 0 && est == 1.0)
            && (ok.coverage - 1.0).abs() < f64::EPSILON,
        format!("{ok:?}"),
    )?;

    let miss = client
        .query(&QueryRequest { id: 2, doc: pairs_of(&docs[1]), k: 5, deadline_us: Some(0) })
        .map_err(|e| format!("query: {e}"))?;
    expect(
        "forced deadline miss",
        miss.outcome == Outcome::DeadlineExceeded && miss.results.is_empty(),
        format!("{miss:?}"),
    )?;

    let bad = client
        .query(&QueryRequest { id: 3, doc: Vec::new(), k: 5, deadline_us: None })
        .map_err(|e| format!("query: {e}"))?;
    expect(
        "bad request",
        bad.outcome == Outcome::BadRequest && bad.error.is_some(),
        format!("{bad:?}"),
    )?;

    // A zero-capacity twin forces the admission path deterministically.
    let choked_config = ServiceConfig { shards: 2, max_inflight: 0, ..ServiceConfig::default() };
    let choked = Arc::new(
        Service::from_store(&store, choked_config).map_err(|e| format!("build choked: {e}"))?,
    );
    let choked_server = Server::spawn(Arc::clone(&choked), "127.0.0.1:0")
        .map_err(|e| format!("spawn choked: {e}"))?;
    let mut choked_client =
        Client::connect(choked_server.addr()).map_err(|e| format!("connect choked: {e}"))?;
    let over = choked_client
        .query(&QueryRequest { id: 4, doc: pairs_of(&docs[2]), k: 5, deadline_us: None })
        .map_err(|e| format!("query choked: {e}"))?;
    expect(
        "forced overload",
        over.outcome == Outcome::Overloaded && over.retry_after_us > 0,
        format!("{over:?}"),
    )?;

    println!("smoke: all outcomes typed — pass");
    Ok(())
}

/// Run the closed-loop load generator and write the report.
#[allow(clippy::too_many_arguments)]
fn load(
    out: &str,
    requests: usize,
    concurrency: usize,
    docs_n: usize,
    shards: usize,
    k: usize,
    deadline_us: u64,
    seed: u64,
) -> Result<(), String> {
    let (name, docs) = corpus(docs_n, seed)?;
    let store = build_store(&docs, seed)?;
    let config = ServiceConfig { shards, seed, ..ServiceConfig::default() };
    let service = Service::from_store(&store, config).map_err(|e| format!("build: {e}"))?;
    let query_docs: Vec<Vec<(u64, f64)>> = docs.iter().map(pairs_of).collect();
    let load_config = LoadConfig { requests, concurrency, k, deadline_us };
    let report = loadgen::run(&service, &name, &query_docs, &load_config);
    report.validate()?;
    let mut text = wmh_json::to_string_pretty(&report);
    text.push('\n');
    std::fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "load: {} requests over {name} ({} docs, {} shards): {:.0} req/s, \
         p50 {}us p99 {}us, ok {} partial {} deadline {} overloaded {} — wrote {out}",
        report.requests,
        report.docs,
        report.shards,
        report.throughput_rps,
        report.p50_us,
        report.p99_us,
        report.ok,
        report.partial,
        report.deadline_exceeded,
        report.overloaded,
    );
    Ok(())
}

/// Validate a load report file: schema shape plus arithmetic invariants.
fn check_report(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report: LoadReport =
        wmh_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    report.validate().map_err(|e| format!("{path}: {e}"))?;
    println!("check-report: {path}: valid {}", report.schema);
    Ok(())
}

/// Serve a saved sketch store until killed.
fn serve(store_path: &str, addr: &str) -> Result<(), String> {
    let store = SketchStore::load_from_path(std::path::Path::new(store_path))
        .map_err(|e| format!("loading {store_path}: {e}"))?;
    let service = Arc::new(
        Service::from_store(&store, ServiceConfig::default()).map_err(|e| format!("build: {e}"))?,
    );
    let indexed = service.health().indexed;
    let server = Server::spawn(service, addr).map_err(|e| format!("spawn: {e}"))?;
    println!("serving {indexed} sketches from {store_path} on {}", server.addr());
    loop {
        std::thread::park();
    }
}
