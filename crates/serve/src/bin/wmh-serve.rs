//! `wmh-serve` — CLI for the sharded similarity-search service.
//!
//! ```text
//! wmh-serve smoke [--quick]
//! wmh-serve load  --out results/BENCH_serve_load.json [--requests N] [--concurrency C]
//!                 [--docs N] [--shards S] [--k K] [--deadline-us U] [--seed X]
//!                 [--write-every W]
//! wmh-serve mutation-soak [--quick]
//! wmh-serve recovery-bench --out results/BENCH_serve_recovery.json [--quick]
//! wmh-serve check-report <path>
//! wmh-serve wal-info <dir>
//! wmh-serve snapshot --store sketches.bin --wal DIR
//! wmh-serve serve --store sketches.bin [--addr 127.0.0.1:7878] [--wal DIR]
//!                 [--snapshot-every N] [--scrub-every-secs S]
//! ```
//!
//! * `smoke` — CI's end-to-end gate: a loopback server answering typed
//!   outcomes for a healthy query, a forced deadline miss, a forced
//!   overload, a bad request, and a mutation against a read-only service.
//! * `load` — the closed-loop load generator over a Table-4 medium corpus
//!   (`Syn3E0.24S`, scaled preserving pairwise overlap); writes the
//!   `wmh-serve-load/v1` report the perf gate checks. `--write-every W`
//!   mixes a mutation (insert → stream → delete cycle) into every Wth
//!   request, served over a temporary write-ahead log.
//! * `mutation-soak` — CI's live-mutation gate: drives the whole mutation
//!   surface over the wire against a WAL-backed loopback server, then
//!   proves kill-resume recovery and a live re-shard byte-identical to
//!   from-scratch builds.
//! * `recovery-bench` — measure reopen (recovery) time with and without a
//!   snapshot at several write counts; writes the `wmh-serve-recovery/v1`
//!   report the perf gate checks.
//! * `check-report` — validate a report file's schema and arithmetic
//!   invariants (outcome counts must sum to requests issued).
//! * `wal-info` — offline inspection of a WAL directory (or legacy file):
//!   per-segment generations, record counts, torn bytes, and snapshot
//!   inventory. Exits 2 — distinctly from usage errors — when any sealed
//!   segment or snapshot is damaged, so scripts can gate on it.
//! * `snapshot` — open a store + WAL read-write, take one snapshot
//!   (rotating the log and retiring subsumed segments), and exit.
//! * `serve` — run a real server over a saved sketch store; `--wal DIR`
//!   opens it writable with a crash-safe write-ahead log.
//!   `--snapshot-every N` snapshots automatically every N committed
//!   writes; `--scrub-every-secs S` runs the background integrity
//!   scrubber at that cadence.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use wmh_core::{SketchStore, Sketcher};
use wmh_data::PAPER_DATASETS;
use wmh_serve::{
    loadgen, snapshot, wal, Client, LoadConfig, LoadReport, MutationKind, MutationRequest, Outcome,
    QueryRequest, Server, Service, ServiceConfig, RECOVERY_SCHEMA_VERSION,
};
use wmh_sets::WeightedSet;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  wmh-serve smoke [--quick]\n  wmh-serve load --out FILE [--requests N] [--concurrency C] [--docs N]\n                 [--shards S] [--k K] [--deadline-us U] [--seed X] [--write-every W]\n  wmh-serve mutation-soak [--quick]\n  wmh-serve recovery-bench --out FILE [--quick]\n  wmh-serve check-report FILE\n  wmh-serve wal-info DIR\n  wmh-serve snapshot --store FILE --wal DIR\n  wmh-serve serve --store FILE [--addr 127.0.0.1:7878] [--wal DIR]\n                  [--snapshot-every N] [--scrub-every-secs S]"
        .to_owned()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let flag = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let num = |name: &str, default: u64| -> Result<u64, String> {
        flag(name).map_or(Ok(default), |raw| {
            raw.parse().map_err(|e| format!("invalid {name} {raw:?}: {e}"))
        })
    };
    match cmd.as_str() {
        "smoke" => smoke(args.iter().any(|a| a == "--quick")).map(|()| ExitCode::SUCCESS),
        "load" => {
            let out = flag("--out").ok_or_else(|| format!("missing --out\n{}", usage()))?;
            load(
                &out,
                num("--requests", 2000)? as usize,
                num("--concurrency", 4)? as usize,
                num("--docs", 600)? as usize,
                num("--shards", 4)? as usize,
                num("--k", 10)? as usize,
                num("--deadline-us", 20_000)?,
                num("--seed", 42)?,
                num("--write-every", 0)? as usize,
            )
            .map(|()| ExitCode::SUCCESS)
        }
        "mutation-soak" => {
            mutation_soak(args.iter().any(|a| a == "--quick")).map(|()| ExitCode::SUCCESS)
        }
        "recovery-bench" => {
            let out = flag("--out").ok_or_else(|| format!("missing --out\n{}", usage()))?;
            recovery_bench(&out, args.iter().any(|a| a == "--quick")).map(|()| ExitCode::SUCCESS)
        }
        "check-report" => {
            let path = args.get(1).ok_or_else(|| format!("missing FILE\n{}", usage()))?;
            check_report(path).map(|()| ExitCode::SUCCESS)
        }
        "wal-info" => {
            let dir = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| format!("missing DIR\n{}", usage()))?;
            wal_info(dir)
        }
        "snapshot" => {
            let store = flag("--store").ok_or_else(|| format!("missing --store\n{}", usage()))?;
            let wal = flag("--wal").ok_or_else(|| format!("missing --wal\n{}", usage()))?;
            snapshot_verb(&store, &wal).map(|()| ExitCode::SUCCESS)
        }
        "serve" => {
            let store = flag("--store").ok_or_else(|| format!("missing --store\n{}", usage()))?;
            let addr = flag("--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
            let snapshot_every = match num("--snapshot-every", 0)? {
                0 => None,
                n => Some(n),
            };
            serve(&store, &addr, flag("--wal"), snapshot_every, num("--scrub-every-secs", 0)?)
                .map(|()| ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// The Table-4 medium corpus (`Syn3E0.24S`), scaled down preserving the
/// expected pairwise overlap so similarity estimates stay in the paper's
/// regime.
fn corpus(docs: usize, seed: u64) -> Result<(String, Vec<WeightedSet>), String> {
    let config = PAPER_DATASETS[2].scaled_down_preserving_overlap(docs, 20_000);
    let dataset = config.generate(seed)?;
    Ok((dataset.name, dataset.docs))
}

/// Sketch every document with catalog ICWS and fill a store.
fn build_store(docs: &[WeightedSet], seed: u64) -> Result<SketchStore, String> {
    let sketcher = wmh_core::cws::Icws::new(seed, 128);
    let mut store = SketchStore::new();
    for (id, doc) in docs.iter().enumerate() {
        let sketch = sketcher.sketch(doc).map_err(|e| format!("sketching doc {id}: {e}"))?;
        store.insert(id as u64, &sketch).map_err(|e| format!("storing doc {id}: {e}"))?;
    }
    Ok(store)
}

fn pairs_of(doc: &WeightedSet) -> Vec<(u64, f64)> {
    doc.iter().collect()
}

fn expect(step: &str, ok: bool, detail: String) -> Result<(), String> {
    if ok {
        println!("smoke: {step}: ok");
        Ok(())
    } else {
        Err(format!("smoke: {step}: FAILED — {detail}"))
    }
}

/// End-to-end smoke over a loopback port: every outcome class must be
/// reachable and typed.
fn smoke(quick: bool) -> Result<(), String> {
    let docs_n = if quick { 60 } else { 240 };
    let (name, docs) = corpus(docs_n, 42)?;
    let store = build_store(&docs, 42)?;
    let config = ServiceConfig { shards: 4, ..ServiceConfig::default() };
    let service = Arc::new(Service::from_store(&store, config).map_err(|e| format!("build: {e}"))?);
    let server =
        Server::spawn(Arc::clone(&service), "127.0.0.1:0").map_err(|e| format!("spawn: {e}"))?;
    let mut client = Client::connect(server.addr()).map_err(|e| format!("connect: {e}"))?;
    println!("smoke: serving {docs_n} docs of {name} on {}", server.addr());

    let health = client.health().map_err(|e| format!("health: {e}"))?;
    expect(
        "health",
        health.ready && health.indexed == docs_n && health.shards_quarantined == 0,
        format!("{health:?}"),
    )?;

    let ok = client
        .query(&QueryRequest { id: 1, doc: pairs_of(&docs[0]), k: 5, deadline_us: Some(2_000_000) })
        .map_err(|e| format!("query: {e}"))?;
    expect(
        "ok outcome",
        ok.outcome == Outcome::Ok
            && ok.results.first().is_some_and(|&(id, est)| id == 0 && est == 1.0)
            && (ok.coverage - 1.0).abs() < f64::EPSILON,
        format!("{ok:?}"),
    )?;

    let miss = client
        .query(&QueryRequest { id: 2, doc: pairs_of(&docs[1]), k: 5, deadline_us: Some(0) })
        .map_err(|e| format!("query: {e}"))?;
    expect(
        "forced deadline miss",
        miss.outcome == Outcome::DeadlineExceeded && miss.results.is_empty(),
        format!("{miss:?}"),
    )?;

    let bad = client
        .query(&QueryRequest { id: 3, doc: Vec::new(), k: 5, deadline_us: None })
        .map_err(|e| format!("query: {e}"))?;
    expect(
        "bad request",
        bad.outcome == Outcome::BadRequest && bad.error.is_some(),
        format!("{bad:?}"),
    )?;

    // A zero-capacity twin forces the admission path deterministically.
    let choked_config = ServiceConfig { shards: 2, max_inflight: 0, ..ServiceConfig::default() };
    let choked = Arc::new(
        Service::from_store(&store, choked_config).map_err(|e| format!("build choked: {e}"))?,
    );
    let choked_server = Server::spawn(Arc::clone(&choked), "127.0.0.1:0")
        .map_err(|e| format!("spawn choked: {e}"))?;
    let mut choked_client =
        Client::connect(choked_server.addr()).map_err(|e| format!("connect choked: {e}"))?;
    let over = choked_client
        .query(&QueryRequest { id: 4, doc: pairs_of(&docs[2]), k: 5, deadline_us: None })
        .map_err(|e| format!("query choked: {e}"))?;
    expect(
        "forced overload",
        over.outcome == Outcome::Overloaded && over.retry_after_us > 0,
        format!("{over:?}"),
    )?;

    // A store-built service has no write path: mutations answer
    // `read_only`, typed like everything else.
    let ro = client
        .insert(999_999, pairs_of(&docs[0]), Some(2_000_000))
        .map_err(|e| format!("insert: {e}"))?;
    expect(
        "read-only mutation",
        ro.outcome == Outcome::ReadOnly && !ro.durable && ro.error.is_some(),
        format!("{ro:?}"),
    )?;

    println!("smoke: all outcomes typed — pass");
    Ok(())
}

/// A scratch directory for WAL-backed runs, removed on a clean exit.
fn scratch_dir(label: &str) -> Result<PathBuf, String> {
    let dir = std::env::temp_dir().join(format!("wmh-serve-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    Ok(dir)
}

/// Run the closed-loop load generator and write the report. With a write
/// mix, the service runs over a scratch write-ahead log so mutations take
/// the real durable path.
#[allow(clippy::too_many_arguments)]
fn load(
    out: &str,
    requests: usize,
    concurrency: usize,
    docs_n: usize,
    shards: usize,
    k: usize,
    deadline_us: u64,
    seed: u64,
    write_every: usize,
) -> Result<(), String> {
    let (name, docs) = corpus(docs_n, seed)?;
    let store = build_store(&docs, seed)?;
    let config = ServiceConfig { shards, seed, ..ServiceConfig::default() };
    let scratch = if write_every > 0 { Some(scratch_dir("load")?) } else { None };
    let service = match &scratch {
        Some(dir) => Service::open(&store, &dir.join("load.wal"), config),
        None => Service::from_store(&store, config),
    }
    .map_err(|e| format!("build: {e}"))?;
    let query_docs: Vec<Vec<(u64, f64)>> = docs.iter().map(pairs_of).collect();
    let load_config = LoadConfig { requests, concurrency, k, deadline_us, write_every };
    let report = loadgen::run(&service, &name, &query_docs, &load_config);
    drop(service);
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(dir);
    }
    report.validate()?;
    let mut text = wmh_json::to_string_pretty(&report);
    text.push('\n');
    std::fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "load: {} requests ({} writes) over {name} ({} docs, {} shards): {:.0} req/s, \
         p50 {}us p99 {}us, ok {} partial {} deadline {} overloaded {} bad {} read-only {} \
         — wrote {out}",
        report.requests,
        report.writes,
        report.docs,
        report.shards,
        report.throughput_rps,
        report.p50_us,
        report.p99_us,
        report.ok,
        report.partial,
        report.deadline_exceeded,
        report.overloaded,
        report.bad_request,
        report.read_only,
    );
    Ok(())
}

/// Drive the whole mutation surface over the wire, then prove the two
/// recovery claims end to end: a reopened service (kill-resume over the
/// same WAL) answers byte-identically, and a live re-shard converges
/// byte-identically to a from-scratch build at the new shard count.
fn mutation_soak(quick: bool) -> Result<(), String> {
    let docs_n = if quick { 48 } else { 160 };
    let writes = if quick { 30 } else { 120 };
    let shards = if quick { 2 } else { 4 };
    let (name, docs) = corpus(docs_n, 42)?;
    let store = build_store(&docs, 42)?;
    let dir = scratch_dir("soak")?;
    let wal = dir.join("soak.wal");
    let config =
        ServiceConfig { shards, default_deadline_us: 2_000_000, ..ServiceConfig::default() };
    let deadline = Some(2_000_000u64);

    let service =
        Arc::new(Service::open(&store, &wal, config.clone()).map_err(|e| format!("open: {e}"))?);
    let server =
        Server::spawn(Arc::clone(&service), "127.0.0.1:0").map_err(|e| format!("spawn: {e}"))?;
    let mut client = Client::connect(server.addr()).map_err(|e| format!("connect: {e}"))?;
    println!("mutation-soak: {docs_n} docs of {name}, {writes} writes, {shards} shards");

    // Mixed mutation script over the wire: inserts of fresh ids, streaming
    // updates (creating and drifting), deletes of corpus and fresh ids.
    let base = 1_000_000u64;
    for i in 0..writes {
        let doc = pairs_of(&docs[i % docs.len()]);
        // Slot cycle: insert → stream → delete-the-insert-two-back →
        // stream again, so every delete targets an id slot 0 inserted.
        let response = match i % 4 {
            0 => client.insert(base + i as u64, doc, deadline),
            1 => client.stream(base + 500_000 + (i / 8) as u64, 0.5, doc, deadline),
            2 => client.delete(base + (i - 2) as u64, deadline),
            _ => client.stream(base + 500_000 + (i / 8) as u64, 0.9, doc, deadline),
        }
        .map_err(|e| format!("write {i}: {e}"))?;
        if response.outcome != Outcome::Ok || !response.durable || !response.applied {
            return Err(format!("mutation-soak: write {i} degraded: {response:?}"));
        }
    }
    let probe = |client: &mut Client, label: &str| -> Result<Vec<String>, String> {
        docs.iter()
            .enumerate()
            .map(|(i, doc)| {
                client
                    .query(&QueryRequest {
                        id: i as u64,
                        doc: pairs_of(doc),
                        k: 10,
                        deadline_us: deadline,
                    })
                    .map(|r| wmh_json::to_string(&r))
                    .map_err(|e| format!("{label} probe {i}: {e}"))
            })
            .collect()
    };
    let live = probe(&mut client, "live")?;
    let indexed = service.health().indexed;
    drop(server);
    drop(service);

    // Kill-resume: a fresh process image over the same store + WAL must
    // answer every probe byte-identically.
    let reopened =
        Arc::new(Service::open(&store, &wal, config.clone()).map_err(|e| format!("reopen: {e}"))?);
    if reopened.health().indexed != indexed {
        return Err(format!(
            "mutation-soak: reopen indexed {} != live {indexed}",
            reopened.health().indexed
        ));
    }
    let server =
        Server::spawn(Arc::clone(&reopened), "127.0.0.1:0").map_err(|e| format!("respawn: {e}"))?;
    let mut client = Client::connect(server.addr()).map_err(|e| format!("reconnect: {e}"))?;
    let recovered = probe(&mut client, "recovered")?;
    if recovered != live {
        return Err("mutation-soak: kill-resume replay is not byte-identical".into());
    }
    println!("mutation-soak: kill-resume replay byte-identical over {} probes", live.len());

    // Live re-shard: the re-partitioned fleet must answer byte-identically
    // to a from-scratch open at the new shard count.
    let to = shards + 1;
    let report = reopened.reshard_blocking(to).map_err(|e| format!("reshard: {e}"))?;
    let resharded = probe(&mut client, "resharded")?;
    let fresh_config = ServiceConfig { shards: to, ..config };
    let fresh =
        Arc::new(Service::open(&store, &wal, fresh_config).map_err(|e| format!("fresh: {e}"))?);
    let fresh_server = Server::spawn(Arc::clone(&fresh), "127.0.0.1:0")
        .map_err(|e| format!("fresh spawn: {e}"))?;
    let mut fresh_client =
        Client::connect(fresh_server.addr()).map_err(|e| format!("fresh connect: {e}"))?;
    let from_scratch = probe(&mut fresh_client, "from-scratch")?;
    if resharded != from_scratch {
        return Err("mutation-soak: re-shard is not byte-identical to a from-scratch build".into());
    }
    println!(
        "mutation-soak: re-shard {} -> {} ({} points) byte-identical to from-scratch — pass",
        report.from, report.to, report.points
    );
    let _ = std::fs::remove_dir_all(dir);
    Ok(())
}

/// One measured reopen in the recovery bench.
struct RecoveryRow {
    /// Committed writes before the kill.
    writes: u64,
    /// Whether a snapshot was taken before the kill.
    snapshot: bool,
    /// WAL mutations the reopen actually replayed.
    wal_records_replayed: u64,
    /// WAL segments the reopen actually read.
    segments_replayed: u64,
    /// Wall-clock seconds for the reopen (`Service::open`).
    open_secs: f64,
}

wmh_json::json_object!(RecoveryRow {
    writes,
    snapshot,
    wal_records_replayed,
    segments_replayed,
    open_secs
});

/// The `wmh-serve-recovery/v1` report: recovery cost with and without a
/// snapshot, at several write counts.
struct RecoveryReport {
    schema: String,
    corpus: String,
    docs: u64,
    shards: u64,
    rows: Vec<RecoveryRow>,
}

wmh_json::json_object!(RecoveryReport { schema, corpus, docs, shards, rows });

/// Measure reopen (recovery) time with and without a snapshot at several
/// write counts: the snapshotted runs must replay only the (empty) tail,
/// which is the whole point of the durability lifecycle.
fn recovery_bench(out: &str, quick: bool) -> Result<(), String> {
    let docs_n = if quick { 48 } else { 160 };
    let max_writes = if quick { 60u64 } else { 240 };
    let shards = 2usize;
    let (name, docs) = corpus(docs_n, 42)?;
    let store = build_store(&docs, 42)?;
    let config =
        ServiceConfig { shards, default_deadline_us: 2_000_000, ..ServiceConfig::default() };
    let mut rows = Vec::new();
    for writes in [max_writes / 4, max_writes / 2, max_writes] {
        for snapshot in [false, true] {
            let dir = scratch_dir(&format!("recovery-{writes}-{snapshot}"))?;
            let wal_dir = dir.join("bench.wal");
            let service = Service::open(&store, &wal_dir, config.clone())
                .map_err(|e| format!("open ({writes} writes): {e}"))?;
            for i in 0..writes {
                let response = service.mutate(&MutationRequest {
                    id: 1_000_000 + i,
                    kind: MutationKind::Insert { doc: pairs_of(&docs[i as usize % docs.len()]) },
                    deadline_us: Some(2_000_000),
                });
                if response.outcome != Outcome::Ok {
                    return Err(format!("recovery-bench: write {i} degraded: {response:?}"));
                }
            }
            if snapshot {
                service.snapshot().map_err(|e| format!("snapshot ({writes} writes): {e}"))?;
            }
            drop(service);
            let started = std::time::Instant::now();
            let reopened = Service::open(&store, &wal_dir, config.clone())
                .map_err(|e| format!("reopen ({writes} writes): {e}"))?;
            let open_secs = started.elapsed().as_secs_f64();
            let replay = reopened
                .wal_recovery()
                .ok_or_else(|| "recovery-bench: reopen reported no recovery".to_owned())?;
            rows.push(RecoveryRow {
                writes,
                snapshot,
                wal_records_replayed: replay.records as u64,
                segments_replayed: replay.segments_replayed as u64,
                open_secs,
            });
            drop(reopened);
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    let report = RecoveryReport {
        schema: RECOVERY_SCHEMA_VERSION.to_owned(),
        corpus: name.clone(),
        docs: docs_n as u64,
        shards: shards as u64,
        rows,
    };
    let mut text = wmh_json::to_string_pretty(&report);
    text.push('\n');
    std::fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
    for row in &report.rows {
        println!(
            "recovery-bench: {} writes, snapshot={}: replayed {} records over {} segment(s) \
             in {:.4}s",
            row.writes,
            row.snapshot,
            row.wal_records_replayed,
            row.segments_replayed,
            row.open_secs
        );
    }
    println!("recovery-bench: {} rows over {name} — wrote {out}", report.rows.len());
    Ok(())
}

/// Validate a load report file: schema shape plus arithmetic invariants.
fn check_report(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report: LoadReport =
        wmh_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    report.validate().map_err(|e| format!("{path}: {e}"))?;
    println!("check-report: {path}: valid {}", report.schema);
    Ok(())
}

/// Offline WAL + snapshot inspection. Exit code 2 (distinct from the
/// generic failure 1) when any sealed segment or snapshot is damaged.
fn wal_info(dir: &str) -> Result<ExitCode, String> {
    let path = std::path::Path::new(dir);
    let info = wal::inspect(path).map_err(|e| format!("inspecting {dir}: {e}"))?;
    println!(
        "wal-info: {dir}: provenance {} seed={} D={}",
        info.provenance.algorithm, info.provenance.seed, info.provenance.num_hashes
    );
    let mut corrupt = info.corrupt();
    for segment in &info.segments {
        let health = match &segment.error {
            Some(e) => format!("CORRUPT — {e}"),
            None if segment.torn_bytes > 0 => {
                format!("{} torn tail byte(s)", segment.torn_bytes)
            }
            None => "ok".into(),
        };
        println!(
            "  segment gen {:>3}: {:>6} records, {:>9} bytes, {health}",
            segment.generation, segment.records, segment.bytes
        );
    }
    let snapshots = if path.is_dir() {
        snapshot::list(path).map_err(|e| format!("listing snapshots in {dir}: {e}"))?
    } else {
        Vec::new()
    };
    let provenance = info.provenance.clone();
    for (gen, snap_path) in &snapshots {
        match snapshot::verify_file(snap_path, &provenance) {
            Ok(()) => println!("  snapshot gen {gen:>3}: ok"),
            Err(e) => {
                corrupt = true;
                println!("  snapshot gen {gen:>3}: CORRUPT — {e}");
            }
        }
    }
    if snapshots.is_empty() {
        println!("  (no snapshots)");
    }
    if corrupt {
        println!("wal-info: CORRUPTION FOUND");
        return Ok(ExitCode::from(2));
    }
    println!("wal-info: clean");
    Ok(ExitCode::SUCCESS)
}

/// Open a store + WAL read-write, take one snapshot, and exit.
fn snapshot_verb(store_path: &str, wal_dir: &str) -> Result<(), String> {
    let store = SketchStore::load_from_path(std::path::Path::new(store_path))
        .map_err(|e| format!("loading {store_path}: {e}"))?;
    let service = Service::open(&store, std::path::Path::new(wal_dir), ServiceConfig::default())
        .map_err(|e| format!("open: {e}"))?;
    let generation = service.snapshot().map_err(|e| e.to_string())?;
    println!("snapshot: wrote generation {generation} in {wal_dir}");
    Ok(())
}

/// Serve a saved sketch store until killed; with `--wal`, writable over a
/// crash-safe write-ahead log (replayed at startup).
fn serve(
    store_path: &str,
    addr: &str,
    wal: Option<String>,
    snapshot_every: Option<u64>,
    scrub_every_secs: u64,
) -> Result<(), String> {
    let store = SketchStore::load_from_path(std::path::Path::new(store_path))
        .map_err(|e| format!("loading {store_path}: {e}"))?;
    let config = ServiceConfig { snapshot_every, ..ServiceConfig::default() };
    let service = Arc::new(
        match &wal {
            Some(path) => Service::open(&store, std::path::Path::new(path), config),
            None => Service::from_store(&store, config),
        }
        .map_err(|e| format!("build: {e}"))?,
    );
    if let Some(recovery) = service.recovery() {
        let from = recovery
            .snapshot_generation
            .map_or("cold store".to_owned(), |g| format!("snapshot generation {g}"));
        println!(
            "wal: restored from {from}; replayed {} mutations from {} of {} segment(s) \
             ({} torn-tail bytes discarded, {} damaged snapshot(s) skipped)",
            recovery.replay.records,
            recovery.replay.segments_replayed,
            recovery.replay.segments_total,
            recovery.replay.bytes_discarded,
            recovery.snapshots_rejected,
        );
    }
    let _scrubber = if scrub_every_secs > 0 && wal.is_some() {
        Some(
            wmh_serve::spawn_scrubber(
                Arc::clone(&service),
                std::time::Duration::from_secs(scrub_every_secs),
            )
            .map_err(|e| format!("spawning scrubber: {e}"))?,
        )
    } else {
        None
    };
    let indexed = service.health().indexed;
    let mode = if wal.is_some() { "read-write" } else { "read-only" };
    let server = Server::spawn(service, addr).map_err(|e| format!("spawn: {e}"))?;
    println!("serving {indexed} sketches ({mode}) from {store_path} on {}", server.addr());
    loop {
        std::thread::park();
    }
}
