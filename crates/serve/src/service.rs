//! The service core: batched ingest into shard-local indexes, admission
//! control, deadline-bounded fan-out, a deterministic merge — and, for
//! services opened over a write-ahead log, the crash-safe live mutation
//! path with its durability lifecycle (snapshots, compaction, scrubbing,
//! half-open write recovery).
//!
//! [`Service::query`] and [`Service::mutate`] are total: they return a
//! typed response for every input — never an `Err`, never a panic, never
//! a silently dropped request. Degradation is *data*, not control flow:
//! the response's [`Outcome`], `coverage`/`durable`/`applied`, and `error`
//! fields say exactly what happened.
//!
//! ## Shard health and quarantine
//!
//! Each shard carries a consecutive-failure counter, updated by the merge
//! path from the slices it actually received. Reaching
//! [`ServiceConfig::quarantine_after`] failures quarantines the shard: it
//! is skipped at fan-out (its slice shows up as missing coverage, not as
//! latency), except that every [`ServiceConfig::probe_every`]-th request
//! is sent through anyway — the half-open probe. One successful probe
//! restores the shard, and because results flow only from received
//! slices, a recovered service is *byte-identical* to one that never
//! failed — the chaos soak pins exactly that.
//!
//! ## The write path (see also [`crate::wal`])
//!
//! Writes are serialized through one writer lock and follow a fixed
//! order: validate → durable WAL append → mirror update → dispatch to the
//! owning shard. The append is the commit point; everything after it is
//! reconstructible, so a SIGKILL anywhere replays to the exact
//! acknowledged state. An apply failure inside a shard (retry budget
//! exhausted) is self-healed by rebuilding that shard from the
//! authoritative mirror — the same code path a cold open uses, so the
//! repaired shard is byte-identical to never having failed.
//!
//! ## The durability lifecycle
//!
//! The writer owns a [`Mirror`]: the live id set, the overlay codes of
//! every id whose indexed sketch differs from the cold store, and the
//! full streaming state of every drifting document. The mirror is what
//! every rebuild (cold open, self-heal, re-shard) folds into shards, and
//! it is exactly what a snapshot freezes:
//!
//! * [`Service::snapshot`] rotates the WAL to a fresh generation, writes
//!   the mirror atomically as that generation's snapshot
//!   ([`crate::snapshot`]), keeps the newest two snapshots, and retires
//!   WAL segments the *second*-newest snapshot subsumes — lag-one
//!   retention, so a flipped bit in the newest snapshot still falls back
//!   one generation with its covering segments intact. Recovery cost is
//!   bounded by writes since the last snapshot, not log lifetime.
//!   `--snapshot-every N` ([`ServiceConfig::snapshot_every`]) triggers
//!   this automatically from the write path.
//! * [`Service::scrub`] re-verifies every snapshot and sealed segment
//!   CRC end-to-end and spot-checks shard fingerprints against the
//!   mirror ([`crate::scrub`]). Corrupt files are quarantined (renamed
//!   `*.bad`), a fresh snapshot re-establishes durability, and a
//!   mismatching shard is rebuilt through the self-heal machinery.
//! * A WAL append that exhausts its retry budget no longer latches a
//!   permanent read-only flag: it trips the [`WriteGate`], whose
//!   half-open probe cadence re-admits every `probe_every`-th write as a
//!   real durable append — one success re-opens the write path
//!   ([`crate::gate`]).
//!
//! ## Re-sharding
//!
//! [`Service::reshard_blocking`] rebuilds the whole fleet at a new shard
//! count behind the quarantine machinery: writes degrade to `read_only`,
//! the most-loaded shard is frozen (queries serve degraded-but-correct
//! `partial` results from the rest), the new partition is built from the
//! mirror — the same builder as a cold open, so the converged fleet is
//! byte-identical to a from-scratch partition — and swapped in under the
//! fleet lock. Skew detection ([`Service::plan_reshard`]) drives the
//! `reshard_hint` response field; the TCP front end turns the hint into a
//! background re-shard.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

use crate::deadline::Deadline;
use crate::fingerprint::BbitFingerprint;
use crate::gate::{WriteAdmission, WriteGate};
use crate::protocol::{
    HealthResponse, MutationKind, MutationRequest, MutationResponse, Outcome, QueryRequest,
    QueryResponse,
};
use crate::scrub::ScrubReport;
use crate::shard::{
    ApplyJob, ApplyOp, AuditJob, DynSketcher, Job, QueryJob, Shard, Slice, SliceOutcome,
};
use crate::snapshot::{self, SnapshotState};
use crate::wal::{Mutation, ReplayReport, Wal, WalError, WalProvenance};
use wmh_core::extensions::HistoSketch;
use wmh_core::{Algorithm, AlgorithmConfig, Sketch, SketchStore, Sketcher};
use wmh_fault::supervisor::{supervise, Attempt, CellOutcome};
use wmh_lsh::{Bands, LshIndex};
use wmh_sets::WeightedSet;

/// Sketches ingested between failpoint hits; a transient build fault
/// restarts the whole shard build under the retry policy, so the batch is
/// the unit of retried work.
const INGEST_BATCH: usize = 64;

/// Live ids sampled per scrub pass (evenly strided over the sorted live
/// set), so a scrub costs O(sample), not O(corpus).
const SCRUB_SAMPLE: usize = 64;

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (worker threads). Defaults to the core count,
    /// capped at 8. This is the *cold-open* count: a live re-shard changes
    /// the running fleet, but a restart partitions at this count again.
    pub shards: usize,
    /// Bound on each shard's inbox; a full inbox sheds the slice.
    pub queue_depth: usize,
    /// Global cap on requests between admission and response.
    pub max_inflight: usize,
    /// Budget applied when a request does not carry `deadline_us`.
    pub default_deadline_us: u64,
    /// b-bit width for the packed re-ranking fingerprints (`1..=32`).
    pub fingerprint_bits: u32,
    /// Banding scheme; `None` derives one for a 0.5 similarity threshold
    /// from the store's fingerprint length.
    pub bands: Option<Bands>,
    /// Consecutive shard failures before quarantine.
    pub quarantine_after: u32,
    /// Every Nth request is routed through quarantined shards as a
    /// half-open recovery probe; the same cadence drives the write gate's
    /// half-open probe appends.
    pub probe_every: u64,
    /// Retry policy: ingest/WAL/apply retries and the `retry_after_us`
    /// backoff hint (the sweep supervisor's seeded-deterministic policy).
    pub retry: wmh_fault::supervisor::RetryPolicy,
    /// Master seed for every deterministic schedule in the service.
    pub seed: u64,
    /// Id-distribution imbalance (max shard size / ideal size) at which
    /// mutation responses raise `reshard_hint`; `None` disables skew
    /// detection.
    pub reshard_skew: Option<f64>,
    /// Largest shard count [`Service::plan_reshard`] will propose.
    pub reshard_cap: usize,
    /// Take an automatic snapshot every N committed writes; `None`
    /// disables the trigger ([`Service::snapshot`] still works on
    /// demand). A failed automatic snapshot is absorbed — the write that
    /// triggered it was already acknowledged durably.
    pub snapshot_every: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(8),
            queue_depth: 64,
            max_inflight: 256,
            default_deadline_us: 50_000,
            fingerprint_bits: 16,
            bands: None,
            quarantine_after: 3,
            probe_every: 8,
            retry: wmh_fault::supervisor::RetryPolicy::default(),
            seed: 0x5E27E,
            reshard_skew: None,
            reshard_cap: 8,
            snapshot_every: None,
        }
    }
}

/// Errors surfaced while *building*, *re-sharding*, *snapshotting*, or
/// *scrubbing* a service. (Query- and mutation-time failures are never
/// errors — they are typed response outcomes.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The sketch store holds no points.
    EmptyStore,
    /// The store's recorded algorithm is not in the catalog.
    UnknownAlgorithm(String),
    /// A configuration field is unusable.
    BadConfig(String),
    /// Rebuilding the store's sketcher failed.
    Build(String),
    /// A shard's ingest failed even after the retry budget.
    Ingest {
        /// Which shard.
        shard: usize,
        /// Attempts made.
        attempts: u32,
        /// The last failure, verbatim.
        error: String,
    },
    /// The OS refused a worker thread.
    Spawn(String),
    /// Opening or replaying the write-ahead log failed.
    Wal(String),
    /// Taking a snapshot failed (the previous generation is intact).
    Snapshot(String),
    /// An integrity scrub could not run (a scrub that *finds* damage is
    /// not an error — damage is data, reported in the [`ScrubReport`]).
    Scrub(String),
    /// A re-shard was requested while one is already in progress.
    Resharding,
    /// The operation needs the write path, but the service was built
    /// read-only ([`Service::from_store`]).
    ReadOnlyService,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyStore => write!(f, "sketch store is empty"),
            Self::UnknownAlgorithm(name) => write!(f, "store algorithm {name:?} not in catalog"),
            Self::BadConfig(e) => write!(f, "bad service config: {e}"),
            Self::Build(e) => write!(f, "rebuilding sketcher from store provenance: {e}"),
            Self::Ingest { shard, attempts, error } => {
                write!(f, "shard {shard} ingest failed after {attempts} attempts: {error}")
            }
            Self::Spawn(e) => write!(f, "spawning shard worker: {e}"),
            Self::Wal(e) => write!(f, "write-ahead log: {e}"),
            Self::Snapshot(e) => write!(f, "snapshot: {e}"),
            Self::Scrub(e) => write!(f, "scrub: {e}"),
            Self::Resharding => write!(f, "a re-shard is already in progress"),
            Self::ReadOnlyService => {
                write!(f, "service was opened read-only (no write-ahead log)")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Per-shard health bookkeeping, updated by the merge path.
struct ShardHealth {
    consecutive_failures: u32,
    quarantined: bool,
    /// Set for the duration of a re-shard on the shard being rebuilt:
    /// skipped at fan-out unconditionally (no half-open probes — the
    /// freeze lifts when the re-shard finishes, not when a probe
    /// succeeds).
    frozen: bool,
}

impl ShardHealth {
    fn new() -> Self {
        Self { consecutive_failures: 0, quarantined: false, frozen: false }
    }
}

/// Decrement-on-drop guard so the in-flight gauge survives every return
/// path (including future early returns) without manual accounting.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Clear-on-drop guard for the `resharding` flag, so every exit path of a
/// re-shard (including build failure) re-opens the write path.
struct ReshardGuard<'a>(&'a AtomicBool);

impl Drop for ReshardGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// The authoritative in-memory mirror of the durable state: everything a
/// rebuild needs beyond the cold store, and exactly what a snapshot
/// freezes. Replaying the WAL folds into the same struct the live write
/// path updates, so "restored from snapshot + tail" and "applied live"
/// are the same data by construction.
struct Mirror {
    /// Ids currently indexed (store ∪ inserts ∖ deletes).
    live: HashSet<u64>,
    /// Current codes for every id whose indexed sketch differs from the
    /// cold store: inserted after the store was built, or drifted by
    /// stream updates.
    overlays: HashMap<u64, Vec<u64>>,
    /// Per-id HistoSketch states for streaming documents.
    streams: HashMap<u64, HistoSketch>,
}

impl Mirror {
    /// The mirror of a store with no mutations: every store id live, no
    /// overlays, no streams.
    fn cold(store: &SketchStore) -> Self {
        Self {
            live: store.ids().iter().copied().collect(),
            overlays: HashMap::new(),
            streams: HashMap::new(),
        }
    }

    /// Restore from a verified snapshot.
    fn from_snapshot(state: &SnapshotState) -> Result<Self, String> {
        let mut streams = HashMap::with_capacity(state.streams.len());
        for (id, hs) in &state.streams {
            let sketch = HistoSketch::from_state(hs)
                .map_err(|e| format!("stream state for id {id}: {e}"))?;
            streams.insert(*id, sketch);
        }
        Ok(Self {
            live: state.live.iter().copied().collect(),
            overlays: state.overlays.iter().cloned().collect(),
            streams,
        })
    }

    /// Fold one logged mutation — the replay twin of the live mirror
    /// update in [`Service::mutate`]: identical HistoSketch calls in
    /// identical order, so a recovered mirror is bit-identical to one
    /// that took the writes live.
    fn fold(
        &mut self,
        seed: u64,
        sketcher: &(dyn Sketcher + Send + Sync),
        m: &Mutation,
    ) -> Result<(), String> {
        match m {
            Mutation::Insert { id, codes } => {
                self.live.insert(*id);
                self.overlays.insert(*id, codes.clone());
            }
            Mutation::Delete { id } => {
                self.live.remove(id);
                self.overlays.remove(id);
                self.streams.remove(id);
            }
            Mutation::Stream { id, lambda, items } => {
                let state = match self.streams.entry(*id) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => v.insert(
                        HistoSketch::new(seed, sketcher.num_hashes()).map_err(|e| e.to_string())?,
                    ),
                };
                state.decay(*lambda).map_err(|e| e.to_string())?;
                for &(k, mass) in items {
                    state.add(k, mass).map_err(|e| e.to_string())?;
                }
                let set = state.histogram().map_err(|e| e.to_string())?;
                let sketch = sketcher.sketch(&set).map_err(|e| e.to_string())?;
                self.live.insert(*id);
                self.overlays.insert(*id, sketch.codes);
            }
        }
        Ok(())
    }

    /// Freeze the mirror as snapshot generation `generation`. Everything
    /// is sorted ascending by id, so the same mirror always serializes to
    /// the same bytes.
    fn to_snapshot_state(&self, generation: u64) -> SnapshotState {
        let mut live: Vec<u64> = self.live.iter().copied().collect();
        live.sort_unstable();
        let mut overlays: Vec<(u64, Vec<u64>)> =
            self.overlays.iter().map(|(&id, codes)| (id, codes.clone())).collect();
        overlays.sort_unstable_by_key(|&(id, _)| id);
        let mut streams: Vec<_> = self.streams.iter().map(|(&id, hs)| (id, hs.state())).collect();
        streams.sort_unstable_by_key(|&(id, _)| id);
        SnapshotState { generation, live, overlays, streams }
    }
}

/// Everything the write path owns, serialized under one lock: the WAL,
/// the cold store, the authoritative mirror, and per-shard bookkeeping.
struct WriteState {
    wal: Wal,
    /// The base every rebuild starts from.
    store: SketchStore,
    /// The authoritative mirror (see [`Mirror`]).
    mirror: Mirror,
    /// Live points per shard of the *current* fleet (skew detection).
    sizes: Vec<usize>,
    /// Committed writes since the last snapshot (drives
    /// [`ServiceConfig::snapshot_every`]).
    writes_since_snapshot: u64,
}

/// What a completed re-shard reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardReport {
    /// Shard count before.
    pub from: usize,
    /// Shard count after.
    pub to: usize,
    /// Live points re-partitioned.
    pub points: usize,
}

/// What recovery found at open time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The WAL tail replay (only segments the snapshot does not subsume).
    pub replay: ReplayReport,
    /// The snapshot generation recovery restored from, `None` for a cold
    /// store + full-replay open.
    pub snapshot_generation: Option<u64>,
    /// Snapshot files that failed verification and were skipped (the
    /// one-generation fallback, or — when every snapshot is damaged but
    /// the log still reaches generation 0 — the cold-replay fallback).
    pub snapshots_rejected: usize,
}

/// A sharded similarity-search service (see the crate docs).
pub struct Service {
    config: ServiceConfig,
    sketcher: DynSketcher,
    algorithm: Algorithm,
    bands: Bands,
    shards: RwLock<Vec<Shard>>,
    health: Mutex<Vec<ShardHealth>>,
    inflight: AtomicUsize,
    requests: AtomicU64,
    indexed: AtomicUsize,
    gate: WriteGate,
    resharding: AtomicBool,
    writer: Option<Mutex<WriteState>>,
    recovery: Option<RecoveryInfo>,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    snapshot_gen: AtomicU64,
}

impl Service {
    /// Build a *read-only* service from a sketch store: rebuild the
    /// sketcher from the store's provenance, partition points round-robin
    /// by id, and batch-ingest each partition into its shard's banded
    /// index (transient ingest faults are retried under `config.retry`).
    /// Mutations against it answer `read_only`.
    ///
    /// # Errors
    /// Any [`ServiceError`] variant; notably [`ServiceError::Ingest`] when
    /// a shard's ingest keeps failing after the whole retry budget.
    pub fn from_store(store: &SketchStore, config: ServiceConfig) -> Result<Self, ServiceError> {
        Self::build(store, None, config)
    }

    /// Open a *mutable* service: everything [`Service::from_store`] does,
    /// plus a write-ahead log at `wal_path` — a *directory* of
    /// generation-numbered segments and snapshots (a legacy single-file
    /// log at that path is migrated in place). Recovery restores the
    /// newest verifiable snapshot, then replays only the WAL segments the
    /// snapshot does not subsume — after a crash the service state is
    /// byte-identical to the acknowledged pre-crash state. The store is
    /// snapshotted (owned) so shards can be rebuilt at any time.
    ///
    /// # Errors
    /// [`ServiceError::Wal`] for log open/verify/replay failures, plus
    /// everything [`Service::from_store`] can return.
    pub fn open(
        store: &SketchStore,
        wal_path: &Path,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        Self::build(store, Some(wal_path), config)
    }

    fn build(
        store: &SketchStore,
        wal_path: Option<&Path>,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        if store.is_empty() {
            return Err(ServiceError::EmptyStore);
        }
        if config.shards == 0 {
            return Err(ServiceError::BadConfig("shards must be positive".into()));
        }
        if !(1..=32).contains(&config.fingerprint_bits) {
            return Err(ServiceError::BadConfig(format!(
                "fingerprint_bits {} outside 1..=32",
                config.fingerprint_bits
            )));
        }
        if config.probe_every == 0 {
            return Err(ServiceError::BadConfig("probe_every must be positive".into()));
        }
        if config.reshard_skew.is_some_and(|t| t.is_nan() || t < 1.0) {
            return Err(ServiceError::BadConfig("reshard_skew must be >= 1.0".into()));
        }
        if config.snapshot_every == Some(0) {
            return Err(ServiceError::BadConfig("snapshot_every must be positive".into()));
        }
        let algorithm = Algorithm::by_name(store.algorithm())
            .ok_or_else(|| ServiceError::UnknownAlgorithm(store.algorithm().to_owned()))?;
        let bands = match config.bands {
            Some(bands) => bands,
            None => Bands::try_for_threshold(store.num_hashes(), 0.5)
                .map_err(|e| ServiceError::BadConfig(e.to_string()))?,
        };
        let sketcher = build_sketcher(algorithm, store)?;

        let (wal, mirror, recovery) = match wal_path {
            Some(path) => {
                let provenance = provenance_of(store);
                // Snapshot first: it decides the replay floor. A path
                // that is not a directory yet (fresh service, or a legacy
                // single-file log awaiting migration) has no snapshots.
                let (loaded, rejected) = if path.is_dir() {
                    snapshot::load_latest(path, &provenance)
                        .map_err(|e| ServiceError::Wal(format!("loading snapshots: {e}")))?
                } else {
                    (None, Vec::new())
                };
                let from_gen = loaded.as_ref().map_or(0, |l| l.state.generation);
                let (wal, tail, report) = Wal::open(path, &provenance, from_gen).map_err(|e| {
                    if loaded.is_none() && !rejected.is_empty() {
                        // Every snapshot failed verification AND the
                        // log no longer reaches generation 0: name
                        // both facts, this is the unrecoverable case.
                        let names: Vec<String> = rejected
                            .iter()
                            .map(|(p, why)| format!("{}: {why}", p.display()))
                            .collect();
                        ServiceError::Wal(format!(
                            "{e}; additionally, all {} snapshot(s) failed verification ({})",
                            rejected.len(),
                            names.join("; ")
                        ))
                    } else {
                        ServiceError::Wal(e.to_string())
                    }
                })?;
                let mut mirror = match &loaded {
                    Some(l) => Mirror::from_snapshot(&l.state)
                        .map_err(|e| ServiceError::Wal(format!("snapshot restore: {e}")))?,
                    None => Mirror::cold(store),
                };
                for m in &tail {
                    mirror
                        .fold(store.seed(), &*sketcher, m)
                        .map_err(|e| ServiceError::Wal(format!("wal replay: {e}")))?;
                }
                let info = RecoveryInfo {
                    replay: report,
                    snapshot_generation: loaded.as_ref().map(|l| l.state.generation),
                    snapshots_rejected: rejected.len(),
                };
                (Some(wal), mirror, Some(info))
            }
            None => (None, Mirror::cold(store), None),
        };

        let (shards, sizes) =
            build_fleet(store, algorithm, bands, &config, config.shards, &mirror, "serve::ingest")?;
        let health = (0..config.shards).map(|_| ShardHealth::new()).collect();
        let live_count = mirror.live.len();
        let wal_records = wal.as_ref().map_or(0, Wal::records);
        let wal_bytes = wal.as_ref().map_or(0, Wal::len_bytes);
        let snapshot_gen = recovery.as_ref().and_then(|r| r.snapshot_generation).unwrap_or(0);

        let gate = WriteGate::new(usize::try_from(config.probe_every).unwrap_or(usize::MAX));
        let writer = wal.map(|wal| {
            Mutex::new(WriteState {
                wal,
                store: store.clone(),
                mirror,
                sizes,
                writes_since_snapshot: 0,
            })
        });
        Ok(Self {
            indexed: AtomicUsize::new(live_count),
            health: Mutex::new(health),
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            resharding: AtomicBool::new(false),
            shards: RwLock::new(shards),
            wal_records: AtomicU64::new(wal_records),
            wal_bytes: AtomicU64::new(wal_bytes),
            snapshot_gen: AtomicU64::new(snapshot_gen),
            gate,
            recovery,
            sketcher,
            algorithm,
            bands,
            writer,
            config,
        })
    }

    /// What WAL replay found at open time (`None` for [`Self::from_store`]
    /// services).
    #[must_use]
    pub fn wal_recovery(&self) -> Option<&ReplayReport> {
        self.recovery.as_ref().map(|r| &r.replay)
    }

    /// The full recovery picture at open time: the tail replay, the
    /// snapshot generation restored from, and how many damaged snapshots
    /// were skipped on the way.
    #[must_use]
    pub fn recovery(&self) -> Option<&RecoveryInfo> {
        self.recovery.as_ref()
    }

    /// Answer a similarity query. Total: every input maps to a typed
    /// [`QueryResponse`]; see [`Outcome`] for the verdict taxonomy.
    pub fn query(&self, request: &QueryRequest) -> QueryResponse {
        let request_id = self.requests.fetch_add(1, Ordering::Relaxed);
        let budget = request.deadline_us.unwrap_or(self.config.default_deadline_us);
        let deadline = Deadline::after(Duration::from_micros(budget));
        let shards_total = self.lock_shards_read().len();

        // Admission: the global in-flight cap, plus the injectable
        // `serve::admission` rejection for overload drills.
        let admitted = self.inflight.fetch_add(1, Ordering::AcqRel);
        let _guard = InflightGuard(&self.inflight);
        let admission_fault = wmh_fault::point!("serve::admission").err();
        if admitted >= self.config.max_inflight || admission_fault.is_some() {
            let backoff = self.config.retry.backoff(self.config.seed, request_id, 1);
            let mut response = QueryResponse::empty(
                request.id,
                Outcome::Overloaded,
                shards_total,
                Some(admission_fault.map_or_else(
                    || format!("{admitted} requests in flight at cap {}", self.config.max_inflight),
                    |fault| fault.to_string(),
                )),
            );
            response.retry_after_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            return response;
        }

        // Sketch once at the front; shards only ever probe and re-rank.
        let set = match WeightedSet::from_pairs(request.doc.iter().copied()) {
            Ok(set) => set,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(format!("bad document: {e}")),
                )
            }
        };
        let sketch = match self.sketcher.sketch(&set) {
            Ok(sketch) => sketch,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(format!("unsketchable document: {e}")),
                )
            }
        };
        let fp = match BbitFingerprint::pack(&sketch.codes, self.config.fingerprint_bits) {
            Ok(fp) => fp,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(e.to_string()),
                )
            }
        };
        if deadline.expired() {
            return QueryResponse::empty(
                request.id,
                Outcome::DeadlineExceeded,
                shards_total,
                Some(format!("budget {budget}us spent before fan-out")),
            );
        }

        // Fan out. Frozen shards (mid-re-shard) are skipped always;
        // quarantined shards are skipped except on half-open probe
        // requests; full inboxes shed explicitly.
        let sketch = Arc::new(sketch);
        let fp = Arc::new(fp);
        let (reply_tx, reply_rx) = mpsc::channel::<Slice>();
        let probing = request_id.is_multiple_of(self.config.probe_every);
        let mut sent = 0usize;
        let mut shed = 0usize;
        let shards_total = {
            let shards = self.lock_shards_read();
            let health = self.lock_health();
            for (shard_id, shard) in shards.iter().enumerate() {
                let entry = &health[shard_id];
                if entry.frozen || (entry.quarantined && !probing) {
                    continue;
                }
                let job = Job::Query(QueryJob {
                    sketch: Arc::clone(&sketch),
                    fp: Arc::clone(&fp),
                    k: request.k,
                    deadline,
                    reply: reply_tx.clone(),
                });
                match shard.tx.try_send(job) {
                    Ok(()) => sent += 1,
                    // Explicit load-shedding: the slice is *counted*, not
                    // silently missing.
                    Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => shed += 1,
                }
            }
            shards.len()
        };
        drop(reply_tx);

        // Merge: collect slices until the budget expires or every
        // fanned-out shard reported. A missing slice never blocks — it
        // becomes missing coverage.
        let merge_fault = wmh_fault::point!("serve::merge").err();
        let mut results: Vec<(u64, f64)> = Vec::new();
        let mut succeeded: Vec<usize> = Vec::new();
        let mut failures: Vec<(usize, String)> = Vec::new();
        if merge_fault.is_none() {
            let mut received = 0usize;
            while received < sent {
                let slice = match deadline.remaining() {
                    None => reply_rx.recv().ok(),
                    Some(left) if left.is_zero() => None,
                    Some(left) => reply_rx.recv_timeout(left).ok(),
                };
                let Some(slice) = slice else { break };
                received += 1;
                match slice.outcome {
                    SliceOutcome::Hits(mut hits) => {
                        results.append(&mut hits);
                        succeeded.push(slice.shard);
                    }
                    SliceOutcome::Expired => {}
                    SliceOutcome::Failed(error) => failures.push((slice.shard, error)),
                }
            }
        }

        // Health accounting from the slices actually received. Shard ids
        // are bounds-checked: a re-shard may have swapped in a smaller
        // fleet while slices from the old one were still in flight.
        {
            let mut health = self.lock_health();
            for &shard_id in &succeeded {
                if let Some(entry) = health.get_mut(shard_id) {
                    entry.consecutive_failures = 0;
                    entry.quarantined = false;
                }
            }
            for (shard_id, _) in &failures {
                if let Some(entry) = health.get_mut(*shard_id) {
                    entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
                    if entry.consecutive_failures >= self.config.quarantine_after {
                        entry.quarantined = true;
                    }
                }
            }
        }

        let answered = succeeded.len();
        let outcome = if answered == shards_total {
            Outcome::Ok
        } else if answered == 0 && deadline.expired() {
            Outcome::DeadlineExceeded
        } else {
            Outcome::Partial
        };
        let error = merge_fault
            .map(|fault| format!("merge: {fault}"))
            .or_else(|| failures.first().map(|(shard_id, e)| format!("shard {shard_id}: {e}")));
        results.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        results.truncate(request.k);
        QueryResponse {
            id: request.id,
            outcome,
            results,
            coverage: answered as f64 / shards_total as f64,
            shards_total,
            shards_answered: answered,
            shed,
            retry_after_us: 0,
            error,
        }
    }

    /// Apply a live mutation. Total: every input maps to a typed
    /// [`MutationResponse`] — see the protocol docs for the write
    /// precedence and the meaning of `durable`/`applied`.
    pub fn mutate(&self, request: &MutationRequest) -> MutationResponse {
        let request_id = self.requests.fetch_add(1, Ordering::Relaxed);
        let budget = request.deadline_us.unwrap_or(self.config.default_deadline_us);
        let deadline = Deadline::after(Duration::from_micros(budget));
        let indexed = self.indexed.load(Ordering::Acquire);

        // Admission first: an overloaded service rejects writes before
        // touching the WAL, so `overloaded` always means "nothing
        // happened, retry verbatim".
        let admitted = self.inflight.fetch_add(1, Ordering::AcqRel);
        let _guard = InflightGuard(&self.inflight);
        let admission_fault = wmh_fault::point!("serve::admission").err();
        if admitted >= self.config.max_inflight || admission_fault.is_some() {
            let backoff = self.config.retry.backoff(self.config.seed, request_id, 1);
            let mut response = MutationResponse::rejected(
                request.id,
                Outcome::Overloaded,
                indexed,
                Some(admission_fault.map_or_else(
                    || format!("{admitted} requests in flight at cap {}", self.config.max_inflight),
                    |fault| fault.to_string(),
                )),
            );
            response.retry_after_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            return response;
        }

        let Some(writer) = &self.writer else {
            return MutationResponse::rejected(
                request.id,
                Outcome::ReadOnly,
                indexed,
                Some("service was opened read-only (no write-ahead log)".into()),
            );
        };
        if self.resharding.load(Ordering::Acquire) {
            let backoff = self.config.retry.backoff(self.config.seed, request_id, 1);
            let mut response = MutationResponse::rejected(
                request.id,
                Outcome::ReadOnly,
                indexed,
                Some("re-shard in progress; writes resume when it completes".into()),
            );
            response.retry_after_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            return response;
        }
        // The half-open write gate. `Reject` is the fast path of a
        // tripped gate; `Probe` proceeds into the real durable append —
        // its success is the evidence that re-opens the gate.
        let admission = self.gate.admit();
        if admission == WriteAdmission::Reject {
            let backoff = self.config.retry.backoff(self.config.seed, request_id, 1);
            let mut response = MutationResponse::rejected(
                request.id,
                Outcome::ReadOnly,
                indexed,
                Some(
                    "write gate tripped by a WAL failure; half-open probes re-admit \
                     writes once an append succeeds — retry later"
                        .into(),
                ),
            );
            response.retry_after_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            return response;
        }

        // Pre-sketch inserts and pre-validate stream parameters outside
        // the writer lock: everything rejectable without id bookkeeping is
        // rejected before any serialization point.
        let presketched = match &request.kind {
            MutationKind::Insert { doc } => match self.sketch_doc(doc) {
                Ok(pair) => Some(pair),
                Err(e) => {
                    return MutationResponse::rejected(
                        request.id,
                        Outcome::BadRequest,
                        indexed,
                        Some(e),
                    )
                }
            },
            MutationKind::Delete => None,
            MutationKind::Stream { lambda, items } => {
                if !lambda.is_finite() || *lambda <= 0.0 || *lambda > 1.0 {
                    return MutationResponse::rejected(
                        request.id,
                        Outcome::BadRequest,
                        indexed,
                        Some(format!("decay factor lambda {lambda} outside (0, 1]")),
                    );
                }
                if let Some((k, mass)) =
                    items.iter().find(|(_, mass)| !mass.is_finite() || *mass <= 0.0)
                {
                    return MutationResponse::rejected(
                        request.id,
                        Outcome::BadRequest,
                        indexed,
                        Some(format!("stream item ({k}, {mass}) has non-positive mass")),
                    );
                }
                None
            }
        };

        // Serialize: validate against live ids, commit to the WAL, update
        // the mirror, dispatch to the owning shard — all under the writer
        // lock, so WAL order is exactly per-shard apply order.
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);

        // Prepare the (record, apply-op) pair; every rejection here
        // happens *before* the append, so a `bad_request` never commits.
        let prepared = prepare_mutation(&w, request, presketched, &*self.sketcher, &self.config);
        let (record, op, new_stream) = match prepared {
            Ok(triple) => triple,
            Err(e) => {
                return MutationResponse::rejected(
                    request.id,
                    Outcome::BadRequest,
                    indexed,
                    Some(e),
                )
            }
        };
        if deadline.expired() {
            return MutationResponse::rejected(
                request.id,
                Outcome::DeadlineExceeded,
                indexed,
                Some(format!("budget {budget}us spent before the WAL append")),
            );
        }

        // The commit point: durable append, transient faults retried
        // under the policy. Exhaustion trips the write gate — a log that
        // cannot take writes must not acknowledge any — and the gate's
        // half-open probes re-admit writes once the disk recovers.
        let appended = supervise(&self.config.retry, self.config.seed, request_id, |_| {
            match w.wal.append(&record) {
                Ok(()) => Attempt::Done(Ok(())),
                Err(e @ WalError::TooLarge(_)) => Attempt::Done(Err(e.to_string())),
                Err(e) => Attempt::Transient(e.to_string()),
            }
        });
        let append_failure = match appended {
            CellOutcome::Completed(Ok(())) => None,
            CellOutcome::Completed(Err(e)) => {
                return MutationResponse::rejected(
                    request.id,
                    Outcome::BadRequest,
                    indexed,
                    Some(e),
                )
            }
            CellOutcome::TimedOut => Some("WAL append deadline".to_owned()),
            CellOutcome::Quarantined { attempts, error } => {
                Some(format!("WAL append failed after {attempts} attempts: {error}"))
            }
        };
        if let Some(detail) = append_failure {
            self.gate.trip();
            return MutationResponse::rejected(
                request.id,
                Outcome::ReadOnly,
                indexed,
                Some(format!(
                    "{detail}; write gate tripped — half-open probes re-admit writes \
                     once an append succeeds"
                )),
            );
        }
        // A successful probe append IS the recovery evidence: the fault
        // has cleared, and this very mutation commits.
        if admission == WriteAdmission::Probe {
            self.gate.restore();
        }
        self.wal_records.store(w.wal.records(), Ordering::Release);
        self.wal_bytes.store(w.wal.len_bytes(), Ordering::Release);

        // Committed. Mirror the mutation, then apply it — from here on the
        // response always reports `durable: true`.
        let was_live = w.mirror.live.contains(&request.id);
        let overlay_codes = match &op {
            ApplyOp::Insert { sketch, .. } | ApplyOp::Upsert { sketch, .. } => {
                Some(sketch.codes.clone())
            }
            ApplyOp::Delete { .. } => None,
        };
        match &request.kind {
            MutationKind::Insert { .. } => {
                w.mirror.live.insert(request.id);
                if let Some(codes) = overlay_codes {
                    w.mirror.overlays.insert(request.id, codes);
                }
            }
            MutationKind::Delete => {
                w.mirror.live.remove(&request.id);
                w.mirror.overlays.remove(&request.id);
                w.mirror.streams.remove(&request.id);
            }
            MutationKind::Stream { .. } => {
                w.mirror.live.insert(request.id);
                if let Some(codes) = overlay_codes {
                    w.mirror.overlays.insert(request.id, codes);
                }
                if let Some(state) = new_stream {
                    w.mirror.streams.insert(request.id, state);
                }
            }
        }
        let live_count = w.mirror.live.len();
        self.indexed.store(live_count, Ordering::Release);

        // The snapshot trigger. A failed automatic snapshot is absorbed
        // (this write is already durably acknowledged; the old generation
        // keeps serving) and the counter resets either way, so a broken
        // disk is probed once per window, not once per write.
        if let Some(every) = self.config.snapshot_every {
            w.writes_since_snapshot += 1;
            if w.writes_since_snapshot >= every {
                let _ = self.snapshot_locked(&mut w);
            }
        }

        // Route to the owning shard of the *current* fleet.
        let (shard_id, send_result, reply_rx) = {
            let shards = self.lock_shards_read();
            let shard_id = (request.id % shards.len() as u64) as usize;
            let (ack_tx, ack_rx) = mpsc::channel();
            // Blocking send: the mutation is durable, so it must reach the
            // worker; the worker always drains, so the wait is bounded by
            // the queue depth.
            let sent =
                shards[shard_id].tx.send(Job::Apply(Box::new(ApplyJob { op, reply: ack_tx })));
            (shard_id, sent, ack_rx)
        };
        match &request.kind {
            MutationKind::Insert { .. } => w.sizes[shard_id] += 1,
            MutationKind::Delete => w.sizes[shard_id] = w.sizes[shard_id].saturating_sub(1),
            MutationKind::Stream { .. } => {
                if !was_live {
                    w.sizes[shard_id] += 1;
                }
            }
        }
        let reshard_hint =
            self.config.reshard_skew.is_some_and(|threshold| imbalance(&w.sizes) >= threshold);

        let ack = if send_result.is_err() {
            // The worker is gone (only possible mid-teardown): treat as an
            // apply failure and fall into the rebuild path.
            Err("shard worker unavailable".to_owned())
        } else {
            match deadline.remaining() {
                None => reply_rx
                    .recv()
                    .map_err(|_| "shard worker gone".to_owned())
                    .map(|a| a.result)
                    .and_then(|r| r),
                Some(left) => match reply_rx.recv_timeout(left) {
                    Ok(ack) => ack.result,
                    Err(RecvTimeoutError::Timeout) => {
                        // Committed but unconfirmed: the worker applies it
                        // regardless; only the wait ran out.
                        return MutationResponse {
                            id: request.id,
                            outcome: Outcome::DeadlineExceeded,
                            durable: true,
                            applied: false,
                            shard: Some(shard_id),
                            indexed: live_count,
                            reshard_hint,
                            retry_after_us: 0,
                            error: Some(
                                "committed to the WAL; apply not confirmed in budget".into(),
                            ),
                        };
                    }
                    Err(RecvTimeoutError::Disconnected) => Err("shard worker gone".to_owned()),
                },
            }
        };

        match ack {
            Ok(()) => MutationResponse {
                id: request.id,
                outcome: Outcome::Ok,
                durable: true,
                applied: true,
                shard: Some(shard_id),
                indexed: live_count,
                reshard_hint,
                retry_after_us: 0,
                error: None,
            },
            Err(apply_error) => {
                self.self_heal(&mut w, shard_id, request, live_count, reshard_hint, &apply_error)
            }
        }
    }

    /// An apply failed after its in-worker retry budget: the shard's
    /// memory no longer matches the log. Rebuild it from the authoritative
    /// mirror — the same builder a cold open uses — and swap it into the
    /// fleet. If even the rebuild fails, quarantine the shard and trip the
    /// write gate: the log stays authoritative, and a half-open probe (or
    /// a restart) recovers.
    fn self_heal(
        &self,
        w: &mut WriteState,
        shard_id: usize,
        request: &MutationRequest,
        live_count: usize,
        reshard_hint: bool,
        apply_error: &str,
    ) -> MutationResponse {
        match self.rebuild_shard_locked(w, shard_id) {
            Ok(()) => MutationResponse {
                id: request.id,
                outcome: Outcome::Ok,
                durable: true,
                applied: true,
                shard: Some(shard_id),
                indexed: live_count,
                reshard_hint,
                retry_after_us: 0,
                error: Some(format!(
                    "apply failed ({apply_error}); shard {shard_id} rebuilt from the \
                     durable state"
                )),
            },
            Err(rebuild_error) => {
                {
                    let mut health = self.lock_health();
                    if let Some(entry) = health.get_mut(shard_id) {
                        entry.quarantined = true;
                    }
                }
                self.gate.trip();
                MutationResponse {
                    id: request.id,
                    outcome: Outcome::ReadOnly,
                    durable: true,
                    applied: false,
                    shard: Some(shard_id),
                    indexed: live_count,
                    reshard_hint,
                    retry_after_us: 0,
                    error: Some(format!(
                        "apply failed ({apply_error}); shard rebuild also failed \
                         ({rebuild_error}); shard quarantined, write gate tripped — the WAL \
                         stays authoritative and probes or a restart recover"
                    )),
                }
            }
        }
    }

    /// Rebuild one shard from the mirror and swap it into the fleet,
    /// resetting its health entry. Shared by mutation self-heal and the
    /// scrubber's mismatch repair.
    fn rebuild_shard_locked(&self, w: &mut WriteState, shard_id: usize) -> Result<(), String> {
        let count = self.lock_shards_read().len();
        let built = supervise(&self.config.retry, self.config.seed, shard_id as u64, |_| {
            build_shard(
                &w.store,
                self.algorithm,
                self.bands,
                &self.config,
                shard_id,
                count,
                &w.mirror,
                "serve::ingest",
            )
        });
        let (index, fingerprints) = match built {
            CellOutcome::Completed(Ok(contents)) => contents,
            // TimedOut cannot fire (shard builds carry no deadline), but a
            // typed failure is the honest fallback if that ever changes.
            CellOutcome::TimedOut => return Err("shard rebuild hit a deadline".into()),
            CellOutcome::Completed(Err(error)) => return Err(error),
            CellOutcome::Quarantined { attempts, error } => {
                return Err(format!("after {attempts} attempts: {error}"))
            }
        };
        if let Some(size) = w.sizes.get_mut(shard_id) {
            *size = index.len();
        }
        let shard = Shard::spawn(
            shard_id,
            index,
            fingerprints,
            self.config.queue_depth,
            self.config.retry,
            self.config.seed,
        )?;
        {
            let mut shards = self.lock_shards_write();
            // The old worker exits once its (now unreferenced) inbox
            // drains.
            shards[shard_id] = shard;
        }
        {
            let mut health = self.lock_health();
            if let Some(entry) = health.get_mut(shard_id) {
                *entry = ShardHealth::new();
            }
        }
        Ok(())
    }

    /// Take a snapshot now: rotate the WAL to a fresh generation, write
    /// the mirror atomically as that generation's snapshot, keep the
    /// newest two snapshots, and retire segments the second-newest
    /// snapshot subsumes. Returns the new generation.
    ///
    /// On *any* failure the previous generation — snapshot and covering
    /// segments — is intact and keeps serving recovery; an ENOSPC
    /// mid-write leaves no trace of the aborted generation.
    ///
    /// # Errors
    /// [`ServiceError::ReadOnlyService`] for WAL-less services,
    /// [`ServiceError::Snapshot`] for rotation/write/retention failures.
    pub fn snapshot(&self) -> Result<u64, ServiceError> {
        let Some(writer) = &self.writer else {
            return Err(ServiceError::ReadOnlyService);
        };
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        self.snapshot_locked(&mut w)
    }

    fn snapshot_locked(&self, w: &mut WriteState) -> Result<u64, ServiceError> {
        w.writes_since_snapshot = 0;
        // Rotate first: the snapshot subsumes everything below the fresh
        // generation, and new appends land in segments the snapshot's
        // replay floor covers.
        let gen =
            w.wal.rotate().map_err(|e| ServiceError::Snapshot(format!("rotating the WAL: {e}")))?;
        let provenance = provenance_of(&w.store);
        let dir = w.wal.dir().to_owned();
        let state = w.mirror.to_snapshot_state(gen);
        snapshot::write(&dir, &provenance, &state)
            .map_err(|e| ServiceError::Snapshot(e.to_string()))?;
        snapshot::retain_latest(&dir, 2)
            .map_err(|e| ServiceError::Snapshot(format!("retiring old snapshots: {e}")))?;
        // Lag-one retirement: segments stay until the *second*-newest
        // snapshot subsumes them, so a flipped bit in the newest snapshot
        // still has a fallback generation with covering history.
        let snaps = snapshot::list(&dir).map_err(|e| ServiceError::Snapshot(e.to_string()))?;
        if snaps.len() >= 2 {
            w.wal
                .retire_below(snaps[snaps.len() - 2].0)
                .map_err(|e| ServiceError::Snapshot(format!("retiring segments: {e}")))?;
        }
        self.snapshot_gen.store(gen, Ordering::Release);
        self.wal_records.store(w.wal.records(), Ordering::Release);
        self.wal_bytes.store(w.wal.len_bytes(), Ordering::Release);
        Ok(gen)
    }

    /// One integrity scrub pass: re-verify every snapshot and sealed WAL
    /// segment end-to-end (magic, frame CRCs, provenance, footer), then
    /// spot-check a strided sample of shard fingerprints against the
    /// authoritative mirror. Damage found is *healed*, not just reported:
    /// corrupt files are quarantined (renamed `*.bad`), a fresh snapshot
    /// re-establishes a durable recovery point, and a mismatching shard
    /// is quarantined and rebuilt from the mirror. Runs under the writer
    /// lock, so the sample it audits is exactly what the shards hold.
    ///
    /// # Errors
    /// [`ServiceError::ReadOnlyService`] for WAL-less services,
    /// [`ServiceError::Scrub`] when the pass itself cannot run (directory
    /// unreadable, or the injectable `serve::scrub` fault). Damage is
    /// never an `Err` — it is data in the [`ScrubReport`].
    pub fn scrub(&self) -> Result<ScrubReport, ServiceError> {
        if let Err(fault) = wmh_fault::point!("serve::scrub") {
            return Err(ServiceError::Scrub(fault.to_string()));
        }
        let Some(writer) = &self.writer else {
            return Err(ServiceError::ReadOnlyService);
        };
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let provenance = provenance_of(&w.store);
        let dir = w.wal.dir().to_owned();
        let findings = crate::scrub::scan_files(&dir, &provenance, w.wal.active_generation())
            .map_err(|e| ServiceError::Scrub(e.to_string()))?;
        let mut report = ScrubReport {
            snapshots_checked: findings.snapshots_checked,
            segments_checked: findings.segments_checked,
            corrupt_snapshots: findings
                .corrupt_snapshots
                .iter()
                .map(|(_, path, why)| format!("{}: {why}", path.display()))
                .collect(),
            corrupt_segments: findings.corrupt_segments.clone(),
            ids_spot_checked: 0,
            shards_audited: 0,
            mismatched_shards: Vec::new(),
            snapshot_taken: None,
            heal_errors: Vec::new(),
        };

        // Heal phase A — files. Quarantine damaged snapshots out of the
        // fallback walk, take a fresh snapshot so durability does not
        // depend on the damaged history, then quarantine damaged sealed
        // segments (often already retired by the fresh snapshot).
        if !findings.corrupt_snapshots.is_empty() || !findings.corrupt_segments.is_empty() {
            for (_, path, _) in &findings.corrupt_snapshots {
                let mut bad = path.clone().into_os_string();
                bad.push(".bad");
                if let Err(e) = std::fs::rename(path, &bad) {
                    report.heal_errors.push(format!("quarantining {}: {e}", path.display()));
                }
            }
            if !findings.corrupt_snapshots.is_empty() {
                if let Err(e) = crate::wal::sync_dir(&dir) {
                    report.heal_errors.push(format!("syncing {}: {e}", dir.display()));
                }
            }
            match self.snapshot_locked(&mut w) {
                Ok(gen) => report.snapshot_taken = Some(gen),
                Err(e) => report.heal_errors.push(format!("fresh snapshot: {e}")),
            }
            for &gen in &findings.corrupt_segments {
                if let Err(e) = w.wal.quarantine_segment(gen) {
                    report.heal_errors.push(format!("quarantining segment generation {gen}: {e}"));
                }
            }
        }

        // Phase B — spot-check shard fingerprints against the mirror. A
        // strided sample over the sorted live set is deterministic, so a
        // pinned-seed run audits the same ids every pass.
        let count = self.lock_shards_read().len();
        let mut live: Vec<u64> = w.mirror.live.iter().copied().collect();
        live.sort_unstable();
        let stride = (live.len() / SCRUB_SAMPLE).max(1);
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); count];
        for &id in live.iter().step_by(stride) {
            report.ids_spot_checked += 1;
            per_shard[(id % count as u64) as usize].push(id);
        }
        for (shard_id, ids) in per_shard.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            report.shards_audited += 1;
            let tag = shard_id.to_string();
            // The injectable corruption: a fired `serve::scrub_audit`
            // stands in for a shard whose memory has silently diverged.
            let mut mismatch = wmh_fault::point!("serve::scrub_audit", &tag).is_err();
            if !mismatch {
                let reply = {
                    let shards = self.lock_shards_read();
                    let (tx, rx) = mpsc::channel();
                    let job = Job::Audit(AuditJob { ids: ids.clone(), reply: tx });
                    if shards[shard_id].tx.send(job).is_err() {
                        report.heal_errors.push(format!("shard {shard_id}: audit inbox closed"));
                        continue;
                    }
                    rx
                };
                let answers = match reply.recv() {
                    Ok(answers) => answers,
                    Err(_) => {
                        report.heal_errors.push(format!("shard {shard_id}: audit worker gone"));
                        continue;
                    }
                };
                for (id, got) in &answers {
                    let expected = match self.expected_fingerprint(&w, *id) {
                        Ok(fp) => fp,
                        Err(e) => {
                            report.heal_errors.push(format!("fingerprinting id {id}: {e}"));
                            continue;
                        }
                    };
                    if got.as_ref() != Some(&expected) {
                        mismatch = true;
                        break;
                    }
                }
            }
            if mismatch {
                report.mismatched_shards.push(shard_id);
                {
                    let mut health = self.lock_health();
                    if let Some(entry) = health.get_mut(shard_id) {
                        entry.quarantined = true;
                    }
                }
                // Self-heal through the same rebuild the mutation path
                // uses; failure leaves the shard quarantined (fan-out
                // skips it, probes keep trying).
                if let Err(e) = self.rebuild_shard_locked(&mut w, shard_id) {
                    report.heal_errors.push(format!("rebuilding shard {shard_id}: {e}"));
                }
            }
        }
        Ok(report)
    }

    /// The fingerprint shard `id % count` must hold for `id`, derived
    /// from the authoritative mirror: overlay codes if the id drifted
    /// from the store, store codes otherwise.
    fn expected_fingerprint(&self, w: &WriteState, id: u64) -> Result<BbitFingerprint, String> {
        let codes = match w.mirror.overlays.get(&id) {
            Some(codes) => codes.clone(),
            None => w.store.get(id).map_err(|e| e.to_string())?.codes,
        };
        BbitFingerprint::pack(&codes, self.config.fingerprint_bits).map_err(|e| e.to_string())
    }

    /// Rebuild the fleet at `to` shards, blocking until the swap. Writes
    /// answer `read_only` for the duration; queries keep serving, degraded
    /// by the frozen (most-loaded) shard. The new partition is built by
    /// the cold-open builder over the mirror, so it is byte-identical to a
    /// from-scratch partition at `to` shards.
    ///
    /// # Errors
    /// [`ServiceError::ReadOnlyService`] for WAL-less services,
    /// [`ServiceError::Resharding`] when one is already running,
    /// [`ServiceError::Ingest`] when a shard build exhausts its retries
    /// (the old fleet stays in place).
    pub fn reshard_blocking(&self, to: usize) -> Result<ReshardReport, ServiceError> {
        let Some(writer) = &self.writer else {
            return Err(ServiceError::ReadOnlyService);
        };
        if to == 0 {
            return Err(ServiceError::BadConfig("shards must be positive".into()));
        }
        if self
            .resharding
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(ServiceError::Resharding);
        }
        let _flag = ReshardGuard(&self.resharding);
        // Taking the writer lock waits out any in-flight mutation, so the
        // mirror we build from includes everything acknowledged.
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let from = self.lock_shards_read().len();

        // Freeze the most-loaded shard — the skew source — behind the
        // quarantine machinery: queries degrade to partial, no probes.
        let frozen = w
            .sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &size)| size)
            .map_or(0, |(shard_id, _)| shard_id);
        {
            let mut health = self.lock_health();
            if let Some(entry) = health.get_mut(frozen) {
                entry.frozen = true;
            }
        }

        let built = build_fleet(
            &w.store,
            self.algorithm,
            self.bands,
            &self.config,
            to,
            &w.mirror,
            "serve::reshard",
        );
        let (shards, sizes) = match built {
            Ok(pair) => pair,
            Err(e) => {
                // Abort: unfreeze, old fleet intact, writes resume (the
                // guard clears the flag).
                let mut health = self.lock_health();
                if let Some(entry) = health.get_mut(frozen) {
                    entry.frozen = false;
                }
                return Err(e);
            }
        };
        {
            let mut fleet = self.lock_shards_write();
            let mut health = self.lock_health();
            *fleet = shards;
            *health = (0..to).map(|_| ShardHealth::new()).collect();
        }
        w.sizes = sizes;
        Ok(ReshardReport { from, to, points: w.mirror.live.len() })
    }

    /// Propose a better shard count, or `None` when the current partition
    /// is within the configured skew threshold (or skew detection is off,
    /// or the service is read-only). Deterministic: scans live ids against
    /// every candidate count up to `reshard_cap`.
    #[must_use]
    pub fn plan_reshard(&self) -> Option<usize> {
        let threshold = self.config.reshard_skew?;
        let writer = self.writer.as_ref()?;
        let w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let current = self.lock_shards_read().len();
        if imbalance(&w.sizes) < threshold {
            return None;
        }
        let cap = self.config.reshard_cap.max(current).max(1);
        let mut best = (current, imbalance(&w.sizes));
        for candidate in 1..=cap {
            if candidate == current {
                continue;
            }
            let mut counts = vec![0usize; candidate];
            for &id in &w.mirror.live {
                counts[(id % candidate as u64) as usize] += 1;
            }
            let skew = imbalance(&counts);
            if skew + 1e-9 < best.1 {
                best = (candidate, skew);
            }
        }
        (best.0 != current).then_some(best.0)
    }

    /// Kick off [`Self::reshard_blocking`] on a background thread if
    /// [`Self::plan_reshard`] proposes a count. Returns whether one
    /// started. Failures (including a concurrent re-shard) are absorbed —
    /// the old fleet keeps serving either way.
    pub fn spawn_reshard(self: &Arc<Self>) -> bool {
        let Some(to) = self.plan_reshard() else { return false };
        let service = Arc::clone(self);
        std::thread::Builder::new()
            .name("wmh-serve-reshard".into())
            .spawn(move || {
                let _ = service.reshard_blocking(to);
            })
            .is_ok()
    }

    /// Health / readiness snapshot. Durability gauges (`wal_records`,
    /// `wal_bytes`, `snapshot_generation`) read from atomics published by
    /// the write path, so health never blocks on the writer lock.
    pub fn health(&self) -> HealthResponse {
        let shards_total = self.lock_shards_read().len();
        let health = self.lock_health();
        let quarantined = health.iter().filter(|entry| entry.quarantined).count();
        let resharding = self.resharding.load(Ordering::Acquire);
        let half_open = self.writer.is_some() && !self.gate.is_open();
        let replay = self.recovery.as_ref().map(|r| &r.replay);
        HealthResponse {
            ready: quarantined < shards_total,
            indexed: self.indexed.load(Ordering::Acquire),
            shards_total,
            shards_quarantined: quarantined,
            inflight: self.inflight.load(Ordering::Acquire),
            read_only: self.writer.is_none() || half_open || resharding,
            half_open,
            resharding,
            wal_records: self.wal_records.load(Ordering::Acquire),
            wal_bytes: self.wal_bytes.load(Ordering::Acquire),
            replayed_records: replay.map_or(0, |r| r.records as u64),
            replay_bytes_discarded: replay.map_or(0, |r| r.bytes_discarded as u64),
            snapshot_generation: match self.snapshot_gen.load(Ordering::Acquire) {
                0 => None,
                gen => Some(gen),
            },
        }
    }

    /// The configuration the service runs under.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Sketch + fingerprint a document (the insert fast path).
    fn sketch_doc(&self, doc: &[(u64, f64)]) -> Result<(Sketch, BbitFingerprint), String> {
        let set = WeightedSet::from_pairs(doc.iter().copied())
            .map_err(|e| format!("bad document: {e}"))?;
        let sketch =
            self.sketcher.sketch(&set).map_err(|e| format!("unsketchable document: {e}"))?;
        let fp = BbitFingerprint::pack(&sketch.codes, self.config.fingerprint_bits)
            .map_err(|e| e.to_string())?;
        Ok((sketch, fp))
    }

    /// Poison-tolerant locks: a panicking thread (impossible by the
    /// crate's own contract, but the lock cannot know that) must not wedge
    /// the whole service.
    fn lock_health(&self) -> std::sync::MutexGuard<'_, Vec<ShardHealth>> {
        self.health.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shards_read(&self) -> std::sync::RwLockReadGuard<'_, Vec<Shard>> {
        self.shards.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shards_write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Shard>> {
        self.shards.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing each inbox ends its worker's `recv` loop; join so no
        // worker outlives the index it borrows conceptually.
        let shards =
            std::mem::take(&mut *self.shards.get_mut().unwrap_or_else(PoisonError::into_inner));
        for shard in shards {
            let Shard { tx, handle } = shard;
            drop(tx);
            let _ = handle.join();
        }
    }
}

/// Prepared write: the WAL record, the shard apply op, and (for streams)
/// the post-mutation HistoSketch state to commit into the mirror.
type PreparedWrite = (Mutation, ApplyOp, Option<HistoSketch>);

/// Validate a mutation against the live-id bookkeeping and derive its
/// (record, apply-op) pair. Runs entirely *before* the WAL append: every
/// `Err` here is a `bad_request` that commits nothing.
fn prepare_mutation(
    w: &WriteState,
    request: &MutationRequest,
    presketched: Option<(Sketch, BbitFingerprint)>,
    sketcher: &(dyn Sketcher + Send + Sync),
    config: &ServiceConfig,
) -> Result<PreparedWrite, String> {
    let id = request.id;
    match &request.kind {
        MutationKind::Insert { .. } => {
            if w.mirror.live.contains(&id) {
                return Err(format!("id {id} is already indexed (delete it first, or stream)"));
            }
            let (sketch, fp) =
                presketched.ok_or_else(|| "insert without a pre-sketched document".to_owned())?;
            let record = Mutation::Insert { id, codes: sketch.codes.clone() };
            Ok((record, ApplyOp::Insert { id, sketch, fp }, None))
        }
        MutationKind::Delete => {
            if !w.mirror.live.contains(&id) {
                return Err(format!("id {id} is not indexed"));
            }
            Ok((Mutation::Delete { id }, ApplyOp::Delete { id }, None))
        }
        MutationKind::Stream { lambda, items } => {
            // A static (non-streaming) live id has no histogram to decay;
            // streaming onto it would silently replace its content.
            let state = match w.mirror.streams.get(&id) {
                Some(state) => Some(state.clone()),
                None if w.mirror.live.contains(&id) => {
                    return Err(format!(
                        "id {id} is indexed but not a streaming document; delete it first"
                    ))
                }
                None => None,
            };
            if state.is_none() && items.is_empty() {
                return Err(format!("cannot create streaming id {id} from an empty item list"));
            }
            let mut state = match state {
                Some(state) => state,
                None => HistoSketch::new(w.store.seed(), sketcher.num_hashes())
                    .map_err(|e| e.to_string())?,
            };
            state.decay(*lambda).map_err(|e| e.to_string())?;
            for &(k, mass) in items {
                state.add(k, mass).map_err(|e| e.to_string())?;
            }
            let set = state.histogram().map_err(|e| format!("stream state: {e}"))?;
            let sketch =
                sketcher.sketch(&set).map_err(|e| format!("unsketchable stream state: {e}"))?;
            let fp = BbitFingerprint::pack(&sketch.codes, config.fingerprint_bits)
                .map_err(|e| e.to_string())?;
            let record = Mutation::Stream { id, lambda: *lambda, items: items.clone() };
            Ok((record, ApplyOp::Upsert { id, sketch, fp }, Some(state)))
        }
    }
}

/// Imbalance of a partition: max shard size over the ideal (uniform)
/// size. 1.0 is perfectly balanced; an empty fleet reads as balanced.
fn imbalance(sizes: &[usize]) -> f64 {
    let total: usize = sizes.iter().sum();
    let max = sizes.iter().copied().max().unwrap_or(0);
    if total == 0 || sizes.is_empty() {
        return 1.0;
    }
    (max * sizes.len()) as f64 / total as f64
}

/// The WAL/snapshot provenance binding of a store.
fn provenance_of(store: &SketchStore) -> WalProvenance {
    WalProvenance {
        algorithm: store.algorithm().to_owned(),
        seed: store.seed(),
        num_hashes: store.num_hashes(),
    }
}

/// Rebuild the store's sketcher from its recorded provenance.
fn build_sketcher(algorithm: Algorithm, store: &SketchStore) -> Result<DynSketcher, ServiceError> {
    algorithm
        .build(store.seed(), store.num_hashes(), &AlgorithmConfig::default())
        .map_err(|e| ServiceError::Build(e.to_string()))
}

/// What one shard ingest produces: its banded index plus the re-ranking
/// fingerprints for every point it owns.
type ShardContents = (LshIndex<DynSketcher>, HashMap<u64, BbitFingerprint>);

/// Spawned shard workers plus per-shard sizes, as produced by
/// [`build_fleet`].
type FleetParts = (Vec<Shard>, Vec<usize>);

/// Build every shard of a fleet at `count` shards from the mirror, spawn
/// the workers, and report per-shard sizes. Used by cold open, self-heal
/// (single shard via [`build_shard`]), and re-shard — one builder, so
/// every path converges byte-identical.
fn build_fleet(
    store: &SketchStore,
    algorithm: Algorithm,
    bands: Bands,
    config: &ServiceConfig,
    count: usize,
    mirror: &Mirror,
    failpoint: &'static str,
) -> Result<FleetParts, ServiceError> {
    let mut shards = Vec::with_capacity(count);
    let mut sizes = Vec::with_capacity(count);
    for shard_id in 0..count {
        let built = supervise(&config.retry, config.seed, shard_id as u64, |_| {
            build_shard(store, algorithm, bands, config, shard_id, count, mirror, failpoint)
        });
        let (index, fingerprints) = match built {
            CellOutcome::Completed(Ok(contents)) => contents,
            CellOutcome::Completed(Err(error)) => {
                return Err(ServiceError::Ingest { shard: shard_id, attempts: 1, error })
            }
            CellOutcome::TimedOut => {
                return Err(ServiceError::Ingest {
                    shard: shard_id,
                    attempts: 1,
                    error: "ingest deadline".into(),
                })
            }
            CellOutcome::Quarantined { attempts, error } => {
                return Err(ServiceError::Ingest { shard: shard_id, attempts, error })
            }
        };
        sizes.push(index.len());
        shards.push(
            Shard::spawn(
                shard_id,
                index,
                fingerprints,
                config.queue_depth,
                config.retry,
                config.seed,
            )
            .map_err(ServiceError::Spawn)?,
        );
    }
    Ok((shards, sizes))
}

/// One attempt at building a shard: batch-ingest its slice of the live
/// set in ascending id order, taking each id's current codes from the
/// mirror overlay (inserted or drifted ids) or the cold store. Every id
/// is inserted exactly once, and because query responses depend only on
/// index *content* (candidates and hits are sorted), a folded build is
/// byte-identical to one that applied the same mutations live. Injected
/// `failpoint` faults are transient (the supervisor retries the whole
/// build); everything else is deterministic and terminal.
#[allow(clippy::too_many_arguments)]
fn build_shard(
    store: &SketchStore,
    algorithm: Algorithm,
    bands: Bands,
    config: &ServiceConfig,
    shard_id: usize,
    count: usize,
    mirror: &Mirror,
    failpoint: &'static str,
) -> Attempt<Result<ShardContents, String>> {
    let tag = shard_id.to_string();
    let bits = config.fingerprint_bits;
    let sketcher = match build_sketcher(algorithm, store) {
        Ok(sketcher) => sketcher,
        Err(e) => return Attempt::Done(Err(e.to_string())),
    };
    let mut index = match LshIndex::new(sketcher, bands) {
        Ok(index) => index,
        Err(e) => return Attempt::Done(Err(e.to_string())),
    };
    let mut ids: Vec<u64> =
        mirror.live.iter().copied().filter(|id| (id % count as u64) as usize == shard_id).collect();
    ids.sort_unstable();
    let mut fingerprints = HashMap::with_capacity(ids.len());
    for batch in ids.chunks(INGEST_BATCH.max(1)) {
        if let Err(fault) = wmh_fault::point!(failpoint, &tag) {
            return Attempt::Transient(fault.to_string());
        }
        for &id in batch {
            let sketch = match mirror.overlays.get(&id) {
                Some(codes) => Sketch {
                    algorithm: store.algorithm().to_owned(),
                    seed: store.seed(),
                    codes: codes.clone(),
                },
                None => match store.get(id) {
                    Ok(sketch) => sketch,
                    Err(e) => return Attempt::Done(Err(e.to_string())),
                },
            };
            let fp = match BbitFingerprint::pack(&sketch.codes, bits) {
                Ok(fp) => fp,
                Err(e) => return Attempt::Done(Err(e.to_string())),
            };
            if let Err(e) = index.insert_sketch(id, sketch) {
                return Attempt::Done(Err(e.to_string()));
            }
            fingerprints.insert(id, fp);
        }
    }
    Attempt::Done(Ok((index, fingerprints)))
}
