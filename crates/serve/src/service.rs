//! The service core: batched ingest into shard-local indexes, admission
//! control, deadline-bounded fan-out, and a deterministic merge.
//!
//! [`Service::query`] is total: it returns a [`QueryResponse`] for every
//! input — never an `Err`, never a panic, never a silently dropped
//! request. Degradation is *data*, not control flow: the response's
//! [`Outcome`], `coverage`, `shed`, and `error` fields say exactly what
//! happened.
//!
//! ## Shard health and quarantine
//!
//! Each shard carries a consecutive-failure counter, updated by the merge
//! path from the slices it actually received. Reaching
//! [`ServiceConfig::quarantine_after`] failures quarantines the shard: it
//! is skipped at fan-out (its slice shows up as missing coverage, not as
//! latency), except that every [`ServiceConfig::probe_every`]-th request
//! is sent through anyway — the half-open probe. One successful probe
//! restores the shard, and because results flow only from received
//! slices, a recovered service is *byte-identical* to one that never
//! failed — the chaos soak pins exactly that.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::deadline::Deadline;
use crate::fingerprint::BbitFingerprint;
use crate::protocol::{HealthResponse, Outcome, QueryRequest, QueryResponse};
use crate::shard::{DynSketcher, Job, Shard, Slice, SliceOutcome};
use wmh_core::{Algorithm, AlgorithmConfig, SketchStore, Sketcher};
use wmh_fault::supervisor::{supervise, Attempt, CellOutcome, RetryPolicy};
use wmh_lsh::{Bands, LshIndex};
use wmh_sets::WeightedSet;

/// Sketches ingested between `serve::ingest` failpoint hits; a transient
/// ingest fault restarts the whole shard build under the retry policy, so
/// the batch is the unit of retried work.
const INGEST_BATCH: usize = 64;

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (worker threads). Defaults to the core count,
    /// capped at 8.
    pub shards: usize,
    /// Bound on each shard's inbox; a full inbox sheds the slice.
    pub queue_depth: usize,
    /// Global cap on requests between admission and response.
    pub max_inflight: usize,
    /// Budget applied when a query does not carry `deadline_us`.
    pub default_deadline_us: u64,
    /// b-bit width for the packed re-ranking fingerprints (`1..=32`).
    pub fingerprint_bits: u32,
    /// Banding scheme; `None` derives one for a 0.5 similarity threshold
    /// from the store's fingerprint length.
    pub bands: Option<Bands>,
    /// Consecutive shard failures before quarantine.
    pub quarantine_after: u32,
    /// Every Nth request is routed through quarantined shards as a
    /// half-open recovery probe.
    pub probe_every: u64,
    /// Retry policy: ingest retries and the `retry_after_us` backoff hint
    /// (the sweep supervisor's seeded-deterministic policy).
    pub retry: RetryPolicy,
    /// Master seed for every deterministic schedule in the service.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(8),
            queue_depth: 64,
            max_inflight: 256,
            default_deadline_us: 50_000,
            fingerprint_bits: 16,
            bands: None,
            quarantine_after: 3,
            probe_every: 8,
            retry: RetryPolicy::default(),
            seed: 0x5E27E,
        }
    }
}

/// Errors surfaced while *building* a service. (Query-time failures are
/// never errors — they are typed response outcomes.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The sketch store holds no points.
    EmptyStore,
    /// The store's recorded algorithm is not in the catalog.
    UnknownAlgorithm(String),
    /// A configuration field is unusable.
    BadConfig(String),
    /// Rebuilding the store's sketcher failed.
    Build(String),
    /// A shard's ingest failed even after the retry budget.
    Ingest {
        /// Which shard.
        shard: usize,
        /// Attempts made.
        attempts: u32,
        /// The last failure, verbatim.
        error: String,
    },
    /// The OS refused a worker thread.
    Spawn(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyStore => write!(f, "sketch store is empty"),
            Self::UnknownAlgorithm(name) => write!(f, "store algorithm {name:?} not in catalog"),
            Self::BadConfig(e) => write!(f, "bad service config: {e}"),
            Self::Build(e) => write!(f, "rebuilding sketcher from store provenance: {e}"),
            Self::Ingest { shard, attempts, error } => {
                write!(f, "shard {shard} ingest failed after {attempts} attempts: {error}")
            }
            Self::Spawn(e) => write!(f, "spawning shard worker: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Per-shard health bookkeeping, updated by the merge path.
struct ShardHealth {
    consecutive_failures: u32,
    quarantined: bool,
}

/// Decrement-on-drop guard so the in-flight gauge survives every return
/// path (including future early returns) without manual accounting.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A sharded similarity-search service (see the crate docs).
pub struct Service {
    config: ServiceConfig,
    sketcher: DynSketcher,
    shards: Vec<Shard>,
    health: Mutex<Vec<ShardHealth>>,
    inflight: AtomicUsize,
    requests: AtomicU64,
    indexed: usize,
}

impl Service {
    /// Build a service from a sketch store: rebuild the sketcher from the
    /// store's provenance, partition points round-robin by id, and batch-
    /// ingest each partition into its shard's banded index (transient
    /// ingest faults are retried under `config.retry`).
    ///
    /// # Errors
    /// Any [`ServiceError`] variant; notably [`ServiceError::Ingest`] when
    /// a shard's ingest keeps failing after the whole retry budget.
    pub fn from_store(store: &SketchStore, config: ServiceConfig) -> Result<Self, ServiceError> {
        if store.is_empty() {
            return Err(ServiceError::EmptyStore);
        }
        if config.shards == 0 {
            return Err(ServiceError::BadConfig("shards must be positive".into()));
        }
        if !(1..=32).contains(&config.fingerprint_bits) {
            return Err(ServiceError::BadConfig(format!(
                "fingerprint_bits {} outside 1..=32",
                config.fingerprint_bits
            )));
        }
        if config.probe_every == 0 {
            return Err(ServiceError::BadConfig("probe_every must be positive".into()));
        }
        let algorithm = Algorithm::by_name(store.algorithm())
            .ok_or_else(|| ServiceError::UnknownAlgorithm(store.algorithm().to_owned()))?;
        let bands = match config.bands {
            Some(bands) => bands,
            None => Bands::try_for_threshold(store.num_hashes(), 0.5)
                .map_err(|e| ServiceError::BadConfig(e.to_string()))?,
        };
        let sketcher = build_sketcher(algorithm, store)?;
        let mut shards = Vec::with_capacity(config.shards);
        for shard_id in 0..config.shards {
            let ids: Vec<u64> = store
                .ids()
                .iter()
                .copied()
                .filter(|id| (id % config.shards as u64) as usize == shard_id)
                .collect();
            let built = supervise(&config.retry, config.seed, shard_id as u64, |_| {
                ingest_shard(store, algorithm, bands, config.fingerprint_bits, shard_id, &ids)
            });
            let (index, fingerprints) = match built {
                CellOutcome::Completed(Ok(pair)) => pair,
                CellOutcome::Completed(Err(error)) => {
                    return Err(ServiceError::Ingest { shard: shard_id, attempts: 1, error })
                }
                CellOutcome::TimedOut => {
                    return Err(ServiceError::Ingest {
                        shard: shard_id,
                        attempts: 1,
                        error: "ingest deadline".into(),
                    })
                }
                CellOutcome::Quarantined { attempts, error } => {
                    return Err(ServiceError::Ingest { shard: shard_id, attempts, error })
                }
            };
            shards.push(
                Shard::spawn(shard_id, index, fingerprints, config.queue_depth)
                    .map_err(ServiceError::Spawn)?,
            );
        }
        let health = (0..config.shards)
            .map(|_| ShardHealth { consecutive_failures: 0, quarantined: false })
            .collect();
        Ok(Self {
            indexed: store.len(),
            health: Mutex::new(health),
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            sketcher,
            shards,
            config,
        })
    }

    /// Answer a similarity query. Total: every input maps to a typed
    /// [`QueryResponse`]; see [`Outcome`] for the verdict taxonomy.
    pub fn query(&self, request: &QueryRequest) -> QueryResponse {
        let shards_total = self.shards.len();
        let request_id = self.requests.fetch_add(1, Ordering::Relaxed);
        let budget = request.deadline_us.unwrap_or(self.config.default_deadline_us);
        let deadline = Deadline::after(Duration::from_micros(budget));

        // Admission: the global in-flight cap, plus the injectable
        // `serve::admission` rejection for overload drills.
        let admitted = self.inflight.fetch_add(1, Ordering::AcqRel);
        let _guard = InflightGuard(&self.inflight);
        let admission_fault = wmh_fault::point!("serve::admission").err();
        if admitted >= self.config.max_inflight || admission_fault.is_some() {
            let backoff = self.config.retry.backoff(self.config.seed, request_id, 1);
            let mut response = QueryResponse::empty(
                request.id,
                Outcome::Overloaded,
                shards_total,
                Some(admission_fault.map_or_else(
                    || format!("{admitted} requests in flight at cap {}", self.config.max_inflight),
                    |fault| fault.to_string(),
                )),
            );
            response.retry_after_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            return response;
        }

        // Sketch once at the front; shards only ever probe and re-rank.
        let set = match WeightedSet::from_pairs(request.doc.iter().copied()) {
            Ok(set) => set,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(format!("bad document: {e}")),
                )
            }
        };
        let sketch = match self.sketcher.sketch(&set) {
            Ok(sketch) => sketch,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(format!("unsketchable document: {e}")),
                )
            }
        };
        let fp = match BbitFingerprint::pack(&sketch.codes, self.config.fingerprint_bits) {
            Ok(fp) => fp,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(e.to_string()),
                )
            }
        };
        if deadline.expired() {
            return QueryResponse::empty(
                request.id,
                Outcome::DeadlineExceeded,
                shards_total,
                Some(format!("budget {budget}us spent before fan-out")),
            );
        }

        // Fan out. Quarantined shards are skipped except on half-open
        // probe requests; full inboxes shed explicitly.
        let sketch = Arc::new(sketch);
        let fp = Arc::new(fp);
        let (reply_tx, reply_rx) = mpsc::channel::<Slice>();
        let probing = request_id.is_multiple_of(self.config.probe_every);
        let mut sent = 0usize;
        let mut shed = 0usize;
        {
            let health = self.lock_health();
            for (shard_id, shard) in self.shards.iter().enumerate() {
                if health[shard_id].quarantined && !probing {
                    continue;
                }
                let job = Job {
                    sketch: Arc::clone(&sketch),
                    fp: Arc::clone(&fp),
                    k: request.k,
                    deadline,
                    reply: reply_tx.clone(),
                };
                match shard.tx.try_send(job) {
                    Ok(()) => sent += 1,
                    // Explicit load-shedding: the slice is *counted*, not
                    // silently missing.
                    Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => shed += 1,
                }
            }
        }
        drop(reply_tx);

        // Merge: collect slices until the budget expires or every
        // fanned-out shard reported. A missing slice never blocks — it
        // becomes missing coverage.
        let merge_fault = wmh_fault::point!("serve::merge").err();
        let mut results: Vec<(u64, f64)> = Vec::new();
        let mut succeeded: Vec<usize> = Vec::new();
        let mut failures: Vec<(usize, String)> = Vec::new();
        if merge_fault.is_none() {
            let mut received = 0usize;
            while received < sent {
                let slice = match deadline.remaining() {
                    None => reply_rx.recv().ok(),
                    Some(left) if left.is_zero() => None,
                    Some(left) => reply_rx.recv_timeout(left).ok(),
                };
                let Some(slice) = slice else { break };
                received += 1;
                match slice.outcome {
                    SliceOutcome::Hits(mut hits) => {
                        results.append(&mut hits);
                        succeeded.push(slice.shard);
                    }
                    SliceOutcome::Expired => {}
                    SliceOutcome::Failed(error) => failures.push((slice.shard, error)),
                }
            }
        }

        // Health accounting from the slices actually received.
        {
            let mut health = self.lock_health();
            for &shard_id in &succeeded {
                health[shard_id].consecutive_failures = 0;
                health[shard_id].quarantined = false;
            }
            for (shard_id, _) in &failures {
                let entry = &mut health[*shard_id];
                entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
                if entry.consecutive_failures >= self.config.quarantine_after {
                    entry.quarantined = true;
                }
            }
        }

        let answered = succeeded.len();
        let outcome = if answered == shards_total {
            Outcome::Ok
        } else if answered == 0 && deadline.expired() {
            Outcome::DeadlineExceeded
        } else {
            Outcome::Partial
        };
        let error = merge_fault
            .map(|fault| format!("merge: {fault}"))
            .or_else(|| failures.first().map(|(shard_id, e)| format!("shard {shard_id}: {e}")));
        results.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        results.truncate(request.k);
        QueryResponse {
            id: request.id,
            outcome,
            results,
            coverage: answered as f64 / shards_total as f64,
            shards_total,
            shards_answered: answered,
            shed,
            retry_after_us: 0,
            error,
        }
    }

    /// Health / readiness snapshot.
    pub fn health(&self) -> HealthResponse {
        let health = self.lock_health();
        let quarantined = health.iter().filter(|entry| entry.quarantined).count();
        HealthResponse {
            ready: quarantined < self.shards.len(),
            indexed: self.indexed,
            shards_total: self.shards.len(),
            shards_quarantined: quarantined,
            inflight: self.inflight.load(Ordering::Acquire),
        }
    }

    /// The configuration the service runs under.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Poison-tolerant health lock: a panicking thread (impossible by the
    /// crate's own contract, but the lock cannot know that) must not wedge
    /// the whole service.
    fn lock_health(&self) -> std::sync::MutexGuard<'_, Vec<ShardHealth>> {
        self.health.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing each inbox ends its worker's `recv` loop; join so no
        // worker outlives the index it borrows conceptually.
        for shard in self.shards.drain(..) {
            let Shard { tx, handle } = shard;
            drop(tx);
            let _ = handle.join();
        }
    }
}

/// Rebuild the store's sketcher from its recorded provenance.
fn build_sketcher(algorithm: Algorithm, store: &SketchStore) -> Result<DynSketcher, ServiceError> {
    algorithm
        .build(store.seed(), store.num_hashes(), &AlgorithmConfig::default())
        .map_err(|e| ServiceError::Build(e.to_string()))
}

/// What one shard ingest produces: its banded index plus the re-ranking
/// fingerprints for every point it owns.
type ShardContents = (LshIndex<DynSketcher>, HashMap<u64, BbitFingerprint>);

/// One attempt at building a shard's index + fingerprints. Injected
/// `serve::ingest` faults are transient (the supervisor retries the whole
/// build); everything else is deterministic and terminal.
fn ingest_shard(
    store: &SketchStore,
    algorithm: Algorithm,
    bands: Bands,
    bits: u32,
    shard_id: usize,
    ids: &[u64],
) -> Attempt<Result<ShardContents, String>> {
    let tag = shard_id.to_string();
    let sketcher = match build_sketcher(algorithm, store) {
        Ok(sketcher) => sketcher,
        Err(e) => return Attempt::Done(Err(e.to_string())),
    };
    let mut index = match LshIndex::new(sketcher, bands) {
        Ok(index) => index,
        Err(e) => return Attempt::Done(Err(e.to_string())),
    };
    let mut fingerprints = HashMap::with_capacity(ids.len());
    for batch in ids.chunks(INGEST_BATCH.max(1)) {
        if let Err(fault) = wmh_fault::point!("serve::ingest", &tag) {
            return Attempt::Transient(fault.to_string());
        }
        for &id in batch {
            let sketch = match store.get(id) {
                Ok(sketch) => sketch,
                Err(e) => return Attempt::Done(Err(e.to_string())),
            };
            let fp = match BbitFingerprint::pack(&sketch.codes, bits) {
                Ok(fp) => fp,
                Err(e) => return Attempt::Done(Err(e.to_string())),
            };
            if let Err(e) = index.insert_sketch(id, sketch) {
                return Attempt::Done(Err(e.to_string()));
            }
            fingerprints.insert(id, fp);
        }
    }
    Attempt::Done(Ok((index, fingerprints)))
}
