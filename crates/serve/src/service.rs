//! The service core: batched ingest into shard-local indexes, admission
//! control, deadline-bounded fan-out, a deterministic merge — and, for
//! services opened over a write-ahead log, the crash-safe live mutation
//! path.
//!
//! [`Service::query`] and [`Service::mutate`] are total: they return a
//! typed response for every input — never an `Err`, never a panic, never
//! a silently dropped request. Degradation is *data*, not control flow:
//! the response's [`Outcome`], `coverage`/`durable`/`applied`, and `error`
//! fields say exactly what happened.
//!
//! ## Shard health and quarantine
//!
//! Each shard carries a consecutive-failure counter, updated by the merge
//! path from the slices it actually received. Reaching
//! [`ServiceConfig::quarantine_after`] failures quarantines the shard: it
//! is skipped at fan-out (its slice shows up as missing coverage, not as
//! latency), except that every [`ServiceConfig::probe_every`]-th request
//! is sent through anyway — the half-open probe. One successful probe
//! restores the shard, and because results flow only from received
//! slices, a recovered service is *byte-identical* to one that never
//! failed — the chaos soak pins exactly that.
//!
//! ## The write path (see also [`crate::wal`])
//!
//! Writes are serialized through one writer lock and follow a fixed
//! order: validate → durable WAL append → mirror update → dispatch to the
//! owning shard. The append is the commit point; everything after it is
//! reconstructible, so a SIGKILL anywhere replays to the exact
//! acknowledged state. An apply failure inside a shard (retry budget
//! exhausted) is self-healed by rebuilding that shard from the store +
//! WAL — the same code path a cold open uses, so the repaired shard is
//! byte-identical to never having failed.
//!
//! ## Re-sharding
//!
//! [`Service::reshard_blocking`] rebuilds the whole fleet at a new shard
//! count behind the quarantine machinery: writes degrade to `read_only`,
//! the most-loaded shard is frozen (queries serve degraded-but-correct
//! `partial` results from the rest), the new partition is built from the
//! store + WAL — the same builder as a cold open, so the converged fleet
//! is byte-identical to a from-scratch partition — and swapped in under
//! the fleet lock. Skew detection ([`Service::plan_reshard`]) drives the
//! `reshard_hint` response field; the TCP front end turns the hint into a
//! background re-shard.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

use crate::deadline::Deadline;
use crate::fingerprint::BbitFingerprint;
use crate::protocol::{
    HealthResponse, MutationKind, MutationRequest, MutationResponse, Outcome, QueryRequest,
    QueryResponse,
};
use crate::shard::{ApplyJob, ApplyOp, DynSketcher, Job, QueryJob, Shard, Slice, SliceOutcome};
use crate::wal::{Mutation, ReplayReport, Wal, WalError, WalProvenance};
use wmh_core::extensions::HistoSketch;
use wmh_core::{Algorithm, AlgorithmConfig, Sketch, SketchStore, Sketcher};
use wmh_fault::supervisor::{supervise, Attempt, CellOutcome};
use wmh_lsh::{Bands, LshIndex};
use wmh_sets::WeightedSet;

/// Sketches ingested (or WAL records replayed) between failpoint hits; a
/// transient build fault restarts the whole shard build under the retry
/// policy, so the batch is the unit of retried work.
const INGEST_BATCH: usize = 64;

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (worker threads). Defaults to the core count,
    /// capped at 8. This is the *cold-open* count: a live re-shard changes
    /// the running fleet, but a restart partitions at this count again.
    pub shards: usize,
    /// Bound on each shard's inbox; a full inbox sheds the slice.
    pub queue_depth: usize,
    /// Global cap on requests between admission and response.
    pub max_inflight: usize,
    /// Budget applied when a request does not carry `deadline_us`.
    pub default_deadline_us: u64,
    /// b-bit width for the packed re-ranking fingerprints (`1..=32`).
    pub fingerprint_bits: u32,
    /// Banding scheme; `None` derives one for a 0.5 similarity threshold
    /// from the store's fingerprint length.
    pub bands: Option<Bands>,
    /// Consecutive shard failures before quarantine.
    pub quarantine_after: u32,
    /// Every Nth request is routed through quarantined shards as a
    /// half-open recovery probe.
    pub probe_every: u64,
    /// Retry policy: ingest/WAL/apply retries and the `retry_after_us`
    /// backoff hint (the sweep supervisor's seeded-deterministic policy).
    pub retry: wmh_fault::supervisor::RetryPolicy,
    /// Master seed for every deterministic schedule in the service.
    pub seed: u64,
    /// Id-distribution imbalance (max shard size / ideal size) at which
    /// mutation responses raise `reshard_hint`; `None` disables skew
    /// detection.
    pub reshard_skew: Option<f64>,
    /// Largest shard count [`Service::plan_reshard`] will propose.
    pub reshard_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(8),
            queue_depth: 64,
            max_inflight: 256,
            default_deadline_us: 50_000,
            fingerprint_bits: 16,
            bands: None,
            quarantine_after: 3,
            probe_every: 8,
            retry: wmh_fault::supervisor::RetryPolicy::default(),
            seed: 0x5E27E,
            reshard_skew: None,
            reshard_cap: 8,
        }
    }
}

/// Errors surfaced while *building* or *re-sharding* a service. (Query-
/// and mutation-time failures are never errors — they are typed response
/// outcomes.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The sketch store holds no points.
    EmptyStore,
    /// The store's recorded algorithm is not in the catalog.
    UnknownAlgorithm(String),
    /// A configuration field is unusable.
    BadConfig(String),
    /// Rebuilding the store's sketcher failed.
    Build(String),
    /// A shard's ingest failed even after the retry budget.
    Ingest {
        /// Which shard.
        shard: usize,
        /// Attempts made.
        attempts: u32,
        /// The last failure, verbatim.
        error: String,
    },
    /// The OS refused a worker thread.
    Spawn(String),
    /// Opening or replaying the write-ahead log failed.
    Wal(String),
    /// A re-shard was requested while one is already in progress.
    Resharding,
    /// The operation needs the write path, but the service was built
    /// read-only ([`Service::from_store`]).
    ReadOnlyService,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyStore => write!(f, "sketch store is empty"),
            Self::UnknownAlgorithm(name) => write!(f, "store algorithm {name:?} not in catalog"),
            Self::BadConfig(e) => write!(f, "bad service config: {e}"),
            Self::Build(e) => write!(f, "rebuilding sketcher from store provenance: {e}"),
            Self::Ingest { shard, attempts, error } => {
                write!(f, "shard {shard} ingest failed after {attempts} attempts: {error}")
            }
            Self::Spawn(e) => write!(f, "spawning shard worker: {e}"),
            Self::Wal(e) => write!(f, "write-ahead log: {e}"),
            Self::Resharding => write!(f, "a re-shard is already in progress"),
            Self::ReadOnlyService => {
                write!(f, "service was opened read-only (no write-ahead log)")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Per-shard health bookkeeping, updated by the merge path.
struct ShardHealth {
    consecutive_failures: u32,
    quarantined: bool,
    /// Set for the duration of a re-shard on the shard being rebuilt:
    /// skipped at fan-out unconditionally (no half-open probes — the
    /// freeze lifts when the re-shard finishes, not when a probe
    /// succeeds).
    frozen: bool,
}

impl ShardHealth {
    fn new() -> Self {
        Self { consecutive_failures: 0, quarantined: false, frozen: false }
    }
}

/// Decrement-on-drop guard so the in-flight gauge survives every return
/// path (including future early returns) without manual accounting.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Clear-on-drop guard for the `resharding` flag, so every exit path of a
/// re-shard (including build failure) re-opens the write path.
struct ReshardGuard<'a>(&'a AtomicBool);

impl Drop for ReshardGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Everything the write path owns, serialized under one lock: the WAL,
/// its in-memory mirror (the store + mutation list every rebuild replays),
/// per-id streaming states, and the live-id bookkeeping.
struct WriteState {
    wal: Wal,
    /// The base snapshot every rebuild starts from.
    store: SketchStore,
    /// Committed mutations, in log order — the WAL's in-memory mirror.
    mutations: Vec<Mutation>,
    /// Per-id HistoSketch states for streaming documents.
    streams: HashMap<u64, HistoSketch>,
    /// Ids currently indexed (store ∪ inserts ∖ deletes).
    live: HashSet<u64>,
    /// Live points per shard of the *current* fleet (skew detection).
    sizes: Vec<usize>,
}

/// What a completed re-shard reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardReport {
    /// Shard count before.
    pub from: usize,
    /// Shard count after.
    pub to: usize,
    /// Live points re-partitioned.
    pub points: usize,
}

/// A sharded similarity-search service (see the crate docs).
pub struct Service {
    config: ServiceConfig,
    sketcher: DynSketcher,
    algorithm: Algorithm,
    bands: Bands,
    shards: RwLock<Vec<Shard>>,
    health: Mutex<Vec<ShardHealth>>,
    inflight: AtomicUsize,
    requests: AtomicU64,
    indexed: AtomicUsize,
    read_only: AtomicBool,
    resharding: AtomicBool,
    writer: Option<Mutex<WriteState>>,
    wal_recovery: Option<ReplayReport>,
}

impl Service {
    /// Build a *read-only* service from a sketch store: rebuild the
    /// sketcher from the store's provenance, partition points round-robin
    /// by id, and batch-ingest each partition into its shard's banded
    /// index (transient ingest faults are retried under `config.retry`).
    /// Mutations against it answer `read_only`.
    ///
    /// # Errors
    /// Any [`ServiceError`] variant; notably [`ServiceError::Ingest`] when
    /// a shard's ingest keeps failing after the whole retry budget.
    pub fn from_store(store: &SketchStore, config: ServiceConfig) -> Result<Self, ServiceError> {
        Self::build(store, None, config)
    }

    /// Open a *mutable* service: everything [`Service::from_store`] does,
    /// plus a write-ahead log at `wal_path`. An existing log is verified
    /// against the store's provenance and replayed — after a crash the
    /// service state is byte-identical to the acknowledged pre-crash
    /// state. The store is snapshotted (owned) so shards can be rebuilt
    /// at any time.
    ///
    /// # Errors
    /// [`ServiceError::Wal`] for log open/verify/replay failures, plus
    /// everything [`Service::from_store`] can return.
    pub fn open(
        store: &SketchStore,
        wal_path: &Path,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        Self::build(store, Some(wal_path), config)
    }

    fn build(
        store: &SketchStore,
        wal_path: Option<&Path>,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        if store.is_empty() {
            return Err(ServiceError::EmptyStore);
        }
        if config.shards == 0 {
            return Err(ServiceError::BadConfig("shards must be positive".into()));
        }
        if !(1..=32).contains(&config.fingerprint_bits) {
            return Err(ServiceError::BadConfig(format!(
                "fingerprint_bits {} outside 1..=32",
                config.fingerprint_bits
            )));
        }
        if config.probe_every == 0 {
            return Err(ServiceError::BadConfig("probe_every must be positive".into()));
        }
        if config.reshard_skew.is_some_and(|t| t.is_nan() || t < 1.0) {
            return Err(ServiceError::BadConfig("reshard_skew must be >= 1.0".into()));
        }
        let algorithm = Algorithm::by_name(store.algorithm())
            .ok_or_else(|| ServiceError::UnknownAlgorithm(store.algorithm().to_owned()))?;
        let bands = match config.bands {
            Some(bands) => bands,
            None => Bands::try_for_threshold(store.num_hashes(), 0.5)
                .map_err(|e| ServiceError::BadConfig(e.to_string()))?,
        };
        let sketcher = build_sketcher(algorithm, store)?;

        let (wal, mutations, recovery) = match wal_path {
            Some(path) => {
                let provenance = WalProvenance {
                    algorithm: store.algorithm().to_owned(),
                    seed: store.seed(),
                    num_hashes: store.num_hashes(),
                };
                let (wal, mutations, report) =
                    Wal::open(path, &provenance).map_err(|e| ServiceError::Wal(e.to_string()))?;
                (Some(wal), mutations, Some(report))
            }
            None => (None, Vec::new(), None),
        };

        let (shards, sizes, streams) = build_fleet(
            store,
            algorithm,
            bands,
            &config,
            config.shards,
            &mutations,
            "serve::ingest",
        )?;
        let health = (0..config.shards).map(|_| ShardHealth::new()).collect();
        let live = live_ids(store, &mutations);

        let writer = wal.map(|wal| {
            Mutex::new(WriteState {
                wal,
                store: store.clone(),
                mutations,
                streams,
                live: live.clone(),
                sizes,
            })
        });
        Ok(Self {
            indexed: AtomicUsize::new(live.len()),
            health: Mutex::new(health),
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
            resharding: AtomicBool::new(false),
            shards: RwLock::new(shards),
            wal_recovery: recovery,
            sketcher,
            algorithm,
            bands,
            writer,
            config,
        })
    }

    /// What WAL replay found at open time (`None` for [`Self::from_store`]
    /// services).
    #[must_use]
    pub fn wal_recovery(&self) -> Option<&ReplayReport> {
        self.wal_recovery.as_ref()
    }

    /// Answer a similarity query. Total: every input maps to a typed
    /// [`QueryResponse`]; see [`Outcome`] for the verdict taxonomy.
    pub fn query(&self, request: &QueryRequest) -> QueryResponse {
        let request_id = self.requests.fetch_add(1, Ordering::Relaxed);
        let budget = request.deadline_us.unwrap_or(self.config.default_deadline_us);
        let deadline = Deadline::after(Duration::from_micros(budget));
        let shards_total = self.lock_shards_read().len();

        // Admission: the global in-flight cap, plus the injectable
        // `serve::admission` rejection for overload drills.
        let admitted = self.inflight.fetch_add(1, Ordering::AcqRel);
        let _guard = InflightGuard(&self.inflight);
        let admission_fault = wmh_fault::point!("serve::admission").err();
        if admitted >= self.config.max_inflight || admission_fault.is_some() {
            let backoff = self.config.retry.backoff(self.config.seed, request_id, 1);
            let mut response = QueryResponse::empty(
                request.id,
                Outcome::Overloaded,
                shards_total,
                Some(admission_fault.map_or_else(
                    || format!("{admitted} requests in flight at cap {}", self.config.max_inflight),
                    |fault| fault.to_string(),
                )),
            );
            response.retry_after_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            return response;
        }

        // Sketch once at the front; shards only ever probe and re-rank.
        let set = match WeightedSet::from_pairs(request.doc.iter().copied()) {
            Ok(set) => set,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(format!("bad document: {e}")),
                )
            }
        };
        let sketch = match self.sketcher.sketch(&set) {
            Ok(sketch) => sketch,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(format!("unsketchable document: {e}")),
                )
            }
        };
        let fp = match BbitFingerprint::pack(&sketch.codes, self.config.fingerprint_bits) {
            Ok(fp) => fp,
            Err(e) => {
                return QueryResponse::empty(
                    request.id,
                    Outcome::BadRequest,
                    shards_total,
                    Some(e.to_string()),
                )
            }
        };
        if deadline.expired() {
            return QueryResponse::empty(
                request.id,
                Outcome::DeadlineExceeded,
                shards_total,
                Some(format!("budget {budget}us spent before fan-out")),
            );
        }

        // Fan out. Frozen shards (mid-re-shard) are skipped always;
        // quarantined shards are skipped except on half-open probe
        // requests; full inboxes shed explicitly.
        let sketch = Arc::new(sketch);
        let fp = Arc::new(fp);
        let (reply_tx, reply_rx) = mpsc::channel::<Slice>();
        let probing = request_id.is_multiple_of(self.config.probe_every);
        let mut sent = 0usize;
        let mut shed = 0usize;
        let shards_total = {
            let shards = self.lock_shards_read();
            let health = self.lock_health();
            for (shard_id, shard) in shards.iter().enumerate() {
                let entry = &health[shard_id];
                if entry.frozen || (entry.quarantined && !probing) {
                    continue;
                }
                let job = Job::Query(QueryJob {
                    sketch: Arc::clone(&sketch),
                    fp: Arc::clone(&fp),
                    k: request.k,
                    deadline,
                    reply: reply_tx.clone(),
                });
                match shard.tx.try_send(job) {
                    Ok(()) => sent += 1,
                    // Explicit load-shedding: the slice is *counted*, not
                    // silently missing.
                    Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => shed += 1,
                }
            }
            shards.len()
        };
        drop(reply_tx);

        // Merge: collect slices until the budget expires or every
        // fanned-out shard reported. A missing slice never blocks — it
        // becomes missing coverage.
        let merge_fault = wmh_fault::point!("serve::merge").err();
        let mut results: Vec<(u64, f64)> = Vec::new();
        let mut succeeded: Vec<usize> = Vec::new();
        let mut failures: Vec<(usize, String)> = Vec::new();
        if merge_fault.is_none() {
            let mut received = 0usize;
            while received < sent {
                let slice = match deadline.remaining() {
                    None => reply_rx.recv().ok(),
                    Some(left) if left.is_zero() => None,
                    Some(left) => reply_rx.recv_timeout(left).ok(),
                };
                let Some(slice) = slice else { break };
                received += 1;
                match slice.outcome {
                    SliceOutcome::Hits(mut hits) => {
                        results.append(&mut hits);
                        succeeded.push(slice.shard);
                    }
                    SliceOutcome::Expired => {}
                    SliceOutcome::Failed(error) => failures.push((slice.shard, error)),
                }
            }
        }

        // Health accounting from the slices actually received. Shard ids
        // are bounds-checked: a re-shard may have swapped in a smaller
        // fleet while slices from the old one were still in flight.
        {
            let mut health = self.lock_health();
            for &shard_id in &succeeded {
                if let Some(entry) = health.get_mut(shard_id) {
                    entry.consecutive_failures = 0;
                    entry.quarantined = false;
                }
            }
            for (shard_id, _) in &failures {
                if let Some(entry) = health.get_mut(*shard_id) {
                    entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
                    if entry.consecutive_failures >= self.config.quarantine_after {
                        entry.quarantined = true;
                    }
                }
            }
        }

        let answered = succeeded.len();
        let outcome = if answered == shards_total {
            Outcome::Ok
        } else if answered == 0 && deadline.expired() {
            Outcome::DeadlineExceeded
        } else {
            Outcome::Partial
        };
        let error = merge_fault
            .map(|fault| format!("merge: {fault}"))
            .or_else(|| failures.first().map(|(shard_id, e)| format!("shard {shard_id}: {e}")));
        results.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        results.truncate(request.k);
        QueryResponse {
            id: request.id,
            outcome,
            results,
            coverage: answered as f64 / shards_total as f64,
            shards_total,
            shards_answered: answered,
            shed,
            retry_after_us: 0,
            error,
        }
    }

    /// Apply a live mutation. Total: every input maps to a typed
    /// [`MutationResponse`] — see the protocol docs for the write
    /// precedence and the meaning of `durable`/`applied`.
    pub fn mutate(&self, request: &MutationRequest) -> MutationResponse {
        let request_id = self.requests.fetch_add(1, Ordering::Relaxed);
        let budget = request.deadline_us.unwrap_or(self.config.default_deadline_us);
        let deadline = Deadline::after(Duration::from_micros(budget));
        let indexed = self.indexed.load(Ordering::Acquire);

        // Admission first: an overloaded service rejects writes before
        // touching the WAL, so `overloaded` always means "nothing
        // happened, retry verbatim".
        let admitted = self.inflight.fetch_add(1, Ordering::AcqRel);
        let _guard = InflightGuard(&self.inflight);
        let admission_fault = wmh_fault::point!("serve::admission").err();
        if admitted >= self.config.max_inflight || admission_fault.is_some() {
            let backoff = self.config.retry.backoff(self.config.seed, request_id, 1);
            let mut response = MutationResponse::rejected(
                request.id,
                Outcome::Overloaded,
                indexed,
                Some(admission_fault.map_or_else(
                    || format!("{admitted} requests in flight at cap {}", self.config.max_inflight),
                    |fault| fault.to_string(),
                )),
            );
            response.retry_after_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            return response;
        }

        let Some(writer) = &self.writer else {
            return MutationResponse::rejected(
                request.id,
                Outcome::ReadOnly,
                indexed,
                Some("service was opened read-only (no write-ahead log)".into()),
            );
        };
        if self.resharding.load(Ordering::Acquire) {
            let backoff = self.config.retry.backoff(self.config.seed, request_id, 1);
            let mut response = MutationResponse::rejected(
                request.id,
                Outcome::ReadOnly,
                indexed,
                Some("re-shard in progress; writes resume when it completes".into()),
            );
            response.retry_after_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            return response;
        }
        if self.read_only.load(Ordering::Acquire) {
            return MutationResponse::rejected(
                request.id,
                Outcome::ReadOnly,
                indexed,
                Some("service degraded to read-only after a WAL failure".into()),
            );
        }

        // Pre-sketch inserts and pre-validate stream parameters outside
        // the writer lock: everything rejectable without id bookkeeping is
        // rejected before any serialization point.
        let presketched = match &request.kind {
            MutationKind::Insert { doc } => match self.sketch_doc(doc) {
                Ok(pair) => Some(pair),
                Err(e) => {
                    return MutationResponse::rejected(
                        request.id,
                        Outcome::BadRequest,
                        indexed,
                        Some(e),
                    )
                }
            },
            MutationKind::Delete => None,
            MutationKind::Stream { lambda, items } => {
                if !lambda.is_finite() || *lambda <= 0.0 || *lambda > 1.0 {
                    return MutationResponse::rejected(
                        request.id,
                        Outcome::BadRequest,
                        indexed,
                        Some(format!("decay factor lambda {lambda} outside (0, 1]")),
                    );
                }
                if let Some((k, mass)) =
                    items.iter().find(|(_, mass)| !mass.is_finite() || *mass <= 0.0)
                {
                    return MutationResponse::rejected(
                        request.id,
                        Outcome::BadRequest,
                        indexed,
                        Some(format!("stream item ({k}, {mass}) has non-positive mass")),
                    );
                }
                None
            }
        };

        // Serialize: validate against live ids, commit to the WAL, update
        // the mirror, dispatch to the owning shard — all under the writer
        // lock, so WAL order is exactly per-shard apply order.
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);

        // Prepare the (record, apply-op) pair; every rejection here
        // happens *before* the append, so a `bad_request` never commits.
        let prepared = prepare_mutation(&w, request, presketched, &*self.sketcher, &self.config);
        let (record, op, new_stream) = match prepared {
            Ok(triple) => triple,
            Err(e) => {
                return MutationResponse::rejected(
                    request.id,
                    Outcome::BadRequest,
                    indexed,
                    Some(e),
                )
            }
        };
        if deadline.expired() {
            return MutationResponse::rejected(
                request.id,
                Outcome::DeadlineExceeded,
                indexed,
                Some(format!("budget {budget}us spent before the WAL append")),
            );
        }

        // The commit point: durable append, transient faults retried
        // under the policy. Exhaustion flips the service read-only — a
        // log that cannot take writes must not acknowledge any.
        let appended = supervise(&self.config.retry, self.config.seed, request_id, |_| {
            match w.wal.append(&record) {
                Ok(()) => Attempt::Done(Ok(())),
                Err(e @ WalError::TooLarge(_)) => Attempt::Done(Err(e.to_string())),
                Err(e) => Attempt::Transient(e.to_string()),
            }
        });
        let append_failure = match appended {
            CellOutcome::Completed(Ok(())) => None,
            CellOutcome::Completed(Err(e)) => {
                return MutationResponse::rejected(
                    request.id,
                    Outcome::BadRequest,
                    indexed,
                    Some(e),
                )
            }
            CellOutcome::TimedOut => Some("WAL append deadline".to_owned()),
            CellOutcome::Quarantined { attempts, error } => {
                Some(format!("WAL append failed after {attempts} attempts: {error}"))
            }
        };
        if let Some(detail) = append_failure {
            self.read_only.store(true, Ordering::Release);
            return MutationResponse::rejected(
                request.id,
                Outcome::ReadOnly,
                indexed,
                Some(format!("{detail}; service is now read-only")),
            );
        }

        // Committed. Mirror the mutation, then apply it — from here on the
        // response always reports `durable: true`.
        let was_live = w.live.contains(&request.id);
        w.mutations.push(record);
        match &request.kind {
            MutationKind::Insert { .. } => {
                w.live.insert(request.id);
            }
            MutationKind::Delete => {
                w.live.remove(&request.id);
                w.streams.remove(&request.id);
            }
            MutationKind::Stream { .. } => {
                w.live.insert(request.id);
                if let Some(state) = new_stream {
                    w.streams.insert(request.id, state);
                }
            }
        }
        let live_count = w.live.len();
        self.indexed.store(live_count, Ordering::Release);

        // Route to the owning shard of the *current* fleet.
        let (shard_id, send_result, reply_rx) = {
            let shards = self.lock_shards_read();
            let shard_id = (request.id % shards.len() as u64) as usize;
            let (ack_tx, ack_rx) = mpsc::channel();
            // Blocking send: the mutation is durable, so it must reach the
            // worker; the worker always drains, so the wait is bounded by
            // the queue depth.
            let sent =
                shards[shard_id].tx.send(Job::Apply(Box::new(ApplyJob { op, reply: ack_tx })));
            (shard_id, sent, ack_rx)
        };
        match &request.kind {
            MutationKind::Insert { .. } => w.sizes[shard_id] += 1,
            MutationKind::Delete => w.sizes[shard_id] = w.sizes[shard_id].saturating_sub(1),
            MutationKind::Stream { .. } => {
                if !was_live {
                    w.sizes[shard_id] += 1;
                }
            }
        }
        let reshard_hint =
            self.config.reshard_skew.is_some_and(|threshold| imbalance(&w.sizes) >= threshold);

        let ack = if send_result.is_err() {
            // The worker is gone (only possible mid-teardown): treat as an
            // apply failure and fall into the rebuild path.
            Err("shard worker unavailable".to_owned())
        } else {
            match deadline.remaining() {
                None => reply_rx
                    .recv()
                    .map_err(|_| "shard worker gone".to_owned())
                    .map(|a| a.result)
                    .and_then(|r| r),
                Some(left) => match reply_rx.recv_timeout(left) {
                    Ok(ack) => ack.result,
                    Err(RecvTimeoutError::Timeout) => {
                        // Committed but unconfirmed: the worker applies it
                        // regardless; only the wait ran out.
                        return MutationResponse {
                            id: request.id,
                            outcome: Outcome::DeadlineExceeded,
                            durable: true,
                            applied: false,
                            shard: Some(shard_id),
                            indexed: live_count,
                            reshard_hint,
                            retry_after_us: 0,
                            error: Some(
                                "committed to the WAL; apply not confirmed in budget".into(),
                            ),
                        };
                    }
                    Err(RecvTimeoutError::Disconnected) => Err("shard worker gone".to_owned()),
                },
            }
        };

        match ack {
            Ok(()) => MutationResponse {
                id: request.id,
                outcome: Outcome::Ok,
                durable: true,
                applied: true,
                shard: Some(shard_id),
                indexed: live_count,
                reshard_hint,
                retry_after_us: 0,
                error: None,
            },
            Err(apply_error) => {
                self.self_heal(&mut w, shard_id, request, live_count, reshard_hint, &apply_error)
            }
        }
    }

    /// An apply failed after its in-worker retry budget: the shard's
    /// memory no longer matches the log. Rebuild it from the durable state
    /// (store + WAL) — the same builder a cold open uses — and swap it
    /// into the fleet. If even the rebuild fails, quarantine the shard and
    /// flip read-only: the log stays authoritative, a restart recovers.
    fn self_heal(
        &self,
        w: &mut WriteState,
        shard_id: usize,
        request: &MutationRequest,
        live_count: usize,
        reshard_hint: bool,
        apply_error: &str,
    ) -> MutationResponse {
        let count = self.lock_shards_read().len();
        let built = supervise(&self.config.retry, self.config.seed, shard_id as u64, |_| {
            build_shard(
                &w.store,
                self.algorithm,
                self.bands,
                &self.config,
                shard_id,
                count,
                &w.mutations,
                "serve::ingest",
            )
        });
        let rebuilt = match built {
            CellOutcome::Completed(Ok(built)) => built,
            // TimedOut cannot fire (shard builds carry no deadline), but a
            // typed failure is the honest fallback if that ever changes.
            CellOutcome::TimedOut => {
                self.read_only.store(true, Ordering::Release);
                return MutationResponse {
                    id: request.id,
                    outcome: Outcome::ReadOnly,
                    durable: true,
                    applied: false,
                    shard: Some(shard_id),
                    indexed: live_count,
                    reshard_hint,
                    retry_after_us: 0,
                    error: Some(format!(
                        "apply failed ({apply_error}); shard rebuild hit a deadline; \
                         service read-only — the WAL stays authoritative"
                    )),
                };
            }
            CellOutcome::Completed(Err(error)) | CellOutcome::Quarantined { error, .. } => {
                {
                    let mut health = self.lock_health();
                    if let Some(entry) = health.get_mut(shard_id) {
                        entry.quarantined = true;
                    }
                }
                self.read_only.store(true, Ordering::Release);
                return MutationResponse {
                    id: request.id,
                    outcome: Outcome::ReadOnly,
                    durable: true,
                    applied: false,
                    shard: Some(shard_id),
                    indexed: live_count,
                    reshard_hint,
                    retry_after_us: 0,
                    error: Some(format!(
                        "apply failed ({apply_error}); shard rebuild also failed ({error}); \
                         shard quarantined, service read-only — the WAL stays authoritative \
                         and a restart recovers"
                    )),
                };
            }
        };
        let (index, fingerprints) = rebuilt.contents;
        w.sizes[shard_id] = index.len();
        w.streams.extend(rebuilt.streams);
        let spawned = Shard::spawn(
            shard_id,
            index,
            fingerprints,
            self.config.queue_depth,
            self.config.retry,
            self.config.seed,
        );
        match spawned {
            Ok(shard) => {
                {
                    let mut shards = self.lock_shards_write();
                    // The old worker exits once its (now unreferenced)
                    // inbox drains.
                    shards[shard_id] = shard;
                }
                {
                    let mut health = self.lock_health();
                    if let Some(entry) = health.get_mut(shard_id) {
                        *entry = ShardHealth::new();
                    }
                }
                MutationResponse {
                    id: request.id,
                    outcome: Outcome::Ok,
                    durable: true,
                    applied: true,
                    shard: Some(shard_id),
                    indexed: live_count,
                    reshard_hint,
                    retry_after_us: 0,
                    error: Some(format!(
                        "apply failed ({apply_error}); shard {shard_id} rebuilt from the WAL"
                    )),
                }
            }
            Err(e) => {
                self.read_only.store(true, Ordering::Release);
                MutationResponse {
                    id: request.id,
                    outcome: Outcome::ReadOnly,
                    durable: true,
                    applied: false,
                    shard: Some(shard_id),
                    indexed: live_count,
                    reshard_hint,
                    retry_after_us: 0,
                    error: Some(format!("apply failed ({apply_error}); respawn failed ({e})")),
                }
            }
        }
    }

    /// Rebuild the fleet at `to` shards, blocking until the swap. Writes
    /// answer `read_only` for the duration; queries keep serving, degraded
    /// by the frozen (most-loaded) shard. The new partition is built by
    /// the cold-open builder over the store + WAL, so it is byte-identical
    /// to a from-scratch partition at `to` shards.
    ///
    /// # Errors
    /// [`ServiceError::ReadOnlyService`] for WAL-less services,
    /// [`ServiceError::Resharding`] when one is already running,
    /// [`ServiceError::Ingest`] when a shard build exhausts its retries
    /// (the old fleet stays in place).
    pub fn reshard_blocking(&self, to: usize) -> Result<ReshardReport, ServiceError> {
        let Some(writer) = &self.writer else {
            return Err(ServiceError::ReadOnlyService);
        };
        if to == 0 {
            return Err(ServiceError::BadConfig("shards must be positive".into()));
        }
        if self
            .resharding
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(ServiceError::Resharding);
        }
        let _flag = ReshardGuard(&self.resharding);
        // Taking the writer lock waits out any in-flight mutation, so the
        // mirror we build from includes everything acknowledged.
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let from = self.lock_shards_read().len();

        // Freeze the most-loaded shard — the skew source — behind the
        // quarantine machinery: queries degrade to partial, no probes.
        let frozen = w
            .sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &size)| size)
            .map_or(0, |(shard_id, _)| shard_id);
        {
            let mut health = self.lock_health();
            if let Some(entry) = health.get_mut(frozen) {
                entry.frozen = true;
            }
        }

        let built = build_fleet(
            &w.store,
            self.algorithm,
            self.bands,
            &self.config,
            to,
            &w.mutations,
            "serve::reshard",
        );
        let (shards, sizes, streams) = match built {
            Ok(triple) => triple,
            Err(e) => {
                // Abort: unfreeze, old fleet intact, writes resume (the
                // guard clears the flag).
                let mut health = self.lock_health();
                if let Some(entry) = health.get_mut(frozen) {
                    entry.frozen = false;
                }
                return Err(e);
            }
        };
        {
            let mut fleet = self.lock_shards_write();
            let mut health = self.lock_health();
            *fleet = shards;
            *health = (0..to).map(|_| ShardHealth::new()).collect();
        }
        w.sizes = sizes;
        w.streams = streams;
        Ok(ReshardReport { from, to, points: w.live.len() })
    }

    /// Propose a better shard count, or `None` when the current partition
    /// is within the configured skew threshold (or skew detection is off,
    /// or the service is read-only). Deterministic: scans live ids against
    /// every candidate count up to `reshard_cap`.
    #[must_use]
    pub fn plan_reshard(&self) -> Option<usize> {
        let threshold = self.config.reshard_skew?;
        let writer = self.writer.as_ref()?;
        let w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let current = self.lock_shards_read().len();
        if imbalance(&w.sizes) < threshold {
            return None;
        }
        let cap = self.config.reshard_cap.max(current).max(1);
        let mut best = (current, imbalance(&w.sizes));
        for candidate in 1..=cap {
            if candidate == current {
                continue;
            }
            let mut counts = vec![0usize; candidate];
            for &id in &w.live {
                counts[(id % candidate as u64) as usize] += 1;
            }
            let skew = imbalance(&counts);
            if skew + 1e-9 < best.1 {
                best = (candidate, skew);
            }
        }
        (best.0 != current).then_some(best.0)
    }

    /// Kick off [`Self::reshard_blocking`] on a background thread if
    /// [`Self::plan_reshard`] proposes a count. Returns whether one
    /// started. Failures (including a concurrent re-shard) are absorbed —
    /// the old fleet keeps serving either way.
    pub fn spawn_reshard(self: &Arc<Self>) -> bool {
        let Some(to) = self.plan_reshard() else { return false };
        let service = Arc::clone(self);
        std::thread::Builder::new()
            .name("wmh-serve-reshard".into())
            .spawn(move || {
                let _ = service.reshard_blocking(to);
            })
            .is_ok()
    }

    /// Health / readiness snapshot.
    pub fn health(&self) -> HealthResponse {
        let shards_total = self.lock_shards_read().len();
        let health = self.lock_health();
        let quarantined = health.iter().filter(|entry| entry.quarantined).count();
        let resharding = self.resharding.load(Ordering::Acquire);
        HealthResponse {
            ready: quarantined < shards_total,
            indexed: self.indexed.load(Ordering::Acquire),
            shards_total,
            shards_quarantined: quarantined,
            inflight: self.inflight.load(Ordering::Acquire),
            read_only: self.writer.is_none()
                || self.read_only.load(Ordering::Acquire)
                || resharding,
            resharding,
        }
    }

    /// The configuration the service runs under.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Sketch + fingerprint a document (the insert fast path).
    fn sketch_doc(&self, doc: &[(u64, f64)]) -> Result<(Sketch, BbitFingerprint), String> {
        let set = WeightedSet::from_pairs(doc.iter().copied())
            .map_err(|e| format!("bad document: {e}"))?;
        let sketch =
            self.sketcher.sketch(&set).map_err(|e| format!("unsketchable document: {e}"))?;
        let fp = BbitFingerprint::pack(&sketch.codes, self.config.fingerprint_bits)
            .map_err(|e| e.to_string())?;
        Ok((sketch, fp))
    }

    /// Poison-tolerant locks: a panicking thread (impossible by the
    /// crate's own contract, but the lock cannot know that) must not wedge
    /// the whole service.
    fn lock_health(&self) -> std::sync::MutexGuard<'_, Vec<ShardHealth>> {
        self.health.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shards_read(&self) -> std::sync::RwLockReadGuard<'_, Vec<Shard>> {
        self.shards.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shards_write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Shard>> {
        self.shards.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing each inbox ends its worker's `recv` loop; join so no
        // worker outlives the index it borrows conceptually.
        let shards =
            std::mem::take(&mut *self.shards.get_mut().unwrap_or_else(PoisonError::into_inner));
        for shard in shards {
            let Shard { tx, handle } = shard;
            drop(tx);
            let _ = handle.join();
        }
    }
}

/// Prepared write: the WAL record, the shard apply op, and (for streams)
/// the post-mutation HistoSketch state to commit into the mirror.
type PreparedWrite = (Mutation, ApplyOp, Option<HistoSketch>);

/// Validate a mutation against the live-id bookkeeping and derive its
/// (record, apply-op) pair. Runs entirely *before* the WAL append: every
/// `Err` here is a `bad_request` that commits nothing.
fn prepare_mutation(
    w: &WriteState,
    request: &MutationRequest,
    presketched: Option<(Sketch, BbitFingerprint)>,
    sketcher: &(dyn Sketcher + Send + Sync),
    config: &ServiceConfig,
) -> Result<PreparedWrite, String> {
    let id = request.id;
    match &request.kind {
        MutationKind::Insert { .. } => {
            if w.live.contains(&id) {
                return Err(format!("id {id} is already indexed (delete it first, or stream)"));
            }
            let (sketch, fp) =
                presketched.ok_or_else(|| "insert without a pre-sketched document".to_owned())?;
            let record = Mutation::Insert { id, codes: sketch.codes.clone() };
            Ok((record, ApplyOp::Insert { id, sketch, fp }, None))
        }
        MutationKind::Delete => {
            if !w.live.contains(&id) {
                return Err(format!("id {id} is not indexed"));
            }
            Ok((Mutation::Delete { id }, ApplyOp::Delete { id }, None))
        }
        MutationKind::Stream { lambda, items } => {
            // A static (non-streaming) live id has no histogram to decay;
            // streaming onto it would silently replace its content.
            let state = match w.streams.get(&id) {
                Some(state) => Some(state.clone()),
                None if w.live.contains(&id) => {
                    return Err(format!(
                        "id {id} is indexed but not a streaming document; delete it first"
                    ))
                }
                None => None,
            };
            if state.is_none() && items.is_empty() {
                return Err(format!("cannot create streaming id {id} from an empty item list"));
            }
            let mut state = match state {
                Some(state) => state,
                None => HistoSketch::new(w.store.seed(), sketcher.num_hashes())
                    .map_err(|e| e.to_string())?,
            };
            state.decay(*lambda).map_err(|e| e.to_string())?;
            for &(k, mass) in items {
                state.add(k, mass).map_err(|e| e.to_string())?;
            }
            let set = state.histogram().map_err(|e| format!("stream state: {e}"))?;
            let sketch =
                sketcher.sketch(&set).map_err(|e| format!("unsketchable stream state: {e}"))?;
            let fp = BbitFingerprint::pack(&sketch.codes, config.fingerprint_bits)
                .map_err(|e| e.to_string())?;
            let record = Mutation::Stream { id, lambda: *lambda, items: items.clone() };
            Ok((record, ApplyOp::Upsert { id, sketch, fp }, Some(state)))
        }
    }
}

/// Imbalance of a partition: max shard size over the ideal (uniform)
/// size. 1.0 is perfectly balanced; an empty fleet reads as balanced.
fn imbalance(sizes: &[usize]) -> f64 {
    let total: usize = sizes.iter().sum();
    let max = sizes.iter().copied().max().unwrap_or(0);
    if total == 0 || sizes.is_empty() {
        return 1.0;
    }
    (max * sizes.len()) as f64 / total as f64
}

/// The live-id set after replaying `mutations` over `store`.
fn live_ids(store: &SketchStore, mutations: &[Mutation]) -> HashSet<u64> {
    let mut live: HashSet<u64> = store.ids().iter().copied().collect();
    for m in mutations {
        match m {
            Mutation::Insert { id, .. } | Mutation::Stream { id, .. } => {
                live.insert(*id);
            }
            Mutation::Delete { id } => {
                live.remove(id);
            }
        }
    }
    live
}

/// Rebuild the store's sketcher from its recorded provenance.
fn build_sketcher(algorithm: Algorithm, store: &SketchStore) -> Result<DynSketcher, ServiceError> {
    algorithm
        .build(store.seed(), store.num_hashes(), &AlgorithmConfig::default())
        .map_err(|e| ServiceError::Build(e.to_string()))
}

/// What one shard ingest produces: its banded index plus the re-ranking
/// fingerprints for every point it owns.
type ShardContents = (LshIndex<DynSketcher>, HashMap<u64, BbitFingerprint>);

/// A fully built shard: contents plus the HistoSketch states of its
/// streaming ids.
struct BuiltShard {
    contents: ShardContents,
    streams: HashMap<u64, HistoSketch>,
}

/// Spawned shard workers plus per-shard sizes and merged streaming states,
/// as produced by [`build_fleet`].
type FleetParts = (Vec<Shard>, Vec<usize>, HashMap<u64, HistoSketch>);

/// Build every shard of a fleet at `count` shards from the store + the
/// mutation log, spawn the workers, and report per-shard sizes and the
/// merged streaming states. Used by cold open, self-heal (single shard via
/// [`build_shard`]), and re-shard — one builder, so every path converges
/// byte-identical.
fn build_fleet(
    store: &SketchStore,
    algorithm: Algorithm,
    bands: Bands,
    config: &ServiceConfig,
    count: usize,
    mutations: &[Mutation],
    failpoint: &'static str,
) -> Result<FleetParts, ServiceError> {
    let mut shards = Vec::with_capacity(count);
    let mut sizes = Vec::with_capacity(count);
    let mut streams = HashMap::new();
    for shard_id in 0..count {
        let built = supervise(&config.retry, config.seed, shard_id as u64, |_| {
            build_shard(store, algorithm, bands, config, shard_id, count, mutations, failpoint)
        });
        let built = match built {
            CellOutcome::Completed(Ok(built)) => built,
            CellOutcome::Completed(Err(error)) => {
                return Err(ServiceError::Ingest { shard: shard_id, attempts: 1, error })
            }
            CellOutcome::TimedOut => {
                return Err(ServiceError::Ingest {
                    shard: shard_id,
                    attempts: 1,
                    error: "ingest deadline".into(),
                })
            }
            CellOutcome::Quarantined { attempts, error } => {
                return Err(ServiceError::Ingest { shard: shard_id, attempts, error })
            }
        };
        let (index, fingerprints) = built.contents;
        sizes.push(index.len());
        streams.extend(built.streams);
        shards.push(
            Shard::spawn(
                shard_id,
                index,
                fingerprints,
                config.queue_depth,
                config.retry,
                config.seed,
            )
            .map_err(ServiceError::Spawn)?,
        );
    }
    Ok((shards, sizes, streams))
}

/// One attempt at building a shard: batch-ingest its slice of the store,
/// then replay its slice of the mutation log in order. Injected
/// `failpoint` faults are transient (the supervisor retries the whole
/// build); everything else is deterministic and terminal.
#[allow(clippy::too_many_arguments)]
fn build_shard(
    store: &SketchStore,
    algorithm: Algorithm,
    bands: Bands,
    config: &ServiceConfig,
    shard_id: usize,
    count: usize,
    mutations: &[Mutation],
    failpoint: &'static str,
) -> Attempt<Result<BuiltShard, String>> {
    let tag = shard_id.to_string();
    let bits = config.fingerprint_bits;
    // Two sketcher instances: one owned by the index, one kept for
    // re-sketching streaming histograms (identical provenance, so the
    // sketches are interchangeable).
    let front = match build_sketcher(algorithm, store) {
        Ok(sketcher) => sketcher,
        Err(e) => return Attempt::Done(Err(e.to_string())),
    };
    let sketcher = match build_sketcher(algorithm, store) {
        Ok(sketcher) => sketcher,
        Err(e) => return Attempt::Done(Err(e.to_string())),
    };
    let mut index = match LshIndex::new(sketcher, bands) {
        Ok(index) => index,
        Err(e) => return Attempt::Done(Err(e.to_string())),
    };
    let ids: Vec<u64> =
        store.ids().iter().copied().filter(|id| (id % count as u64) as usize == shard_id).collect();
    let mut fingerprints = HashMap::with_capacity(ids.len());
    for batch in ids.chunks(INGEST_BATCH.max(1)) {
        if let Err(fault) = wmh_fault::point!(failpoint, &tag) {
            return Attempt::Transient(fault.to_string());
        }
        for &id in batch {
            let sketch = match store.get(id) {
                Ok(sketch) => sketch,
                Err(e) => return Attempt::Done(Err(e.to_string())),
            };
            let fp = match BbitFingerprint::pack(&sketch.codes, bits) {
                Ok(fp) => fp,
                Err(e) => return Attempt::Done(Err(e.to_string())),
            };
            if let Err(e) = index.insert_sketch(id, sketch) {
                return Attempt::Done(Err(e.to_string()));
            }
            fingerprints.insert(id, fp);
        }
    }
    // Replay the shard's slice of the log, in log order. Front-end
    // validation ran before every append, so a replay error means a
    // damaged or foreign log — terminal, never retried.
    let mut streams: HashMap<u64, HistoSketch> = HashMap::new();
    let mine: Vec<&Mutation> =
        mutations.iter().filter(|m| (m.id() % count as u64) as usize == shard_id).collect();
    for batch in mine.chunks(INGEST_BATCH.max(1)) {
        if let Err(fault) = wmh_fault::point!(failpoint, &tag) {
            return Attempt::Transient(fault.to_string());
        }
        for m in batch {
            if let Err(e) =
                replay_mutation(store, &front, bits, &mut index, &mut fingerprints, &mut streams, m)
            {
                return Attempt::Done(Err(format!("wal replay: {e}")));
            }
        }
    }
    Attempt::Done(Ok(BuiltShard { contents: (index, fingerprints), streams }))
}

/// Apply one logged mutation to a shard being built — the replay twin of
/// the live path: identical index calls in identical order, so a rebuilt
/// shard is byte-identical to one that applied the mutations live.
fn replay_mutation(
    store: &SketchStore,
    front: &DynSketcher,
    bits: u32,
    index: &mut LshIndex<DynSketcher>,
    fingerprints: &mut HashMap<u64, BbitFingerprint>,
    streams: &mut HashMap<u64, HistoSketch>,
    m: &Mutation,
) -> Result<(), String> {
    match m {
        Mutation::Insert { id, codes } => {
            let sketch = Sketch {
                algorithm: store.algorithm().to_owned(),
                seed: store.seed(),
                codes: codes.clone(),
            };
            let fp = BbitFingerprint::pack(&sketch.codes, bits).map_err(|e| e.to_string())?;
            index.insert_sketch(*id, sketch).map_err(|e| e.to_string())?;
            fingerprints.insert(*id, fp);
        }
        Mutation::Delete { id } => {
            index.remove_sketch(*id).map_err(|e| e.to_string())?;
            fingerprints.remove(id);
            streams.remove(id);
        }
        Mutation::Stream { id, lambda, items } => {
            let state = match streams.entry(*id) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => v.insert(
                    HistoSketch::new(store.seed(), front.num_hashes())
                        .map_err(|e| e.to_string())?,
                ),
            };
            state.decay(*lambda).map_err(|e| e.to_string())?;
            for &(k, mass) in items {
                state.add(k, mass).map_err(|e| e.to_string())?;
            }
            let set = state.histogram().map_err(|e| e.to_string())?;
            let sketch = front.sketch(&set).map_err(|e| e.to_string())?;
            let fp = BbitFingerprint::pack(&sketch.codes, bits).map_err(|e| e.to_string())?;
            if index.contains_id(*id) {
                index.update_sketch(*id, sketch).map_err(|e| e.to_string())?;
            } else {
                index.insert_sketch(*id, sketch).map_err(|e| e.to_string())?;
            }
            fingerprints.insert(*id, fp);
        }
    }
    Ok(())
}
