//! Chaos soak for the durability lifecycle: snapshots, compaction,
//! scrubbing, and half-open write recovery.
//!
//! The claims under test, with deterministic failpoint schedules:
//!
//! * **Kill-resume stays byte-identical at every lifecycle phase.** A
//!   service killed while snapshots, rotations, and scrub passes are
//!   being fault-injected (`serve::snapshot_write`,
//!   `serve::snapshot_fsync`, `serve::snapshot_rename`,
//!   `serve::wal_rotate`, `serve::scrub`) reopens byte-identical to a
//!   no-snapshot twin that applied the same acknowledged mutations — at
//!   1, 2, and 8 shards.
//! * **Recovery is bounded by the last snapshot.** After compaction,
//!   reopen replays only segments at or above the newest snapshot's
//!   generation — pinned by the `serve::wal_replay` hit counter, not by
//!   wall-clock hope — and the retired segment files are gone.
//! * **A flipped bit falls back one generation.** A corrupt newest
//!   snapshot is detected by its CRCs and recovery falls back to the
//!   previous generation plus covering WAL history, byte-identical.
//! * **A failed snapshot is an abort, not damage.** ENOSPC-style faults
//!   at any point of the snapshot write leave the prior generation (and
//!   no `*.tmp` litter) behind; writes keep flowing.
//! * **The scrubber finds and heals rot.** Flipped bits in a snapshot
//!   and a sealed segment are quarantined (`*.bad`), a fresh snapshot
//!   re-establishes durability, and an injected shard-memory mismatch
//!   (`serve::scrub_audit`) quarantines and rebuilds the shard — all
//!   without changing a single query byte.
//! * **`read_only` is half-open, not sticky.** A tripped write gate
//!   rejects with typed backoff while the fault persists, and re-admits
//!   writes via a deterministic probe append once it clears.
//!
//! Every test holds a [`wmh_fault::scenario`] guard for its full
//! duration, so schedules cannot leak across concurrently scheduled
//! tests.

use std::path::{Path, PathBuf};
use std::time::Duration;

use wmh_core::{SketchStore, Sketcher};
use wmh_data::PAPER_DATASETS;
use wmh_fault::supervisor::RetryPolicy;
use wmh_serve::{
    snapshot, MutationKind, MutationRequest, Outcome, QueryRequest, Service, ServiceConfig,
    ServiceError,
};
use wmh_sets::WeightedSet;

fn env_seed() -> Option<u64> {
    let raw = std::env::var("WMH_FAULT_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.ok()
}

fn seed() -> u64 {
    env_seed().unwrap_or(0xC1A05)
}

fn corpus(n: usize) -> Vec<WeightedSet> {
    PAPER_DATASETS[2].scaled_down_preserving_overlap(n, 20_000).generate(7).expect("corpus").docs
}

fn store_for(docs: &[WeightedSet]) -> SketchStore {
    let sketcher = wmh_core::cws::Icws::new(9, 128);
    let mut store = SketchStore::new();
    for (id, doc) in docs.iter().enumerate() {
        store.insert(id as u64, &sketcher.sketch(doc).expect("sketch")).expect("insert");
    }
    store
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_millis(2),
    }
}

fn config(shards: usize) -> ServiceConfig {
    ServiceConfig {
        shards,
        default_deadline_us: 5_000_000,
        retry: fast_retry(),
        probe_every: 4,
        ..ServiceConfig::default()
    }
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wmh-snapshot-soak-{label}-{}-{:x}",
        std::process::id(),
        seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn query(doc: &WeightedSet, id: u64) -> QueryRequest {
    QueryRequest { id, doc: doc.iter().collect(), k: 10, deadline_us: Some(5_000_000) }
}

/// Probe responses as rendered wire JSON — the byte-identity currency.
fn probe(service: &Service, docs: &[WeightedSet]) -> Vec<String> {
    docs.iter()
        .enumerate()
        .map(|(i, doc)| wmh_json::to_string(&service.query(&query(doc, i as u64))))
        .collect()
}

/// The soak's mutation mix (same shape as the mutation soak's):
/// deterministic given `n`, with deletes chasing earlier inserts.
fn script(docs: &[WeightedSet], n: usize) -> Vec<MutationRequest> {
    let base = 1_000_000u64;
    (0..n)
        .map(|i| {
            let doc: Vec<(u64, f64)> = docs[i % docs.len()].iter().collect();
            let (id, kind) = match i % 4 {
                0 => (base + i as u64, MutationKind::Insert { doc }),
                1 => (
                    base + 500_000 + (i / 8) as u64,
                    MutationKind::Stream { lambda: 0.5, items: doc },
                ),
                2 => (base + (i - 2) as u64, MutationKind::Delete),
                _ => (
                    base + 500_000 + (i / 8) as u64,
                    MutationKind::Stream { lambda: 0.9, items: doc },
                ),
            };
            MutationRequest { id, kind, deadline_us: Some(5_000_000) }
        })
        .collect()
}

/// Apply `requests` expecting every one to commit cleanly.
fn apply_all(service: &Service, requests: &[MutationRequest]) {
    for request in requests {
        let response = service.mutate(request);
        assert_eq!(response.outcome, Outcome::Ok, "mutation degraded: {response:?}");
        assert!(response.durable && response.applied, "{response:?}");
    }
}

/// Flip one bit in the middle of `path` — the stand-in for silent disk
/// rot. Any single flipped bit must fail a CRC-32C somewhere.
fn flip_bit(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read for corruption");
    assert!(bytes.len() > 64, "file too small to corrupt meaningfully");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(path, bytes).expect("write corruption");
}

/// Active-segment file name for generation `gen` (mirrors the WAL's
/// naming scheme).
fn segment_name(gen: u64) -> String {
    format!("wal-{gen:016x}.seg")
}

/// The core lifecycle kill-resume claim: run the mutation script with
/// automatic snapshots every 5 writes and periodic scrub passes, all
/// under an injected fault schedule; kill; reopen. The recovered service
/// must answer byte-identically to a twin that applied the same script
/// on a fresh log with no snapshots and no faults anywhere.
fn lifecycle_kill_resume(label: &str, schedule: &str, shards: usize) {
    let _guard = wmh_fault::scenario(schedule, seed()).expect("scenario");
    let docs = corpus(32);
    let store = store_for(&docs);
    let dir = scratch(&format!("{label}-{shards}"));
    let wal = dir.join("soak.wal");
    let snapping = ServiceConfig { snapshot_every: Some(5), ..config(shards) };

    let service = Service::open(&store, &wal, snapping.clone()).expect("open");
    let requests = script(&docs, 24);
    for (i, request) in requests.iter().enumerate() {
        let response = service.mutate(request);
        assert_eq!(response.outcome, Outcome::Ok, "write {i} degraded: {response:?}");
        // Periodic scrub passes; a fault-failed pass is absorbed, like
        // the background scrubber absorbs it.
        if i % 7 == 6 {
            let _ = service.scrub();
        }
    }
    drop(service); // SIGKILL stand-in: only the WAL directory survives.

    wmh_fault::clear();
    let recovered = Service::open(&store, &wal, snapping).expect("reopen");
    let twin = Service::open(&store, &dir.join("twin.wal"), config(shards)).expect("twin open");
    apply_all(&twin, &requests);
    assert_eq!(
        probe(&recovered, &docs),
        probe(&twin, &docs),
        "lifecycle kill-resume not byte-identical ({label}, {shards} shards)"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn kill_resume_under_snapshot_write_faults() {
    for shards in [1, 2, 8] {
        lifecycle_kill_resume("snap-write", "serve::snapshot_write=1in2", shards);
    }
}

#[test]
fn kill_resume_under_snapshot_fsync_faults() {
    for shards in [1, 2, 8] {
        lifecycle_kill_resume("snap-fsync", "serve::snapshot_fsync=1in2", shards);
    }
}

#[test]
fn kill_resume_under_snapshot_rename_faults() {
    for shards in [1, 2, 8] {
        lifecycle_kill_resume("snap-rename", "serve::snapshot_rename=1in2", shards);
    }
}

#[test]
fn kill_resume_under_rotate_faults() {
    for shards in [1, 2, 8] {
        lifecycle_kill_resume("rotate", "serve::wal_rotate=1in2", shards);
    }
}

#[test]
fn kill_resume_under_scrub_faults() {
    for shards in [1, 2, 8] {
        lifecycle_kill_resume("scrub", "serve::scrub=1in2", shards);
    }
}

/// After two snapshots, recovery must replay only segments at or above
/// the newest snapshot's generation — counted at the `serve::wal_replay`
/// failpoint, with the retired generation-0 segment file actually gone.
#[test]
fn recovery_after_compaction_replays_only_live_segments() {
    let _guard = wmh_fault::scenario("soak::baseline=never", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("compaction");
    let wal = dir.join("soak.wal");
    let requests = script(&docs, 15);

    let service = Service::open(&store, &wal, config(2)).expect("open");
    apply_all(&service, &requests[..8]);
    let gen1 = service.snapshot().expect("first snapshot");
    apply_all(&service, &requests[8..12]);
    let gen2 = service.snapshot().expect("second snapshot");
    assert!(gen2 > gen1, "generations must advance: {gen1} -> {gen2}");
    apply_all(&service, &requests[12..]);
    assert_eq!(service.health().snapshot_generation, Some(gen2));
    drop(service);

    // Lag-one retention: the second snapshot subsumes generation 0.
    assert!(
        !wal.join(segment_name(0)).exists(),
        "generation-0 segment must be retired after the second snapshot"
    );
    assert!(
        wal.join(segment_name(gen1)).exists(),
        "the fallback generation's covering segment must survive"
    );

    let before = wmh_fault::hits("serve::wal_replay");
    let recovered = Service::open(&store, &wal, config(2)).expect("reopen");
    let replayed = wmh_fault::hits("serve::wal_replay") - before;
    assert_eq!(replayed, 1, "only the newest snapshot's tail segment may replay");
    let report = recovered.wal_recovery().expect("writable service");
    assert_eq!(report.records, 3, "exactly the post-snapshot tail: {report:?}");
    assert_eq!(report.segments_replayed, 1, "{report:?}");
    assert_eq!(recovered.recovery().expect("recovery info").snapshot_generation, Some(gen2));
    assert_eq!(recovered.health().replayed_records, 3);

    let twin = Service::open(&store, &dir.join("twin.wal"), config(2)).expect("twin");
    apply_all(&twin, &requests);
    assert_eq!(probe(&recovered, &docs), probe(&twin, &docs));
    let _ = std::fs::remove_dir_all(dir);
}

/// A flipped bit in the newest snapshot is detected on open and recovery
/// falls back exactly one generation — previous snapshot plus covering
/// WAL segments — byte-identical to the acknowledged state.
#[test]
fn corrupt_newest_snapshot_falls_back_one_generation() {
    let _guard = wmh_fault::scenario("soak::baseline=never", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("fallback");
    let wal = dir.join("soak.wal");
    let requests = script(&docs, 15);

    let service = Service::open(&store, &wal, config(2)).expect("open");
    apply_all(&service, &requests[..8]);
    let gen1 = service.snapshot().expect("first snapshot");
    apply_all(&service, &requests[8..12]);
    let gen2 = service.snapshot().expect("second snapshot");
    apply_all(&service, &requests[12..]);
    let reference = probe(&service, &docs);
    drop(service);

    flip_bit(&wal.join(snapshot::snapshot_file_name(gen2)));

    let recovered = Service::open(&store, &wal, config(2)).expect("reopen past corruption");
    let recovery = recovered.recovery().expect("recovery info").clone();
    assert_eq!(
        recovery.snapshot_generation,
        Some(gen1),
        "recovery must fall back to the previous generation: {recovery:?}"
    );
    assert_eq!(recovery.snapshots_rejected, 1, "{recovery:?}");
    assert_eq!(
        recovery.replay.records, 7,
        "the fallback generation's full tail must replay: {recovery:?}"
    );
    assert_eq!(probe(&recovered, &docs), reference, "fallback recovery not byte-identical");
    let _ = std::fs::remove_dir_all(dir);
}

/// An ENOSPC-style failure at any stage of the snapshot write is a typed
/// abort: the prior generation stays the recovery point, no `*.tmp`
/// litter survives, and writes keep flowing.
#[test]
fn failed_snapshot_keeps_the_prior_generation_intact() {
    let _guard = wmh_fault::scenario("soak::baseline=never", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("enospc");
    let wal = dir.join("soak.wal");
    let requests = script(&docs, 13);

    let service = Service::open(&store, &wal, config(2)).expect("open");
    apply_all(&service, &requests[..8]);
    let gen1 = service.snapshot().expect("first snapshot");
    apply_all(&service, &requests[8..12]);

    for failpoint in [
        "serve::snapshot_write",
        "serve::snapshot_fsync",
        "serve::snapshot_rename",
        "serve::wal_rotate",
    ] {
        wmh_fault::configure(&format!("{failpoint}=always"), seed()).expect("configure");
        match service.snapshot() {
            Err(ServiceError::Snapshot(e)) => {
                assert!(e.contains(failpoint), "the fault must be named: {e}")
            }
            other => panic!("snapshot under {failpoint} must fail typed: {other:?}"),
        }
        let snaps = snapshot::list(&wal).expect("list snapshots");
        assert_eq!(
            snaps.last().map(|(gen, _)| *gen),
            Some(gen1),
            "the prior generation must remain the newest after a {failpoint} abort"
        );
        let litter: Vec<_> = std::fs::read_dir(&wal)
            .expect("read wal dir")
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(litter.is_empty(), "a failed snapshot must clean its temp file: {litter:?}");
    }

    // Writes flow after the aborts, and a kill-resume lands exactly on
    // the acknowledged state via the intact prior generation.
    wmh_fault::configure("soak::baseline=never", seed()).expect("configure");
    apply_all(&service, &requests[12..]);
    let reference = probe(&service, &docs);
    drop(service);
    let recovered = Service::open(&store, &wal, config(2)).expect("reopen");
    assert_eq!(recovered.recovery().expect("recovery info").snapshot_generation, Some(gen1));
    assert_eq!(probe(&recovered, &docs), reference);
    let _ = std::fs::remove_dir_all(dir);
}

/// The scrubber detects a flipped bit in both a snapshot and a sealed
/// segment, quarantines the damaged files to `*.bad`, and re-establishes
/// durability with a fresh snapshot — queries unchanged, and the next
/// kill-resume recovers from the healed state.
#[test]
fn scrub_detects_flipped_bits_and_heals() {
    let _guard = wmh_fault::scenario("soak::baseline=never", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("scrub-rot");
    let wal = dir.join("soak.wal");
    let requests = script(&docs, 12);

    let service = Service::open(&store, &wal, config(2)).expect("open");
    apply_all(&service, &requests[..8]);
    let gen1 = service.snapshot().expect("snapshot");
    apply_all(&service, &requests[8..]);
    let reference = probe(&service, &docs);

    // Rot both durable artifacts behind the service's back.
    let snap_path = wal.join(snapshot::snapshot_file_name(gen1));
    flip_bit(&snap_path);
    flip_bit(&wal.join(segment_name(0)));

    let report = service.scrub().expect("scrub pass");
    assert_eq!(report.corrupt_snapshots.len(), 1, "{report:?}");
    assert_eq!(report.corrupt_segments, vec![0], "{report:?}");
    assert!(report.heal_errors.is_empty(), "healing must succeed: {report:?}");
    assert!(report.mismatched_shards.is_empty(), "shard memory was never touched: {report:?}");
    let healed_gen = report.snapshot_taken.expect("fresh snapshot after file damage");
    assert!(healed_gen > gen1);

    // The damaged files are quarantined aside, never deleted silently.
    let mut bad_snap = snap_path.clone().into_os_string();
    bad_snap.push(".bad");
    assert!(Path::new(&bad_snap).exists(), "damaged snapshot must be quarantined");
    assert!(!snap_path.exists());
    assert_eq!(probe(&service, &docs), reference, "scrub healing changed query bytes");
    drop(service);

    let recovered = Service::open(&store, &wal, config(2)).expect("reopen after heal");
    assert_eq!(recovered.recovery().expect("recovery info").snapshot_generation, Some(healed_gen));
    assert_eq!(probe(&recovered, &docs), reference, "post-heal recovery not byte-identical");
    let _ = std::fs::remove_dir_all(dir);
}

/// An injected shard-memory mismatch (`serve::scrub_audit`) quarantines
/// the shard and rebuilds it from the mirror in the same pass — query
/// bytes unchanged, shard healthy afterwards.
#[test]
fn scrub_audit_mismatch_rebuilds_the_shard() {
    let _guard = wmh_fault::scenario("serve::scrub_audit@0=once", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("scrub-audit");

    let service = Service::open(&store, &dir.join("soak.wal"), config(2)).expect("open");
    apply_all(&service, &script(&docs, 8));
    let reference = probe(&service, &docs);

    let report = service.scrub().expect("scrub pass");
    assert_eq!(report.mismatched_shards, vec![0], "{report:?}");
    assert!(report.heal_errors.is_empty(), "the rebuild must succeed: {report:?}");
    assert!(report.ids_spot_checked > 0 && report.shards_audited == 2, "{report:?}");
    assert_eq!(service.health().shards_quarantined, 0, "the healed shard must be back");
    assert_eq!(probe(&service, &docs), reference, "shard rebuild changed query bytes");

    // A second pass (the `once` trigger is spent) finds genuine memory.
    let clean = service.scrub().expect("second scrub pass");
    assert!(clean.mismatched_shards.is_empty(), "{clean:?}");
    let _ = std::fs::remove_dir_all(dir);
}

/// `read_only` is a half-open circuit, not a latch: a tripped gate
/// rejects with typed backoff while the fault persists, and a
/// deterministic probe append re-admits writes once it clears.
#[test]
fn tripped_write_gate_readmits_after_the_fault_clears() {
    let _guard = wmh_fault::scenario("serve::wal_append=always", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("half-open");

    let service = Service::open(&store, &dir.join("soak.wal"), config(2)).expect("open");
    let request = &script(&docs, 1)[0];

    let trip = service.mutate(request);
    assert_eq!(trip.outcome, Outcome::ReadOnly, "{trip:?}");
    assert!(trip.error.as_deref().is_some_and(|e| e.contains("write gate tripped")), "{trip:?}");
    let health = service.health();
    assert!(health.read_only && health.half_open, "{health:?}");

    // While the fault persists: fast typed rejections with backoff, and
    // probe attempts that hit the still-broken disk re-trip, not panic.
    for _ in 0..5 {
        let rejected = service.mutate(request);
        assert_eq!(rejected.outcome, Outcome::ReadOnly, "{rejected:?}");
        assert!(!rejected.durable && !rejected.applied, "{rejected:?}");
    }

    // Fault clears (guard still held: the registry is ours). Within one
    // probe cadence a real append goes through and re-opens the gate.
    wmh_fault::clear();
    let mut admitted = None;
    for attempt in 0..4 {
        let response = service.mutate(request);
        if response.outcome == Outcome::Ok {
            admitted = Some(attempt);
            assert!(response.durable && response.applied, "{response:?}");
            break;
        }
        assert_eq!(response.outcome, Outcome::ReadOnly, "{response:?}");
        assert!(response.retry_after_us > 0, "rejections must carry backoff: {response:?}");
    }
    assert!(admitted.is_some(), "a probe within one cadence must re-admit writes");
    let health = service.health();
    assert!(!health.read_only && !health.half_open, "{health:?}");

    // Fully open again: the next write commits on the first attempt.
    let next = service.mutate(&script(&docs, 2)[1]);
    assert_eq!(next.outcome, Outcome::Ok, "{next:?}");
    let _ = std::fs::remove_dir_all(dir);
}
