//! Chaos soak for the crash-safe live-mutation path.
//!
//! The claims under test, with deterministic failpoint schedules:
//!
//! * **Kill-resume recovery is byte-identical.** A service killed
//!   mid-mutation — faults injected at the WAL append (`serve::wal_append`),
//!   the fsync (`serve::wal_fsync`), or the in-shard apply (`serve::apply`)
//!   — and reopened over the same log answers every probe byte-identically
//!   to a fresh service that applied exactly the acknowledged-durable
//!   mutations, at 1, 2, and 8 shards.
//! * **The WAL commit point is honest.** An exhausted append flips the
//!   service read-only and acknowledges *nothing* it did not durably log;
//!   a torn tail (partial final frame after a crash) is discarded on
//!   replay, never misread.
//! * **Self-heal converges.** An apply that exhausts its in-worker retries
//!   rebuilds the shard from the durable state and keeps answering — state
//!   identical to never having failed.
//! * **Re-sharding converges byte-identically** to a from-scratch
//!   partition at the new shard count, even when the rebuild itself is
//!   fault-injected (`serve::reshard`); a permanently failing rebuild is a
//!   typed error that leaves the old fleet serving.
//!
//! Every test holds a [`wmh_fault::scenario`] guard for its full duration,
//! so schedules cannot leak across concurrently scheduled tests.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use wmh_core::{SketchStore, Sketcher};
use wmh_data::PAPER_DATASETS;
use wmh_fault::supervisor::RetryPolicy;
use wmh_serve::{
    MutationKind, MutationRequest, Outcome, QueryRequest, Service, ServiceConfig, ServiceError,
};
use wmh_sets::WeightedSet;

fn env_seed() -> Option<u64> {
    let raw = std::env::var("WMH_FAULT_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.ok()
}

fn seed() -> u64 {
    env_seed().unwrap_or(0xC1A05)
}

fn corpus(n: usize) -> Vec<WeightedSet> {
    PAPER_DATASETS[2].scaled_down_preserving_overlap(n, 20_000).generate(7).expect("corpus").docs
}

fn store_for(docs: &[WeightedSet]) -> SketchStore {
    let sketcher = wmh_core::cws::Icws::new(9, 128);
    let mut store = SketchStore::new();
    for (id, doc) in docs.iter().enumerate() {
        store.insert(id as u64, &sketcher.sketch(doc).expect("sketch")).expect("insert");
    }
    store
}

/// Backoffs in microseconds so deliberately exhausted retry budgets do not
/// dominate the soak's wall clock.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_millis(2),
    }
}

fn config(shards: usize) -> ServiceConfig {
    ServiceConfig {
        shards,
        default_deadline_us: 5_000_000,
        retry: fast_retry(),
        ..ServiceConfig::default()
    }
}

/// A per-test scratch directory under the target-adjacent temp root.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wmh-mutation-soak-{label}-{}-{:x}",
        std::process::id(),
        seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn query(doc: &WeightedSet, id: u64) -> QueryRequest {
    QueryRequest { id, doc: doc.iter().collect(), k: 10, deadline_us: Some(5_000_000) }
}

/// Probe responses as rendered wire JSON — the byte-identity currency.
fn probe(service: &Service, docs: &[WeightedSet]) -> Vec<String> {
    docs.iter()
        .enumerate()
        .map(|(i, doc)| wmh_json::to_string(&service.query(&query(doc, i as u64))))
        .collect()
}

/// The soak's mutation mix: inserts of fresh ids, streaming creates and
/// drifts, deletes chasing earlier inserts — deterministic given `n`.
fn script(docs: &[WeightedSet], n: usize) -> Vec<MutationRequest> {
    let base = 1_000_000u64;
    (0..n)
        .map(|i| {
            let doc: Vec<(u64, f64)> = docs[i % docs.len()].iter().collect();
            let (id, kind) = match i % 4 {
                0 => (base + i as u64, MutationKind::Insert { doc }),
                1 => (
                    base + 500_000 + (i / 8) as u64,
                    MutationKind::Stream { lambda: 0.5, items: doc },
                ),
                2 => (base + (i - 2) as u64, MutationKind::Delete),
                _ => (
                    base + 500_000 + (i / 8) as u64,
                    MutationKind::Stream { lambda: 0.9, items: doc },
                ),
            };
            MutationRequest { id, kind, deadline_us: Some(5_000_000) }
        })
        .collect()
}

/// Drive `script` through the service and return the requests it
/// acknowledged as durable (the only ones a crash may preserve).
fn run_script(service: &Service, script: &[MutationRequest]) -> Vec<MutationRequest> {
    let mut durable = Vec::new();
    for request in script {
        let response = service.mutate(request);
        assert!(
            matches!(response.outcome, Outcome::Ok | Outcome::ReadOnly | Outcome::DeadlineExceeded),
            "unexpected mutation verdict: {response:?}"
        );
        if response.durable {
            durable.push(request.clone());
        }
    }
    durable
}

/// The core kill-resume claim, parameterized by fault schedule and shard
/// count: after running the mutation script under injected faults and
/// "killing" the service, a reopen over the same WAL answers every probe
/// byte-identically to a fresh service that applied exactly the
/// acknowledged-durable mutations fault-free.
fn kill_resume_is_byte_identical(label: &str, schedule: &str, shards: usize) {
    let _guard = wmh_fault::scenario(schedule, seed()).expect("scenario");
    let docs = corpus(32);
    let store = store_for(&docs);
    let dir = scratch(&format!("{label}-{shards}"));
    let wal = dir.join("soak.wal");

    let service = Service::open(&store, &wal, config(shards)).expect("open");
    let acked = run_script(&service, &script(&docs, 24));
    drop(service); // SIGKILL stand-in: nothing but the WAL survives.

    wmh_fault::clear();
    let recovered = Service::open(&store, &wal, config(shards)).expect("reopen");
    assert_eq!(
        recovered.wal_recovery().expect("writable service").records,
        acked.len(),
        "replay must see exactly the acknowledged records"
    );

    // The reference: a fresh log, the acknowledged mutations applied live
    // with no faults anywhere.
    let reference =
        Service::open(&store, &dir.join("reference.wal"), config(shards)).expect("reference open");
    for request in &acked {
        let response = reference.mutate(request);
        assert_eq!(response.outcome, Outcome::Ok, "reference apply degraded: {response:?}");
    }
    assert_eq!(
        probe(&recovered, &docs),
        probe(&reference, &docs),
        "kill-resume replay not byte-identical ({label}, {shards} shards)"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn kill_resume_under_append_faults() {
    for shards in [1, 2, 8] {
        kill_resume_is_byte_identical("append", "serve::wal_append=1in3", shards);
    }
}

#[test]
fn kill_resume_under_fsync_faults() {
    for shards in [1, 2, 8] {
        kill_resume_is_byte_identical("fsync", "serve::wal_fsync=1in3", shards);
    }
}

#[test]
fn kill_resume_under_apply_faults() {
    for shards in [1, 2, 8] {
        kill_resume_is_byte_identical("apply", "serve::apply=1in3", shards);
    }
}

/// An append schedule that never stops failing must flip the service
/// read-only after the retry budget — and the log must contain *nothing*,
/// so a reopen is byte-identical to a service that never saw a write.
#[test]
fn exhausted_append_flips_read_only_and_commits_nothing() {
    let _guard = wmh_fault::scenario("serve::wal_append=always", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("read-only");
    let service = Service::open(&store, &dir.join("soak.wal"), config(2)).expect("open");

    let request = &script(&docs, 1)[0];
    let first = service.mutate(request);
    assert_eq!(first.outcome, Outcome::ReadOnly, "{first:?}");
    assert!(!first.durable && !first.applied, "{first:?}");
    assert!(
        first.error.as_deref().is_some_and(|e| e.contains("write gate tripped")),
        "the trip must be reported: {first:?}"
    );
    assert!(service.health().read_only, "health must surface the degradation");

    // Later writes short-circuit; queries keep serving.
    let second = service.mutate(request);
    assert_eq!(second.outcome, Outcome::ReadOnly, "{second:?}");
    let served = service.query(&query(&docs[0], 0));
    assert_eq!(served.outcome, Outcome::Ok, "reads must survive the write-path loss: {served:?}");
    drop(service);

    wmh_fault::clear();
    let reopened = Service::open(&store, &dir.join("soak.wal"), config(2)).expect("reopen");
    let report = reopened.wal_recovery().expect("writable service");
    assert_eq!(report.records, 0, "nothing unacknowledged may replay: {report:?}");
    let pristine = Service::open(&store, &dir.join("pristine.wal"), config(2)).expect("pristine");
    assert_eq!(probe(&reopened, &docs), probe(&pristine, &docs));
    let _ = std::fs::remove_dir_all(dir);
}

/// A torn final frame — the on-disk signature of a crash mid-append — is
/// discarded on replay; every complete record before it survives.
#[test]
fn torn_tail_is_discarded_not_misread() {
    let _guard = wmh_fault::scenario("soak::baseline=never", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("torn-tail");
    let wal = dir.join("soak.wal");

    let service = Service::open(&store, &wal, config(2)).expect("open");
    let acked = run_script(&service, &script(&docs, 12));
    assert_eq!(acked.len(), 12, "fault-free script must fully ack");
    let reference = probe(&service, &docs);
    drop(service);

    // A crash mid-append leaves a length prefix promising more bytes than
    // the file holds — in the *active segment* of the WAL directory.
    let segment = wal.join("wal-0000000000000000.seg");
    let mut file =
        std::fs::OpenOptions::new().append(true).open(&segment).expect("append to torn wal");
    file.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad]).expect("torn bytes");
    drop(file);

    let recovered = Service::open(&store, &wal, config(2)).expect("reopen past torn tail");
    let report = recovered.wal_recovery().expect("writable service");
    assert_eq!(report.records, 12, "complete records must all survive: {report:?}");
    assert!(report.bytes_discarded > 0, "the torn tail must be counted: {report:?}");
    assert_eq!(probe(&recovered, &docs), reference, "torn tail changed replayed state");
    let _ = std::fs::remove_dir_all(dir);
}

/// An apply that exhausts its in-worker retries triggers the front end's
/// self-heal: the shard is rebuilt from the durable state and the service
/// converges to exactly the fault-free result.
#[test]
fn apply_exhaustion_self_heals_byte_identically() {
    let _guard = wmh_fault::scenario("serve::apply@0=always", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("self-heal");

    let service = Service::open(&store, &dir.join("soak.wal"), config(2)).expect("open");
    let mutations = script(&docs, 8);
    let mut healed = 0usize;
    for request in &mutations {
        let response = service.mutate(request);
        assert_eq!(response.outcome, Outcome::Ok, "self-heal must converge: {response:?}");
        assert!(response.durable && response.applied, "{response:?}");
        if response.error.as_deref().is_some_and(|e| e.contains("rebuilt")) {
            healed += 1;
        }
    }
    assert!(healed > 0, "the @0 schedule must have forced at least one rebuild");

    // Fault-free twin over its own log: state must match exactly.
    wmh_fault::clear();
    let reference =
        Service::open(&store, &dir.join("reference.wal"), config(2)).expect("reference");
    for request in &mutations {
        assert_eq!(reference.mutate(request).outcome, Outcome::Ok);
    }
    assert_eq!(probe(&service, &docs), probe(&reference, &docs));
    let _ = std::fs::remove_dir_all(dir);
}

/// Re-sharding under transient rebuild faults converges byte-identically
/// to a from-scratch open at the new shard count; writes degrade typed
/// (`read_only`) only while the re-shard runs.
#[test]
fn reshard_under_faults_is_byte_identical_to_from_scratch() {
    let _guard = wmh_fault::scenario("serve::reshard=1in3", seed()).expect("scenario");
    let docs = corpus(32);
    let store = store_for(&docs);
    let dir = scratch("reshard");
    let wal = dir.join("soak.wal");

    let service = Service::open(&store, &wal, config(2)).expect("open");
    let acked = run_script(&service, &script(&docs, 16));
    assert_eq!(acked.len(), 16, "no faults on the write path yet");

    let report = service.reshard_blocking(8).expect("re-shard under transient faults");
    assert_eq!((report.from, report.to), (2, 8));
    assert!(!service.health().resharding, "the flag must clear");

    // Writes resume after the swap.
    let after = service.mutate(&MutationRequest {
        id: 42_000_000,
        kind: MutationKind::Insert { doc: docs[0].iter().collect() },
        deadline_us: Some(5_000_000),
    });
    assert_eq!(after.outcome, Outcome::Ok, "writes must resume post-re-shard: {after:?}");

    wmh_fault::clear();
    let fresh = Service::open(&store, &wal, config(8)).expect("from-scratch at 8 shards");
    assert_eq!(
        probe(&service, &docs),
        probe(&fresh, &docs),
        "re-shard diverged from a from-scratch partition"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// A permanently failing re-shard rebuild is a typed error; the old fleet
/// keeps serving and keeps accepting writes.
#[test]
fn failed_reshard_leaves_the_old_fleet_serving() {
    let _guard = wmh_fault::scenario("serve::reshard@1=always", seed()).expect("scenario");
    let docs = corpus(24);
    let store = store_for(&docs);
    let dir = scratch("reshard-fail");

    let service = Service::open(&store, &dir.join("soak.wal"), config(2)).expect("open");
    run_script(&service, &script(&docs, 8));
    let before = probe(&service, &docs);

    match service.reshard_blocking(4) {
        Err(ServiceError::Ingest { shard, attempts, error }) => {
            assert_eq!(shard, 1, "the @1 schedule only hits shard 1's rebuild");
            assert!(attempts > 1, "the retry budget must be spent: {attempts}");
            assert!(error.contains("serve::reshard"), "{error}");
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(report) => panic!("always-failing rebuild re-sharded: {report:?}"),
    }
    assert!(!service.health().resharding, "the flag must clear on failure");
    assert_eq!(service.health().shards_total, 2, "old fleet intact");
    assert_eq!(probe(&service, &docs), before, "queries unchanged by the aborted re-shard");

    let write = service.mutate(&MutationRequest {
        id: 43_000_000,
        kind: MutationKind::Insert { doc: docs[0].iter().collect() },
        deadline_us: Some(5_000_000),
    });
    assert_eq!(write.outcome, Outcome::Ok, "writes must resume after the abort: {write:?}");
    let _ = std::fs::remove_dir_all(dir);
}

/// WAL provenance binding: a log written for one store refuses to open
/// against a different one, typed — never silently replayed.
#[test]
fn foreign_wal_is_rejected_typed() {
    let _guard = wmh_fault::scenario("soak::baseline=never", seed()).expect("scenario");
    let docs = corpus(16);
    let store = store_for(&docs);
    let dir = scratch("foreign");
    let wal = dir.join("soak.wal");

    let service = Service::open(&store, &wal, config(2)).expect("open");
    run_script(&service, &script(&docs, 4));
    drop(service);

    // Same documents, different sketching provenance.
    let other_sketcher = wmh_core::cws::Icws::new(11, 128);
    let mut other = SketchStore::new();
    for (id, doc) in docs.iter().enumerate() {
        other.insert(id as u64, &other_sketcher.sketch(doc).expect("sketch")).expect("insert");
    }
    match Service::open(&other, &wal, config(2)) {
        Err(ServiceError::Wal(e)) => {
            assert!(e.contains("provenance"), "the mismatch must be named: {e}")
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("foreign WAL replayed against a mismatched store"),
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// `Path`-level sanity shared by every test above: the scratch root is
/// inside the OS temp dir, never the repo.
#[test]
fn scratch_dirs_live_under_tmp() {
    let dir = scratch("sanity");
    assert!(dir.starts_with(Path::new(&std::env::temp_dir())));
    let _ = std::fs::remove_dir_all(dir);
}
