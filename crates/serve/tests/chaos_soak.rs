//! Chaos soak for the serving robustness envelope.
//!
//! The claims under test, with deterministic failpoint schedules:
//!
//! * **Every request terminates with a typed outcome**, faults or not —
//!   the load generator's accounting invariant holds under injected shard
//!   failures and admission rejections.
//! * **Quarantine is reversible and invisible afterwards**: once a faulty
//!   shard recovers through half-open probes, responses are byte-identical
//!   to a service that never failed.
//! * **Ingest faults are survivable**: transient schedules clear under the
//!   sweep supervisor's retry policy; a permanently failing shard surfaces
//!   as a typed [`ServiceError::Ingest`], never a panic.
//!
//! Every test holds a [`wmh_fault::scenario`] guard for its full duration
//! (fault-free phases run under a never-firing probe via
//! [`wmh_fault::configure`]/[`wmh_fault::clear`] without releasing the
//! lock), so scenarios cannot leak across concurrently scheduled tests.

use std::time::Duration;

use wmh_core::{SketchStore, Sketcher};
use wmh_data::PAPER_DATASETS;
use wmh_fault::supervisor::RetryPolicy;
use wmh_serve::{loadgen, LoadConfig, Outcome, QueryRequest, Service, ServiceConfig, ServiceError};
use wmh_sets::WeightedSet;

/// The pinned CI seed, if any: `WMH_FAULT_SEED` as decimal or `0x`-hex,
/// same syntax `wmh_fault::init_from_env` accepts.
fn env_seed() -> Option<u64> {
    let raw = std::env::var("WMH_FAULT_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.ok()
}

fn seed() -> u64 {
    env_seed().unwrap_or(0xC1A05)
}

fn corpus(n: usize) -> Vec<WeightedSet> {
    PAPER_DATASETS[2].scaled_down_preserving_overlap(n, 20_000).generate(7).expect("corpus").docs
}

fn store_for(docs: &[WeightedSet]) -> SketchStore {
    let sketcher = wmh_core::cws::Icws::new(9, 128);
    let mut store = SketchStore::new();
    for (id, doc) in docs.iter().enumerate() {
        store.insert(id as u64, &sketcher.sketch(doc).expect("sketch")).expect("insert");
    }
    store
}

fn config(shards: usize) -> ServiceConfig {
    ServiceConfig {
        shards,
        default_deadline_us: 5_000_000,
        probe_every: 4,
        ..ServiceConfig::default()
    }
}

/// Backoffs in microseconds, not milliseconds, so deliberately exhausted
/// retry budgets do not dominate the soak's wall clock.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_millis(2),
    }
}

fn query(doc: &WeightedSet, id: u64) -> QueryRequest {
    QueryRequest { id, doc: doc.iter().collect(), k: 10, deadline_us: Some(2_000_000) }
}

/// Quarantine a shard with an always-failing schedule, recover it through
/// half-open probes, and pin that post-recovery responses are
/// byte-identical to the fault-free baseline.
#[test]
fn quarantine_and_recovery_is_byte_identical() {
    let _guard = wmh_fault::scenario("soak::baseline=never", seed()).expect("scenario");
    let docs = corpus(64);
    let service = Service::from_store(&store_for(&docs), config(4)).expect("service");
    let queries: Vec<QueryRequest> = (0..8).map(|i| query(&docs[i], i as u64)).collect();
    let baseline: Vec<String> = queries
        .iter()
        .map(|q| {
            let response = service.query(q);
            assert_eq!(response.outcome, Outcome::Ok, "baseline not clean: {response:?}");
            wmh_json::to_string(&response)
        })
        .collect();

    // Shard 1 starts failing every probe it sees.
    wmh_fault::configure("serve::shard_query@1=always", seed()).expect("configure");
    let mut saw_quarantine = false;
    for i in 0..32u64 {
        let response = service.query(&query(&docs[(i % 16) as usize], 1000 + i));
        assert_eq!(response.outcome, Outcome::Partial, "{response:?}");
        assert!((response.coverage - 0.75).abs() < 1e-9, "one shard of four lost: {response:?}");
        assert!(
            response.results.iter().all(|&(id, _)| id % 4 != 1),
            "results leaked from the failed shard: {response:?}"
        );
        let health = service.health();
        assert!(health.ready, "3 of 4 shards still serve: {health:?}");
        if health.shards_quarantined == 1 {
            saw_quarantine = true;
            break;
        }
    }
    assert!(saw_quarantine, "shard 1 never reached quarantine");

    // Fault gone; half-open probes must restore the shard.
    wmh_fault::clear();
    let mut recovered = false;
    for i in 0..32u64 {
        let response = service.query(&query(&docs[(i % 16) as usize], 2000 + i));
        assert!(matches!(response.outcome, Outcome::Ok | Outcome::Partial), "{response:?}");
        if service.health().shards_quarantined == 0 {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "shard 1 never recovered through probes");

    let after: Vec<String> =
        queries.iter().map(|q| wmh_json::to_string(&service.query(q))).collect();
    assert_eq!(baseline, after, "recovered service must be byte-identical to fault-free");
}

#[test]
fn admission_fault_is_typed_and_transient() {
    let _guard = wmh_fault::scenario("serve::admission=once", seed()).expect("scenario");
    let docs = corpus(24);
    let service = Service::from_store(&store_for(&docs), config(2)).expect("service");
    let rejected = service.query(&query(&docs[0], 0));
    assert_eq!(rejected.outcome, Outcome::Overloaded, "{rejected:?}");
    assert!(rejected.retry_after_us > 0, "overload must carry a backoff hint: {rejected:?}");
    assert!(rejected.results.is_empty());
    let retried = service.query(&query(&docs[0], 1));
    assert_eq!(retried.outcome, Outcome::Ok, "{retried:?}");
}

#[test]
fn merge_fault_yields_typed_partial_not_a_hang() {
    let _guard = wmh_fault::scenario("serve::merge=once", seed()).expect("scenario");
    let docs = corpus(24);
    let service = Service::from_store(&store_for(&docs), config(2)).expect("service");
    let degraded = service.query(&query(&docs[0], 0));
    assert_eq!(degraded.outcome, Outcome::Partial, "{degraded:?}");
    assert_eq!(degraded.shards_answered, 0);
    assert_eq!(degraded.coverage, 0.0);
    let error = degraded.error.as_deref().expect("merge fault must be reported");
    assert!(error.contains("merge"), "{error}");
    let healthy = service.query(&query(&docs[0], 1));
    assert_eq!(healthy.outcome, Outcome::Ok, "{healthy:?}");
}

#[test]
fn transient_ingest_faults_clear_under_retry() {
    let _guard = wmh_fault::scenario("serve::ingest=1in2", seed()).expect("scenario");
    let docs = corpus(48);
    let store = store_for(&docs);
    let with_retry = ServiceConfig { retry: fast_retry(), ..config(4) };
    let service = Service::from_store(&store, with_retry)
        .expect("transient ingest faults must clear under the retry budget");
    let response = service.query(&query(&docs[0], 0));
    assert_eq!(response.outcome, Outcome::Ok, "{response:?}");
}

#[test]
fn permanent_ingest_failure_is_a_typed_error() {
    let _guard = wmh_fault::scenario("serve::ingest@0=always", seed()).expect("scenario");
    let docs = corpus(48);
    let store = store_for(&docs);
    let with_retry = ServiceConfig { retry: fast_retry(), ..config(4) };
    match Service::from_store(&store, with_retry) {
        Err(ServiceError::Ingest { shard, attempts, error }) => {
            assert_eq!(shard, 0, "the @0 schedule only hits shard 0");
            assert!(attempts > 1, "the retry budget must be spent: {attempts}");
            assert!(error.contains("serve::ingest"), "{error}");
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("always-failing ingest built a service"),
    }
}

/// The load generator's accounting under probabilistic chaos, then the
/// fleet recovered and re-measured fault-free.
#[test]
fn loadgen_accounts_every_request_under_chaos() {
    let _guard = wmh_fault::scenario("serve::shard_query=p0.2;serve::admission=p0.05", seed())
        .expect("scenario");
    let docs = corpus(64);
    let service = Service::from_store(&store_for(&docs), config(4)).expect("service");
    let query_docs: Vec<Vec<(u64, f64)>> = docs.iter().map(|d| d.iter().collect()).collect();

    let chaos_config =
        LoadConfig { requests: 240, concurrency: 4, k: 10, deadline_us: 20_000, write_every: 0 };
    let chaotic = loadgen::run(&service, "Syn3E0.24S-soak", &query_docs, &chaos_config);
    chaotic.validate().expect("typed-outcome accounting must survive chaos");
    assert_eq!(chaotic.requests, 240);

    // Faults off; let probes repair whatever got quarantined.
    wmh_fault::clear();
    let mut recovered = false;
    for i in 0..64u64 {
        let _ = service.query(&query(&docs[(i % 16) as usize], 10_000 + i));
        if service.health().shards_quarantined == 0 {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "quarantined shards never recovered after chaos");

    let calm_config =
        LoadConfig { requests: 160, concurrency: 4, k: 10, deadline_us: 2_000_000, write_every: 0 };
    let calm = loadgen::run(&service, "Syn3E0.24S-soak", &query_docs, &calm_config);
    calm.validate().expect("fault-free accounting");
    assert_eq!(calm.ok, calm.requests, "recovered fleet must serve everything: {calm:?}");
    assert_eq!(calm.min_coverage, 1.0, "{calm:?}");
    assert_eq!(calm.shed_slices, 0, "{calm:?}");
}
