//! Integration tests over real loopback TCP: every request terminates in a
//! typed outcome, sharding is invisible in results, and the overload hint
//! follows the supervisor's seeded jitter envelope.

use std::sync::Arc;

use wmh_core::{SketchStore, Sketcher};
use wmh_data::PAPER_DATASETS;
use wmh_serve::{wire, Client, Outcome, QueryRequest, Response, Server, Service, ServiceConfig};
use wmh_sets::WeightedSet;

/// A small Table-4-shaped corpus (`Syn3E0.24S` scaled preserving overlap).
fn corpus(n: usize) -> Vec<WeightedSet> {
    PAPER_DATASETS[2].scaled_down_preserving_overlap(n, 20_000).generate(7).expect("corpus").docs
}

fn store_for(docs: &[WeightedSet]) -> SketchStore {
    let sketcher = wmh_core::cws::Icws::new(9, 128);
    let mut store = SketchStore::new();
    for (id, doc) in docs.iter().enumerate() {
        store.insert(id as u64, &sketcher.sketch(doc).expect("sketch")).expect("insert");
    }
    store
}

/// Generous default deadline so healthy-path tests never flake on a slow
/// machine; individual tests force misses with explicit zero budgets.
fn config(shards: usize) -> ServiceConfig {
    ServiceConfig { shards, default_deadline_us: 5_000_000, ..ServiceConfig::default() }
}

fn pairs(doc: &WeightedSet) -> Vec<(u64, f64)> {
    doc.iter().collect()
}

fn query(doc: &WeightedSet, id: u64) -> QueryRequest {
    QueryRequest { id, doc: pairs(doc), k: 10, deadline_us: Some(2_000_000) }
}

#[test]
fn typed_outcomes_over_tcp() {
    let docs = corpus(48);
    let store = store_for(&docs);
    let service = Arc::new(Service::from_store(&store, config(4)).expect("service"));
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0").expect("server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let health = client.health().expect("health");
    assert!(health.ready, "{health:?}");
    assert_eq!(health.indexed, docs.len());
    assert_eq!(health.shards_quarantined, 0);

    let ok = client.query(&query(&docs[0], 1)).expect("query");
    assert_eq!(ok.outcome, Outcome::Ok, "{ok:?}");
    assert_eq!(ok.results.first(), Some(&(0u64, 1.0f64)), "self-match must lead: {ok:?}");
    assert_eq!(ok.shards_answered, ok.shards_total);
    assert!(ok.error.is_none());

    let miss = client
        .query(&QueryRequest { id: 2, doc: pairs(&docs[1]), k: 10, deadline_us: Some(0) })
        .expect("query");
    assert_eq!(miss.outcome, Outcome::DeadlineExceeded, "{miss:?}");
    assert!(miss.results.is_empty());

    let bad = client
        .query(&QueryRequest { id: 3, doc: Vec::new(), k: 10, deadline_us: None })
        .expect("query");
    assert_eq!(bad.outcome, Outcome::BadRequest, "{bad:?}");
    assert!(bad.error.is_some());

    // The connection survives all three verdicts: outcomes are data, not
    // transport failures.
    let again = client.query(&query(&docs[0], 4)).expect("query");
    assert_eq!(again.outcome, Outcome::Ok);
}

#[test]
fn malformed_json_gets_typed_bad_request() {
    let docs = corpus(24);
    let service = Arc::new(Service::from_store(&store_for(&docs), config(2)).expect("service"));
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0").expect("server");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    wire::write_frame(&mut stream, "this is not json").expect("write");
    let body = wire::read_frame(&mut stream).expect("read").expect("reply");
    let reply: Response = wmh_json::from_str(&body).expect("decode");
    match reply {
        Response::Query(response) => {
            assert_eq!(response.outcome, Outcome::BadRequest, "{response:?}");
            let error = response.error.expect("error detail");
            assert!(error.contains("malformed request"), "{error}");
        }
        Response::Health(h) => panic!("health reply to garbage: {h:?}"),
        Response::Mutation(m) => panic!("mutation reply to garbage: {m:?}"),
    }
}

/// The core serving claim: partitioning the corpus across shards must not
/// change what a query returns. One shard and four shards see the same
/// banded index contents in aggregate, so results are identical.
#[test]
fn sharding_is_invisible_in_results() {
    let docs = corpus(48);
    let store = store_for(&docs);
    let single = Service::from_store(&store, config(1)).expect("1-shard");
    let sharded = Service::from_store(&store, config(4)).expect("4-shard");
    for (i, doc) in docs.iter().take(12).enumerate() {
        let lone = single.query(&query(doc, i as u64));
        let wide = sharded.query(&query(doc, i as u64));
        assert_eq!(lone.outcome, Outcome::Ok, "{lone:?}");
        assert_eq!(wide.outcome, Outcome::Ok, "{wide:?}");
        assert_eq!(lone.results, wide.results, "query {i}: sharding changed results");
    }
}

#[test]
fn overload_hint_follows_backoff_jitter_envelope() {
    let docs = corpus(24);
    let store = store_for(&docs);
    let choked = ServiceConfig { max_inflight: 0, ..config(2) };
    let service = Service::from_store(&store, choked).expect("service");
    let base = service.config().retry.base_backoff;
    for i in 0..8u64 {
        let response = service.query(&query(&docs[i as usize], i));
        assert_eq!(response.outcome, Outcome::Overloaded, "{response:?}");
        let hint = u128::from(response.retry_after_us);
        // First-attempt backoff is base x jitter in [0.5, 1.0].
        assert!(
            hint >= base.as_micros() / 2 && hint <= base.as_micros(),
            "retry_after {hint}us outside [{}/2, {}]us",
            base.as_micros(),
            base.as_micros()
        );
    }
}

#[test]
fn concurrent_clients_all_get_typed_ok() {
    let docs = corpus(48);
    let service = Arc::new(Service::from_store(&store_for(&docs), config(4)).expect("service"));
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0").expect("server");
    let addr = server.addr();
    wmh_check::stress::hammer(8, 6, |t, i| {
        let mut client = Client::connect(addr).expect("connect");
        let doc = &docs[(t * 7 + i) % docs.len()];
        let response = client.query(&query(doc, (t * 100 + i) as u64)).expect("query");
        assert_eq!(response.outcome, Outcome::Ok, "thread {t} iter {i}: {response:?}");
        assert_eq!(response.shards_answered, response.shards_total);
        for pair in response.results.windows(2) {
            assert!(
                pair[0].1 >= pair[1].1,
                "thread {t} iter {i}: results out of order: {response:?}"
            );
        }
    });
    assert_eq!(service.health().inflight, 0, "in-flight gauge must drain to zero");
}
