//! `wmh` — command-line interface to the weighted MinHash toolbox.
//!
//! Documents are JSON weighted sets (`{"doc-id": {"element": weight, …}, …}`
//! or a JSON array of `[index, weight]` pair lists). Subcommands:
//!
//! ```text
//! wmh sketch   --input docs.json --algorithm ICWS --hashes 256 --seed 42 --output sketches.json
//! wmh estimate --input docs.json --algorithm ICWS --hashes 256 [--exact]
//! wmh dedup    --input docs.json --threshold 0.8
//! wmh algorithms
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;
use wmh::core::others::UpperBounds;
use wmh::core::{Algorithm, AlgorithmConfig};
use wmh::lsh::cluster::cluster_by_similarity;
use wmh::lsh::Bands;
use wmh::sets::{generalized_jaccard, WeightedSet};

type DocMap = BTreeMap<String, BTreeMap<String, f64>>;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let flag = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    match cmd.as_str() {
        "algorithms" => {
            for a in Algorithm::ALL {
                let info = a.info();
                println!(
                    "{:<24} {:<36} unbiased: {}",
                    info.name,
                    info.category.label(),
                    if info.unbiased { "yes" } else { "no" }
                );
            }
            Ok(())
        }
        "sketch" => {
            let docs = load_docs(&required(&flag("--input"), "--input")?)?;
            let algo = parse_algorithm(&flag("--algorithm").unwrap_or_else(|| "ICWS".into()))?;
            let hashes: usize = parse_num(&flag("--hashes").unwrap_or_else(|| "256".into()))?;
            let seed: u64 = parse_num(&flag("--seed").unwrap_or_else(|| "42".into()))?;
            let sets = to_sets(&docs)?;
            let sketcher = build(algo, seed, hashes, &sets)?;
            let mut out: BTreeMap<String, Vec<u64>> = BTreeMap::new();
            for (name, set) in &sets {
                let sk = sketcher.sketch(set).map_err(|e| format!("sketching {name:?}: {e}"))?;
                out.insert(name.clone(), sk.codes);
            }
            let json = wmh_json::to_string_pretty(&out);
            match flag("--output") {
                Some(path) => {
                    std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
                    eprintln!("wrote {} sketches to {path}", out.len());
                }
                None => println!("{json}"),
            }
            Ok(())
        }
        "estimate" => {
            let docs = load_docs(&required(&flag("--input"), "--input")?)?;
            let algo = parse_algorithm(&flag("--algorithm").unwrap_or_else(|| "ICWS".into()))?;
            let hashes: usize = parse_num(&flag("--hashes").unwrap_or_else(|| "256".into()))?;
            let seed: u64 = parse_num(&flag("--seed").unwrap_or_else(|| "42".into()))?;
            let exact = args.iter().any(|a| a == "--exact");
            let sets = to_sets(&docs)?;
            let sketcher = build(algo, seed, hashes, &sets)?;
            let sketches: Vec<_> = sets
                .iter()
                .map(|(name, set)| {
                    sketcher
                        .sketch(set)
                        .map(|s| (name.clone(), s))
                        .map_err(|e| format!("sketching {name:?}: {e}"))
                })
                .collect::<Result<_, _>>()?;
            println!(
                "{:<20} {:<20} {:>10} {}",
                "doc A",
                "doc B",
                "estimate",
                if exact { "exact" } else { "" }
            );
            for i in 0..sketches.len() {
                for j in (i + 1)..sketches.len() {
                    let est = sketches[i].1.estimate_similarity(&sketches[j].1);
                    if exact {
                        let ex = generalized_jaccard(&sets[i].1, &sets[j].1);
                        println!(
                            "{:<20} {:<20} {:>10.4} {:.4}",
                            sketches[i].0, sketches[j].0, est, ex
                        );
                    } else {
                        println!("{:<20} {:<20} {:>10.4}", sketches[i].0, sketches[j].0, est);
                    }
                }
            }
            Ok(())
        }
        "dedup" => {
            let docs = load_docs(&required(&flag("--input"), "--input")?)?;
            let threshold: f64 = parse_num(&flag("--threshold").unwrap_or_else(|| "0.8".into()))?;
            let seed: u64 = parse_num(&flag("--seed").unwrap_or_else(|| "42".into()))?;
            let sets = to_sets(&docs)?;
            let vectors: Vec<WeightedSet> = sets.iter().map(|(_, s)| s.clone()).collect();
            let clusters = cluster_by_similarity(
                wmh::core::cws::Icws::new(seed, 128),
                Bands::for_threshold(128, threshold.max(0.05)),
                &vectors,
                threshold,
            )
            .map_err(|e| e.to_string())?;
            for cl in clusters.iter().filter(|c| c.len() > 1) {
                let names: Vec<&str> = cl.iter().map(|&i| sets[i].0.as_str()).collect();
                println!("{}", names.join("\t"));
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  wmh algorithms\n  wmh sketch   --input docs.json [--algorithm ICWS] [--hashes 256] [--seed 42] [--output out.json]\n  wmh estimate --input docs.json [--algorithm ICWS] [--hashes 256] [--seed 42] [--exact]\n  wmh dedup    --input docs.json [--threshold 0.8] [--seed 42]".to_owned()
}

fn required(v: &Option<String>, name: &str) -> Result<String, String> {
    v.clone().ok_or_else(|| format!("missing {name}\n{}", usage()))
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("invalid number {s:?}: {e}"))
}

fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    Algorithm::by_name(name).ok_or_else(|| {
        let all: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        format!("unknown algorithm {name:?}; available: {}", all.join(", "))
    })
}

fn load_docs(path: &str) -> Result<DocMap, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    wmh_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn to_sets(docs: &DocMap) -> Result<Vec<(String, WeightedSet)>, String> {
    docs.iter()
        .map(|(name, elems)| {
            // String element keys hash to stable u64 indices; numeric keys
            // keep their value so results are human-checkable.
            let oracle = wmh::hash::SeededHash::new(0x0D0C);
            let pairs = elems.iter().map(|(key, &w)| {
                let idx = key.parse::<u64>().unwrap_or_else(|_| oracle.hash_bytes(key.as_bytes()));
                (idx, w)
            });
            WeightedSet::from_pairs(pairs)
                .map(|s| (name.clone(), s))
                .map_err(|e| format!("document {name:?}: {e}"))
        })
        .collect()
}

fn build(
    algo: Algorithm,
    seed: u64,
    hashes: usize,
    sets: &[(String, WeightedSet)],
) -> Result<Box<dyn wmh::core::Sketcher + Send + Sync>, String> {
    let config = AlgorithmConfig {
        upper_bounds: UpperBounds::from_sets(sets.iter().map(|(_, s)| s)).ok(),
        ..AlgorithmConfig::default()
    };
    algo.build(seed, hashes, &config).map_err(|e| e.to_string())
}
