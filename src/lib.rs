//! # `wmh` — Weighted MinHash toolbox
//!
//! A Rust reproduction of *"A Review for Weighted MinHash Algorithms"*
//! (ICDE 2023): one unweighted MinHash algorithm, twelve weighted MinHash
//! algorithms, the classical LSH families the review surveys, synthetic
//! power-law workloads, and the full evaluation harness that regenerates
//! every table and figure of the paper.
//!
//! This crate is a facade: it re-exports the workspace crates so downstream
//! users can depend on a single package.
//!
//! ```
//! use wmh::core::{Sketcher, cws::Icws};
//! use wmh::sets::WeightedSet;
//!
//! let s = WeightedSet::from_pairs([(1, 0.5), (7, 2.0), (9, 1.0)]).unwrap();
//! let t = WeightedSet::from_pairs([(1, 0.5), (7, 1.0), (4, 0.3)]).unwrap();
//!
//! let icws = Icws::new(42, 256);
//! let est = icws
//!     .sketch(&s)
//!     .unwrap()
//!     .estimate_similarity(&icws.sketch(&t).unwrap());
//! let exact = wmh::sets::generalized_jaccard(&s, &t);
//! assert!((est - exact).abs() < 0.2);
//! ```

/// Deterministic hashing substrate ([`wmh_hash`]).
pub use wmh_hash as hash;

/// PRNGs, distributions and statistical tests ([`wmh_rng`]).
pub use wmh_rng as rng;

/// Weighted sets and exact similarity measures ([`wmh_sets`]).
pub use wmh_sets as sets;

/// The thirteen (weighted) MinHash algorithms ([`wmh_core`]).
pub use wmh_core as core;

/// Classical LSH families and NN indexes ([`wmh_lsh`]).
pub use wmh_lsh as lsh;

/// Synthetic datasets and text pipelines ([`wmh_data`]).
pub use wmh_data as data;

/// The experiment harness ([`wmh_eval`]).
pub use wmh_eval as eval;

/// Sketch-based feature maps and linear learners ([`wmh_ml`]).
pub use wmh_ml as ml;

/// Dependency-free JSON encoding used across the workspace ([`wmh_json`]).
pub use wmh_json as json;
