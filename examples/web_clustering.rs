//! Near-duplicate clustering at scale — the application that introduced
//! quantization-based weighted MinHash (\[Haveliwala et al., 2000\],
//! "Scalable Techniques for Clustering the Web").
//!
//! Generates a corpus with planted duplicate groups, clusters it through
//! the LSH pipeline (no O(n²) pair scan), and reports cluster purity.
//!
//! ```text
//! cargo run --release --example web_clustering
//! ```

use wmh::core::cws::Icws;
use wmh::lsh::cluster::cluster_by_similarity;
use wmh::lsh::Bands;
use wmh::rng::{Prng, Xoshiro256pp};
use wmh::sets::WeightedSet;

fn main() {
    // 40 "pages", each spawning 2–5 mirrored variants, plus 60 loners.
    let mut rng = Xoshiro256pp::new(21);
    let mut docs: Vec<WeightedSet> = Vec::new();
    let mut truth: Vec<usize> = Vec::new(); // planted group id per doc
    for g in 0..40u64 {
        let base: Vec<(u64, f64)> =
            (0..80).map(|i| (g * 10_000 + i, 1.0 + (rng.next_f64() * 3.0))).collect();
        let variants = 2 + rng.next_below(4) as usize;
        for v in 0..variants {
            let pairs: Vec<(u64, f64)> = base
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + v) % 11 != 0) // ~9% element churn
                .map(|(_, &p)| p)
                .collect();
            docs.push(WeightedSet::from_pairs(pairs).expect("valid"));
            truth.push(g as usize);
        }
    }
    for l in 0..60u64 {
        let pairs: Vec<(u64, f64)> =
            (0..80).map(|i| (900_000 + l * 10_000 + i, 1.0 + rng.next_f64())).collect();
        docs.push(WeightedSet::from_pairs(pairs).expect("valid"));
        truth.push(1000 + l as usize);
    }

    let clusters = cluster_by_similarity(
        Icws::new(3, 128),
        Bands::new(32, 4).expect("valid banding"),
        &docs,
        0.55,
    )
    .expect("clusterable corpus");

    // Purity: fraction of documents whose cluster is dominated by their
    // planted group.
    let mut pure = 0usize;
    for cl in &clusters {
        let mut counts = std::collections::HashMap::new();
        for &i in cl {
            *counts.entry(truth[i]).or_insert(0usize) += 1;
        }
        pure += counts.values().max().copied().unwrap_or(0);
    }
    let purity = pure as f64 / docs.len() as f64;
    let multi = clusters.iter().filter(|c| c.len() > 1).count();
    let singletons = clusters.iter().filter(|c| c.len() == 1).count();

    println!("documents          : {}", docs.len());
    println!("clusters found     : {} ({multi} multi-doc, {singletons} singleton)", clusters.len());
    println!("planted groups     : 40 multi-doc + 60 loners");
    println!("cluster purity     : {purity:.3}");
    assert!(purity > 0.95, "clustering degraded: purity {purity}");
    println!("\nNo O(n^2) pair scan: candidate pairs come from shared LSH buckets only.");
}
