//! Near-duplicate document detection — the paper's motivating application
//! (§1: tf-idf bag-of-words, §2.2: duplicate webpage detection).
//!
//! Builds tf-idf weighted sets from a small embedded corpus containing
//! planted near-duplicates, sketches them with ICWS, and finds the
//! duplicates through a banded LSH index.
//!
//! ```text
//! cargo run --release --example document_dedup
//! ```

use wmh::core::cws::Icws;
use wmh::lsh::{Bands, LshIndex};
use wmh::sets::generalized_jaccard;
use wmh::sets::tfidf::TfIdfCorpus;

const DOCS: &[(&str, &str)] = &[
    (
        "minhash-orig",
        "MinHash estimates the Jaccard similarity of sets by hashing every element \
         and keeping the minimum hash value as a fingerprint of the whole set.",
    ),
    (
        "minhash-edit",
        "MinHash estimates the Jaccard similarity of two sets by hashing each element \
         and keeping the minimum value as a compact fingerprint of the whole set.",
    ),
    (
        "cws-orig",
        "Consistent weighted sampling generalizes minwise hashing to weighted sets, \
         sampling each element with probability proportional to its weight.",
    ),
    (
        "cws-edit",
        "Consistent weighted sampling extends minwise hashing to weighted sets by \
         sampling every element with probability proportional to its weight.",
    ),
    (
        "cooking",
        "Slice the onions finely, brown them in butter over low heat, then fold in \
         the mushrooms and a pinch of salt before serving over rice.",
    ),
    (
        "astronomy",
        "The telescope resolves distant galaxies whose light left them billions of \
         years ago, letting astronomers study the early structure of the universe.",
    ),
];

fn main() {
    // 1. Text → tf-idf weighted sets over a shared vocabulary.
    let mut corpus = TfIdfCorpus::new();
    for (_, text) in DOCS {
        corpus.add_document(text);
    }
    let vectors = corpus.tfidf_all();

    // 2. Index ICWS sketches with banding tuned for ~0.5 similarity.
    let bands = Bands::for_threshold(128, 0.5);
    println!(
        "banding: {} bands x {} rows (threshold ≈ {:.2})\n",
        bands.bands,
        bands.rows,
        bands.threshold()
    );
    let mut index = LshIndex::new(Icws::new(7, 128), bands).expect("bands fit the sketcher");
    for (id, v) in vectors.iter().enumerate() {
        index.insert(id as u64, v).expect("non-empty document");
    }

    // 3. Report candidate duplicates per document.
    println!("{:<14} {:<14} {:>9} {:>9}", "query", "match", "estimated", "exact");
    for (qid, v) in vectors.iter().enumerate() {
        for (mid, est) in index.query_top_k(v, 3).expect("query works") {
            if mid == qid as u64 {
                continue;
            }
            let exact = generalized_jaccard(v, &vectors[mid as usize]);
            println!(
                "{:<14} {:<14} {:>9.3} {:>9.3}",
                DOCS[qid].0, DOCS[mid as usize].0, est, exact
            );
        }
    }

    println!(
        "\nThe *-orig / *-edit pairs surface as near-duplicates; the cooking and \
         astronomy documents match nothing."
    );
}
