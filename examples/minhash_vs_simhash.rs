//! MinHash vs SimHash on binary sets — the comparison behind the paper's
//! reference \[12\] (Shrivastava & Li, "In Defense of MinHash over
//! SimHash", AISTATS 2014): for sparse binary data, MinHash's collision
//! probability (the Jaccard similarity) separates near pairs from far pairs
//! better than SimHash's (1 − θ/π).
//!
//! ```text
//! cargo run --release --example minhash_vs_simhash
//! ```

use wmh::core::minhash::MinHash;
use wmh::core::Sketcher;
use wmh::lsh::SimHash;
use wmh::sets::{cosine_similarity, jaccard, WeightedSet};

fn binary(range: std::ops::Range<u64>) -> WeightedSet {
    WeightedSet::binary(range).expect("valid")
}

fn main() {
    let bits = 2048;
    let mh = MinHash::new(17, bits);
    let sh = SimHash::new(17, bits);

    // Pairs at decreasing overlap of 100-element binary sets.
    println!(
        "{:>8} {:>9} {:>9} {:>12} {:>12}",
        "overlap", "Jaccard", "cosine", "MinHash-col", "SimHash-col"
    );
    let mut rows = Vec::new();
    for overlap in [90u64, 70, 50, 30, 10] {
        let s = binary(0..100);
        let t = binary((100 - overlap)..(200 - overlap));
        let j = jaccard(&s, &t);
        let c = cosine_similarity(&s, &t);
        // Empirical collision probabilities of one hash/bit.
        let mh_col = mh
            .sketch(&s)
            .expect("non-empty")
            .estimate_similarity(&mh.sketch(&t).expect("non-empty"));
        let sh_sig_s = sh.signature(&s);
        let sh_sig_t = sh.signature(&t);
        let sh_col = 1.0 - f64::from(sh_sig_s.hamming(&sh_sig_t)) / bits as f64;
        println!("{overlap:>8} {j:>9.3} {c:>9.3} {mh_col:>12.3} {sh_col:>12.3}");
        rows.push((j, mh_col, sh_col));
    }

    // The defense: MinHash's collision gap between the nearest and farthest
    // pair exceeds SimHash's, i.e. more bits of separation per hash.
    let mh_gap = rows[0].1 - rows[rows.len() - 1].1;
    let sh_gap = rows[0].2 - rows[rows.len() - 1].2;
    println!("\ncollision-probability gap (near − far):");
    println!("  MinHash : {mh_gap:.3}");
    println!("  SimHash : {sh_gap:.3}");
    assert!(mh_gap > sh_gap, "expected MinHash to separate better");
    println!(
        "\nMinHash spends its collision range on the Jaccard scale directly, while\n\
         SimHash compresses it through 1 − θ/π — the 'defense of MinHash' result\n\
         the review cites when motivating Jaccard-family sketches for sparse data."
    );
}
