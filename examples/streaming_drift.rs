//! Streaming similarity under concept drift — the paper's future-work
//! scenario (§7), using the HistoSketch-style gradual-forgetting sketch.
//!
//! Two activity streams share their early history, then drift apart. With
//! forgetting (`λ < 1`) the sketches track the *recent* behaviour; without
//! it the stale shared history keeps the similarity estimate high.
//!
//! ```text
//! cargo run --release --example streaming_drift
//! ```

use wmh::core::extensions::HistoSketch;
use wmh::sets::generalized_jaccard;

fn run(lambda: f64) -> Vec<(usize, f64, f64)> {
    let d = 512;
    let mut a = HistoSketch::new(5, d).expect("valid D");
    let mut b = HistoSketch::new(5, d).expect("valid D");
    let mut trace = Vec::new();

    // Phase 1 (epochs 0–9): identical behaviour.
    // Phase 2 (epochs 10–29): disjoint behaviour.
    for epoch in 0..30 {
        a.decay(lambda).expect("valid lambda");
        b.decay(lambda).expect("valid lambda");
        for item in 0..8u64 {
            if epoch < 10 {
                a.add(item, 1.0).expect("valid mass");
                b.add(item, 1.0).expect("valid mass");
            } else {
                a.add(1_000 + item, 1.0).expect("valid mass");
                b.add(2_000 + item, 1.0).expect("valid mass");
            }
        }
        let est =
            a.sketch().expect("non-empty").estimate_similarity(&b.sketch().expect("non-empty"));
        let exact = generalized_jaccard(
            &a.histogram().expect("non-empty"),
            &b.histogram().expect("non-empty"),
        );
        trace.push((epoch, est, exact));
    }
    trace
}

fn main() {
    let with = run(0.8);
    let without = run(1.0);

    println!("epoch | est (λ=0.8) exact (λ=0.8) | est (λ=1.0) exact (λ=1.0)");
    for i in (0..30).step_by(3) {
        println!(
            "{:>5} | {:>11.3} {:>13.3} | {:>11.3} {:>13.3}",
            with[i].0, with[i].1, with[i].2, without[i].1, without[i].2
        );
    }

    let final_with = with.last().expect("non-empty").1;
    let final_without = without.last().expect("non-empty").1;
    println!(
        "\nAfter 20 epochs of drift: similarity {final_with:.3} with forgetting vs \
         {final_without:.3} without — gradual forgetting lets the sketch follow the drift."
    );
}
