//! Quickstart: estimate the generalized Jaccard similarity of two weighted
//! sets with several algorithms and compare against the exact value.
//!
//! The two sets share the *same support* but carry different weights — the
//! case the paper's introduction motivates: plain MinHash discards the
//! weights entirely and reports similarity 1.0, while the weighted
//! algorithms recover Eq. 2.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wmh::core::cws::{Cws, Icws, Pcws};
use wmh::core::minhash::MinHash;
use wmh::core::Sketcher;
use wmh::sets::{generalized_jaccard, jaccard, WeightedSet};

fn main() {
    // Same 60 terms, rotated tf-style weights {1, 2, 3}.
    let s =
        WeightedSet::from_pairs((0..60u64).map(|k| (k, 1.0 + (k % 3) as f64))).expect("valid set");
    let t = WeightedSet::from_pairs((0..60u64).map(|k| (k, 1.0 + ((k + 1) % 3) as f64)))
        .expect("valid set");

    println!("exact generalized Jaccard : {:.4}", generalized_jaccard(&s, &t));
    println!("exact (binary) Jaccard    : {:.4}", jaccard(&s, &t));
    println!();

    let d = 1024;
    let seed = 42;
    let estimate = |sketcher: &dyn Sketcher| {
        sketcher
            .sketch(&s)
            .expect("non-empty")
            .estimate_similarity(&sketcher.sketch(&t).expect("non-empty"))
    };

    println!("{:<28}: {:.4}", "CWS", estimate(&Cws::new(seed, d)));
    println!("{:<28}: {:.4}", "ICWS", estimate(&Icws::new(seed, d)));
    println!("{:<28}: {:.4}", "PCWS", estimate(&Pcws::new(seed, d)));
    println!("{:<28}: {:.4}", "MinHash (weights discarded)", estimate(&MinHash::new(seed, d)));

    println!(
        "\nMinHash sees identical supports and says 1.0; the weighted algorithms \
         recover the true similarity {:.2}.",
        generalized_jaccard(&s, &t)
    );
}
