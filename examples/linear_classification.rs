//! Large-scale-learning pipeline — the application that motivates 0-bit CWS
//! (paper §4.2.3): weighted documents → 0-bit CWS sketches → hashed one-hot
//! features → a linear classifier.
//!
//! Two synthetic "topics" share part of their vocabulary; the classifier
//! trained on sketch features separates them, and a raw-support baseline
//! shows the sketch features carry the weight information MinHash features
//! would lose.
//!
//! ```text
//! cargo run --release --example linear_classification
//! ```

use wmh::core::cws::ZeroBitCws;
use wmh::core::minhash::MinHash;
use wmh::ml::SketchClassifier;
use wmh::rng::{Prng, Xoshiro256pp};
use wmh::sets::WeightedSet;

/// Two topics over the SAME support (features 0..100) distinguished only by
/// their *weight profiles*: topic A emphasizes low features, topic B high
/// ones. Support-only methods cannot separate them.
fn corpus(n: usize, seed: u64) -> Vec<(WeightedSet, bool)> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..n)
        .map(|i| {
            let label = i % 2 == 0;
            let pairs: Vec<(u64, f64)> = (0..100u64)
                .map(|k| {
                    let topical = if label { (100 - k) as f64 } else { k as f64 };
                    (k, 0.2 + topical / 25.0 * (0.5 + rng.next_f64()))
                })
                .collect();
            (WeightedSet::from_pairs(pairs).expect("valid"), label)
        })
        .collect()
}

fn main() {
    let train = corpus(400, 1);
    let test = corpus(200, 2);
    let (d, dim, epochs) = (128, 8192, 15);

    let mut weighted =
        SketchClassifier::new(ZeroBitCws::new(9, d), 9, dim).expect("valid dimension");
    weighted.fit(&train, epochs).expect("trainable");
    let weighted_acc = weighted.accuracy(&test).expect("evaluable");

    let mut unweighted =
        SketchClassifier::new(MinHash::new(9, d), 9, dim).expect("valid dimension");
    unweighted.fit(&train, epochs).expect("trainable");
    let unweighted_acc = unweighted.accuracy(&test).expect("evaluable");

    println!("documents: same support, different weight profiles");
    println!("test accuracy, 0-bit CWS features : {weighted_acc:.3}");
    println!("test accuracy, MinHash features   : {unweighted_acc:.3}");
    println!(
        "\n0-bit CWS codes sample elements in proportion to their weights, so the\n\
         linear model sees the topical weight profile; MinHash codes sample the\n\
         (identical) supports uniformly and carry no signal."
    );
}
