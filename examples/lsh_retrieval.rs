//! Approximate top-k retrieval on a power-law corpus: LSH candidates vs the
//! exact brute-force scan (paper Definitions 1–3), with recall measured
//! against the ground truth.
//!
//! ```text
//! cargo run --release --example lsh_retrieval
//! ```

use wmh::core::cws::Icws;
use wmh::data::SynConfig;
use wmh::lsh::nn::{range_neighbors, recall};
use wmh::lsh::{Bands, LshIndex};
use wmh::sets::{generalized_jaccard, WeightedSet};

fn main() {
    // A corpus of power-law documents plus planted near-neighbours.
    let cfg = SynConfig { docs: 300, features: 5_000, density: 0.02, exponent: 3.0, scale: 0.2 };
    let mut docs = cfg.generate(11).expect("valid config").docs;
    let n_base = docs.len();
    // Plant 20 perturbed copies of the first 20 documents.
    for i in 0..20 {
        let noisy: Vec<(u64, f64)> = docs[i]
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % 9 != 0) // drop ~11% of elements
            .map(|(_, (k, w))| (k, w))
            .collect();
        docs.push(WeightedSet::from_pairs(noisy).expect("valid"));
    }

    let bands = Bands::new(24, 3).expect("valid banding");
    let mut index =
        LshIndex::new(Icws::new(3, bands.total_hashes()), bands).expect("bands fit the sketcher");
    for (id, d) in docs.iter().enumerate() {
        index.insert(id as u64, d).expect("non-empty");
    }

    // R-near-neighbour queries (Definition 2): everything with similarity
    // at least 0.3 — well above the corpus noise floor (~0.01) and below
    // the planted duplicates (~0.8).
    let threshold = 0.3;
    let mut recalls = Vec::new();
    let mut cand_counts = Vec::new();
    for i in 0..20 {
        let query = &docs[n_base + i]; // the planted near-duplicate
        let approx: Vec<u64> = index
            .query_above(query, threshold)
            .expect("query works")
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let exact: Vec<u64> = range_neighbors(query, &docs, generalized_jaccard, threshold)
            .into_iter()
            .map(|(id, _)| id as u64)
            .collect();
        recalls.push(recall(&approx, &exact));
        cand_counts.push(index.candidates(query).expect("query works").len());
        if i < 5 {
            println!("query {:>3}: exact R-NN {:?}, LSH R-NN {:?}", n_base + i, exact, approx);
        }
    }

    let mean_recall = recalls.iter().sum::<f64>() / recalls.len() as f64;
    let mean_cands = cand_counts.iter().sum::<usize>() as f64 / cand_counts.len() as f64;
    println!("\nmean R-NN recall (sim >= {threshold}) : {mean_recall:.2}");
    println!(
        "mean candidates examined      : {mean_cands:.0} of {} ({:.1}% of a brute-force scan)",
        docs.len(),
        100.0 * mean_cands / docs.len() as f64
    );
}
