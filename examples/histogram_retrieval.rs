//! Histogram retrieval with χ²-LSH vs weighted MinHash — the image-
//! histogram domain of \[Chum et al., 2008\] (near-duplicate *image*
//! detection) and \[Gorisse et al., 2012\] (χ²-LSH, paper Table 1).
//!
//! Synthetic colour-histogram "images" are perturbed into near-duplicates;
//! both a χ²-LSH `VectorIndex` and a generalized-Jaccard `LshIndex` must
//! surface them, each under its own similarity geometry.
//!
//! ```text
//! cargo run --release --example histogram_retrieval
//! ```

use wmh::core::cws::Icws;
use wmh::lsh::chi2::Chi2Lsh;
use wmh::lsh::vector_index::VectorIndex;
use wmh::lsh::{Bands, LshIndex};
use wmh::rng::{Prng, Xoshiro256pp};
use wmh::sets::WeightedSet;

/// A synthetic 64-bin colour histogram: a few dominant modes plus noise.
fn histogram(rng: &mut Xoshiro256pp, modes: &[(u64, f64)]) -> WeightedSet {
    let pairs: Vec<(u64, f64)> = (0..64u64)
        .map(|bin| {
            let mode_mass: f64 = modes
                .iter()
                .map(|&(center, mass)| {
                    let d = bin.abs_diff(center) as f64;
                    mass * (-d * d / 18.0).exp()
                })
                .sum();
            (bin, 0.05 + mode_mass + 0.05 * rng.next_f64())
        })
        .collect();
    WeightedSet::from_pairs(pairs).expect("valid histogram")
}

fn main() {
    let mut rng = Xoshiro256pp::new(33);
    // 30 base "images", each with one perturbed near-duplicate.
    let mut images = Vec::new();
    for i in 0..30u64 {
        let modes = [(rng.next_below(64), 2.0 + rng.next_f64()), (rng.next_below(64), 1.0)];
        images.push(histogram(&mut rng, &modes));
        // Near-duplicate: same modes, slightly different masses.
        let perturbed = [(modes[0].0, modes[0].1 * 1.08), (modes[1].0, modes[1].1 * 0.94)];
        images.push(histogram(&mut rng, &perturbed));
        let _ = i;
    }

    // χ²-LSH index (the Table 1 family for χ² distance).
    let chi2 = Chi2Lsh::new(5, 96, 0.8).expect("valid width");
    let mut chi_index = VectorIndex::new(chi2, Bands::new(24, 4).expect("valid")).expect("fits");
    for (id, img) in images.iter().enumerate() {
        chi_index.insert(id as u64, img);
    }

    // Weighted MinHash index (generalized Jaccard geometry).
    let mut wmh_index =
        LshIndex::new(Icws::new(5, 96), Bands::new(24, 4).expect("valid")).expect("fits");
    for (id, img) in images.iter().enumerate() {
        wmh_index.insert(id as u64, img).expect("non-empty");
    }

    let mut chi_hits = 0usize;
    let mut wmh_hits = 0usize;
    for pair in 0..30usize {
        let (a, b) = (2 * pair, 2 * pair + 1);
        if chi_index.candidates(&images[a]).contains(&(b as u64)) {
            chi_hits += 1;
        }
        if wmh_index
            .query_top_k(&images[a], 2)
            .expect("query works")
            .iter()
            .any(|&(id, _)| id == b as u64)
        {
            wmh_hits += 1;
        }
    }

    println!("30 planted near-duplicate histogram pairs:");
    println!("  chi2-LSH candidate recall      : {}/30", chi_hits);
    println!("  weighted MinHash top-2 recall  : {}/30", wmh_hits);
    assert!(chi_hits >= 24, "chi2 recall degraded: {chi_hits}");
    assert!(wmh_hits >= 24, "wmh recall degraded: {wmh_hits}");
    println!(
        "\nBoth geometries surface the duplicates; chi2-LSH buckets by projection\n\
         cells (Gorisse et al.), weighted MinHash by consistent weighted samples."
    );
}
