//! A tour of all thirteen algorithms (paper §6.2's list) on one synthetic
//! dataset: per-algorithm estimate quality and sketching time, in one table.
//!
//! ```text
//! cargo run --release --example algorithm_tour
//! ```

use std::time::Instant;
use wmh::core::others::UpperBounds;
use wmh::core::{Algorithm, AlgorithmConfig};
use wmh::data::pairs::sample_pairs;
use wmh::data::SynConfig;
use wmh::rng::stats::mse;
use wmh::sets::generalized_jaccard;

fn main() {
    let cfg = SynConfig { docs: 60, features: 2_000, density: 0.03, exponent: 3.0, scale: 0.24 };
    let ds = cfg.generate(9).expect("valid config");
    let pairs = sample_pairs(ds.docs.len(), 200, 9);
    let truths: Vec<f64> =
        pairs.iter().map(|&(i, j)| generalized_jaccard(&ds.docs[i], &ds.docs[j])).collect();
    println!(
        "dataset {}: {} docs, mean pair similarity {:.4}\n",
        ds.name,
        ds.len(),
        truths.iter().sum::<f64>() / truths.len() as f64
    );

    let config = AlgorithmConfig {
        quantization_constant: 500.0,
        upper_bounds: Some(UpperBounds::from_sets(ds.docs.iter()).expect("non-empty")),
        max_rejection_draws: 2_000_000,
        ccws_weight_scale: 10.0,
        ..AlgorithmConfig::default()
    };
    let d = 256;

    println!(
        "{:<24} {:<34} {:>10} {:>9} {:>9}",
        "algorithm", "category", "MSE", "seconds", "unbiased"
    );
    for algo in Algorithm::ALL {
        let sketcher = algo.build(1, d, &config).expect("buildable");
        let start = Instant::now();
        let sketches: Vec<_> =
            ds.docs.iter().map(|doc| sketcher.sketch(doc).expect("sketchable")).collect();
        let secs = start.elapsed().as_secs_f64();
        let ests: Vec<f64> =
            pairs.iter().map(|&(i, j)| sketches[i].estimate_similarity(&sketches[j])).collect();
        let info = algo.info();
        println!(
            "{:<24} {:<34} {:>10.3e} {:>9.3} {:>9}",
            info.name,
            info.category.label(),
            mse(&ests, &truths),
            secs,
            if info.unbiased { "yes" } else { "no" }
        );
    }
}
