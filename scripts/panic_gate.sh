#!/usr/bin/env bash
# Static no-panic gate for the sketching core (crates/core + crates/sets),
# the experiment engine (crates/eval + crates/par), the fault harness
# (crates/fault), and the retrieval stack (crates/lsh + crates/serve).
#
# Non-test code in those crates must not call `.unwrap()` / `.expect(` /
# `panic!` / `unreachable!` / `todo!` / `unimplemented!` — the tentpole
# guarantee is that every input produces a value or a typed error. The few
# deliberate exceptions (documented panicking convenience wrappers) live in
# scripts/panic_allowlist.txt; the gate fails on any hit missing from the
# allowlist AND on any allowlist entry that no longer matches (so the list
# can only shrink by editing it consciously).
#
# Heuristics, matching this repo's layout conventions:
#   * everything from a line starting with `#[cfg(test)]` (or a
#     `#[cfg(all(test, ...))]` feature-gated variant) to end-of-file is a
#     test module (test modules sit at the bottom of each file);
#   * `//`-prefixed lines (incl. `///` doc examples) are not code.
#
# Scope: in crates/eval only the *engine* is gated (runner, sweep,
# checkpoint, supervisor, report, cli). crates/eval/src/experiments/ and
# crates/eval/src/bin/ are presentation code driving fixed didactic inputs
# — expects on those inputs are assertions about the repo's own constants,
# not reachable failure paths, and gating them would bury the engine's
# grants under dozens of noise entries.
#
# Usage: scripts/panic_gate.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/panic_allowlist.txt
hits=$(mktemp)
trap 'rm -f "$hits"' EXIT

for f in $(find crates/core/src crates/sets/src crates/eval/src crates/par/src \
             crates/fault/src crates/lsh/src crates/serve/src -name '*.rs' \
             -not -path 'crates/eval/src/experiments/*' \
             -not -path 'crates/eval/src/bin/*' | sort); do
  awk -v FN="$f" '
    /^#\[cfg\((all\()?test[,)]/ { intest = 1 }
    intest { next }
    /^[[:space:]]*\/\// { next }
    /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\(/ {
      line = $0
      gsub(/^[[:space:]]+|[[:space:]]+$/, "", line)
      print FN ": " line
    }
  ' "$f"
done > "$hits"

fail=0
while IFS= read -r hit; do
  if ! grep -Fxq "$hit" "$ALLOWLIST"; then
    echo "panic gate: NOT allowlisted: $hit" >&2
    fail=1
  fi
done < "$hits"

# Stale allowlist entries mean the panic site moved or vanished — the list
# must be edited to match reality, not accumulate dead grants.
while IFS= read -r grant; do
  case "$grant" in ''|'#'*) continue ;; esac
  if ! grep -Fxq "$grant" "$hits"; then
    echo "panic gate: stale allowlist entry (no longer in code): $grant" >&2
    fail=1
  fi
done < "$ALLOWLIST"

if [ "$fail" -ne 0 ]; then
  echo "panic gate FAILED — convert the site to a typed error or allowlist it consciously." >&2
  exit 1
fi
echo "panic gate passed ($(grep -vc '^\s*$\|^#' "$ALLOWLIST" || true) allowlisted sites)."
