#!/usr/bin/env bash
# CI performance gate: run the wmh-perf quick suite (release build) and
# compare per-workload medians against the checked-in baseline,
# results/BENCH_baseline.json. A workload that slows by more than the
# tolerance — or disappears from the suite — fails the gate. Workloads
# over tolerance are re-measured individually (a scheduler burst on a
# shared machine slows one sample batch, not every retry; a genuine
# regression reproduces on all of them).
#
# Environment:
#   WMH_SKIP_PERF=1    skip the gate entirely (shared/noisy machines).
#   WMH_PERF_TOL       regression tolerance as a fraction (default 0.25,
#                      i.e. fail on a >25% median slowdown).
#   WMH_PERF_RETRIES   targeted re-measurements per suspect workload
#                      (default 2).
#
# The baseline is machine-dependent. After an intentional perf change (or
# on a new machine), refresh it and commit the result:
#   cargo run --release -p wmh-perf -- run --profile quick \
#     --out results/BENCH_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${WMH_SKIP_PERF:-0}" == "1" ]]; then
  echo "==> skipping perf gate (WMH_SKIP_PERF=1)"
  exit 0
fi

cargo build --release -q -p wmh-perf
./target/release/wmh-perf gate \
  --profile quick \
  --baseline results/BENCH_baseline.json \
  --out target/perf/BENCH_current.json \
  --tolerance "${WMH_PERF_TOL:-0.25}" \
  --retries "${WMH_PERF_RETRIES:-2}"

# The serving load report is part of the gated perf surface: it must exist,
# parse, and satisfy the load generator's accounting invariants. Refresh it
# after an intentional serving change with:
#   cargo run --release -p wmh-serve -- load --out results/BENCH_serve_load.json
cargo build --release -q -p wmh-serve
./target/release/wmh-serve check-report results/BENCH_serve_load.json
