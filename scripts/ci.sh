#!/usr/bin/env bash
# Pre-PR gate: build, test, format, lint. Everything here is offline-safe —
# the workspace has no registry dependencies (wmh-bench, which pulls
# criterion, lives in its own excluded workspace under crates/bench/).
#
# Usage: scripts/ci.sh [--quick]
#
# --quick is the inner-loop mode (see CONTRIBUTING.md): debug builds and
# scaled-down statistical suites, so it finishes in a few minutes. It
# skips the perf gate — debug-build timings say nothing about release
# performance. The full (default) mode is the merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
elif [[ $# -gt 0 ]]; then
  echo "usage: scripts/ci.sh [--quick]" >&2
  exit 2
fi

if [[ "$QUICK" == "1" ]]; then
  RELEASE=()
  CHECK_CASES_DEFAULT=2
  CHAOS_CASES_DEFAULT=5000
else
  RELEASE=(--release)
  CHECK_CASES_DEFAULT=6
  CHAOS_CASES_DEFAULT=100000
fi

run() {
  echo "==> $*"
  "$@"
}

run cargo build "${RELEASE[@]}" --workspace
run cargo test "${RELEASE[@]}" --workspace -q

# Estimator-conformance suite. WMH_CHECK_CASES scales it (the CLT bound
# tightens as repetitions grow, so a nightly run with a larger count is a
# stricter gate, not just a longer one).
run env WMH_CHECK_CASES="${WMH_CHECK_CASES:-$CHECK_CASES_DEFAULT}" \
  cargo test "${RELEASE[@]}" -p wmh-core --test conformance -q

# Catalog-count pin: the CLI must list exactly the 15 registered algorithms
# (the paper's 13 + DartMinHash/BagMinHash). A silently unregistered
# sketcher would shrink every ALL-driven suite without failing any test —
# this step (and conformance's catalog_pins_fifteen_algorithms) makes that
# loud.
echo "==> catalog count pin (expect 15 algorithms)"
ALGO_COUNT="$(cargo run "${RELEASE[@]}" -q -- algorithms | wc -l)"
if [[ "$ALGO_COUNT" != "15" ]]; then
  echo "catalog lists $ALGO_COUNT algorithms, expected 15" >&2
  exit 1
fi

# Static no-panic gate: non-test code in the sketching core must not
# unwrap/expect/panic outside the checked-in allowlist
# (scripts/panic_allowlist.txt).
run scripts/panic_gate.sh

# Adversarial chaos suite: hostile weights and index layouts against all
# 15 algorithms — no panic, no hang, typed errors or full-length
# deterministic sketches only. WMH_CHAOS_CASES scales it.
run env WMH_CHAOS_CASES="${WMH_CHAOS_CASES:-$CHAOS_CASES_DEFAULT}" \
  cargo test "${RELEASE[@]}" -p wmh-core --test chaos -q

# 1-vs-N-thread determinism: the parallel sweep must return byte-identical
# results at every thread count, and the committer must never interleave
# partial checkpoint lines.
run cargo test "${RELEASE[@]}" -p wmh-eval --test determinism -q

# Failpoint machinery: the wmh-fault crate's own scenario/registry suite
# (points compile to no-ops without the feature, so it must be explicit).
run cargo test "${RELEASE[@]}" -p wmh-fault --features failpoints -q

# Chaos soak: the Figure 8 sweep under randomized transient fault schedules
# must finish byte-identical to a fault-free run at 1 and 8 threads, and
# timed-out / quarantined cells must stay terminal across resume. The soak
# runs its built-in seeds plus the pinned WMH_FAULT_SEED below; override the
# pin to probe new schedules (determinism holds for any seed, so a failure
# under a fresh seed is a real bug, not flakiness).
run env WMH_FAULT_SEED="${WMH_FAULT_SEED:-0xC1A05}" \
  cargo test "${RELEASE[@]}" -p wmh-eval --features wmh-fault/failpoints \
  --test chaos_soak --test supervision -q

# Serving chaos soak: quarantine/recovery byte-identity, typed outcomes
# under injected shard/admission faults, and supervised ingest retry — the
# wmh-serve robustness envelope under the same pinned seed.
run env WMH_FAULT_SEED="${WMH_FAULT_SEED:-0xC1A05}" \
  cargo test "${RELEASE[@]}" -p wmh-serve --features wmh-fault/failpoints \
  --test chaos_soak -q

# Mutation chaos soak: kill-resume recovery over the write-ahead log must
# replay byte-identical with faults injected at every commit-path failpoint
# (serve::wal_append, serve::wal_fsync, serve::apply, serve::reshard) at
# 1/2/8 shards; torn tails discard, exhausted appends flip read-only, and
# re-shards converge byte-identical to from-scratch partitions.
run env WMH_FAULT_SEED="${WMH_FAULT_SEED:-0xC1A05}" \
  cargo test "${RELEASE[@]}" -p wmh-serve --features wmh-fault/failpoints \
  --test mutation_soak -q

# Durability-lifecycle soak: kill-resume byte-identity with faults at every
# lifecycle failpoint (serve::snapshot_write/fsync/rename, serve::wal_rotate,
# serve::scrub) at 1/2/8 shards; compaction-bounded replay pinned by the
# serve::wal_replay hit counter; one-generation fallback from a flipped bit;
# ENOSPC-style snapshot aborts; half-open write-gate recovery.
run env WMH_FAULT_SEED="${WMH_FAULT_SEED:-0xC1A05}" \
  cargo test "${RELEASE[@]}" -p wmh-serve --features wmh-fault/failpoints \
  --test snapshot_soak -q

# Scrub gate, called out by name: a flipped bit in a snapshot AND a sealed
# WAL segment must be detected, quarantined to *.bad, and healed with a
# fresh snapshot under the pinned seed — query bytes unchanged.
run env WMH_FAULT_SEED="${WMH_FAULT_SEED:-0xC1A05}" \
  cargo test "${RELEASE[@]}" -p wmh-serve --features wmh-fault/failpoints \
  --test snapshot_soak scrub_detects_flipped_bits_and_heals -q

# Serving smoke: a real loopback server must answer every outcome class
# typed — healthy, forced deadline miss, forced overload, bad request, and
# a mutation against a read-only service.
if [[ "$QUICK" == "1" ]]; then
  run cargo run -q -p wmh-serve -- smoke --quick
else
  run cargo run "${RELEASE[@]}" -q -p wmh-serve -- smoke
fi

# Live-mutation soak over the wire: the whole mutation surface against a
# WAL-backed loopback server, then kill-resume and a live re-shard both
# proven byte-identical end to end.
if [[ "$QUICK" == "1" ]]; then
  run cargo run -q -p wmh-serve -- mutation-soak --quick
else
  run cargo run "${RELEASE[@]}" -q -p wmh-serve -- mutation-soak
fi

# Every checked-in results/*.json must match its registered schema
# (crates/perf/src/schemas.rs); an unregistered file name is a failure.
run cargo run "${RELEASE[@]}" -q -p wmh-perf --bin schema_check -- results

# Performance gate: the wmh-perf quick suite vs results/BENCH_baseline.json
# (skippable via WMH_SKIP_PERF=1; tolerance via WMH_PERF_TOL).
if [[ "$QUICK" == "1" ]]; then
  echo "==> skipping perf gate (--quick: debug timings are not gateable)"
else
  run scripts/perf_gate.sh
fi

# Formatting and lints are advisory if the components are not installed
# (minimal toolchains ship without rustfmt/clippy).
if cargo fmt --version >/dev/null 2>&1; then
  run cargo fmt --all -- --check
else
  echo "==> skipping cargo fmt (rustfmt not installed)"
fi
if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --workspace --all-targets -- -D warnings
else
  echo "==> skipping cargo clippy (clippy not installed)"
fi

echo "CI gate passed."
