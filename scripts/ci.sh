#!/usr/bin/env bash
# Pre-PR gate: build, test, format, lint. Everything here is offline-safe —
# the workspace has no registry dependencies (wmh-bench, which pulls
# criterion, lives in its own excluded workspace under crates/bench/).
#
# Usage: scripts/ci.sh [--quick] [--only STEP] [--list]
#
# --quick is the inner-loop mode (see CONTRIBUTING.md): debug builds and
# scaled-down statistical suites, so it finishes in a few minutes. It
# skips the perf gate — debug-build timings say nothing about release
# performance. The full (default) mode is the merge gate.
#
# --only STEP runs a single named step (combine with --quick for a fast
# debug-build iteration on one gate); --list prints the step names with
# one-line descriptions and exits.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() { echo "usage: scripts/ci.sh [--quick] [--only STEP] [--list]" >&2; }

QUICK=0
ONLY=""
LIST=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --only)
      [[ $# -ge 2 ]] || { usage; exit 2; }
      ONLY="$2"
      shift
      ;;
    --list) LIST=1 ;;
    *)
      usage
      exit 2
      ;;
  esac
  shift
done

FULL_CHECK_CASES=6
FULL_CHAOS_CASES=100000
if [[ "$QUICK" == "1" ]]; then
  RELEASE=()
  CHECK_CASES_DEFAULT=2
  CHAOS_CASES_DEFAULT=5000
else
  RELEASE=(--release)
  CHECK_CASES_DEFAULT=$FULL_CHECK_CASES
  CHAOS_CASES_DEFAULT=$FULL_CHAOS_CASES
fi

# Effective suite-scaling env, exported once so EVERY cargo invocation
# below sees the same values — including the plain `--workspace` test run,
# which executes the conformance/chaos binaries too. (Before this export
# the scaled counts were set inline on the dedicated steps only, so the
# workspace run silently used the in-code defaults: 24 conformance reps
# even under --quick. The env-scaling step asserts this plumbing.)
USER_CHECK_CASES="${WMH_CHECK_CASES:-}"
USER_CHAOS_CASES="${WMH_CHAOS_CASES:-}"
export WMH_CHECK_CASES="${WMH_CHECK_CASES:-$CHECK_CASES_DEFAULT}"
export WMH_CHAOS_CASES="${WMH_CHAOS_CASES:-$CHAOS_CASES_DEFAULT}"
export WMH_FAULT_SEED="${WMH_FAULT_SEED:-0xC1A05}"

run() {
  echo "==> $*"
  "$@"
}

# --- step registry -----------------------------------------------------
# Each step is a function step_<name> (dashes become underscores); the
# registry drives --list, --only validation, and the default full order.
STEP_NAMES=()
STEP_DESCS=()
register() {
  STEP_NAMES+=("$1")
  STEP_DESCS+=("$2")
}

register env-scaling "assert the exported WMH_*_CASES plumbing and --quick scaling"
register build "cargo build across the workspace"
register test "cargo test across the workspace"
register conformance "estimator-conformance suite (WMH_CHECK_CASES scales it)"
register catalog "CLI catalog-count pin (expect 15 algorithms)"
register panic-gate "static no-panic gate over the sketching core"
register chaos "adversarial chaos suite (WMH_CHAOS_CASES scales it)"
register determinism "1-vs-N-thread byte-identity for the parallel sweep"
register failpoints "wmh-fault scenario/registry suite with failpoints on"
register chaos-soak "Figure-8 sweep under randomized transient fault schedules"
register serve-soak "wmh-serve quarantine/recovery chaos soak"
register mutation-soak "WAL kill-resume byte-identity at every commit failpoint"
register snapshot-soak "durability-lifecycle kill-resume soak"
register scrub-gate "flipped-bit detection/quarantine/heal, called out by name"
register serve-smoke "loopback server answers every outcome class typed"
register mutation-smoke "live-mutation soak over the wire with kill-resume"
register fast-math "wmh-core suite with the opt-in fast-math feature compiled in"
register schema-check "every checked-in results/*.json matches its schema"
register perf-gate "wmh-perf quick suite vs results/BENCH_baseline.json (full mode only)"
register perf-trajectory "compare the two newest checked-in trajectory points"
register fmt "cargo fmt --check (advisory if rustfmt missing)"
register clippy "cargo clippy -D warnings (advisory if clippy missing)"

step_env_scaling() {
  # A child process must observe the exported effective values (this is
  # what the workspace test run sees), and --quick must scale strictly
  # below the full-mode counts unless the caller overrode them.
  local seen_check seen_chaos
  seen_check="$(bash -c 'printf %s "${WMH_CHECK_CASES:-unset}"')"
  seen_chaos="$(bash -c 'printf %s "${WMH_CHAOS_CASES:-unset}"')"
  if [[ "$seen_check" != "$WMH_CHECK_CASES" || "$seen_chaos" != "$WMH_CHAOS_CASES" ]]; then
    echo "env plumbing broken: child saw WMH_CHECK_CASES=$seen_check" \
      "WMH_CHAOS_CASES=$seen_chaos (wanted $WMH_CHECK_CASES / $WMH_CHAOS_CASES)" >&2
    return 1
  fi
  if [[ "$QUICK" == "1" && -z "$USER_CHECK_CASES" ]] \
    && ((WMH_CHECK_CASES >= FULL_CHECK_CASES)); then
    echo "--quick did not scale WMH_CHECK_CASES ($WMH_CHECK_CASES >= $FULL_CHECK_CASES)" >&2
    return 1
  fi
  if [[ "$QUICK" == "1" && -z "$USER_CHAOS_CASES" ]] \
    && ((WMH_CHAOS_CASES >= FULL_CHAOS_CASES)); then
    echo "--quick did not scale WMH_CHAOS_CASES ($WMH_CHAOS_CASES >= $FULL_CHAOS_CASES)" >&2
    return 1
  fi
  echo "    effective WMH_CHECK_CASES=$WMH_CHECK_CASES" \
    "WMH_CHAOS_CASES=$WMH_CHAOS_CASES WMH_FAULT_SEED=$WMH_FAULT_SEED (quick=$QUICK)"
}

step_build() {
  run cargo build "${RELEASE[@]}" --workspace
}

step_test() {
  run cargo test "${RELEASE[@]}" --workspace -q
}

# Estimator-conformance suite. WMH_CHECK_CASES scales it (the CLT bound
# tightens as repetitions grow, so a nightly run with a larger count is a
# stricter gate, not just a longer one).
step_conformance() {
  run cargo test "${RELEASE[@]}" -p wmh-core --test conformance -q
}

# Catalog-count pin: the CLI must list exactly the 15 registered algorithms
# (the paper's 13 + DartMinHash/BagMinHash). A silently unregistered
# sketcher would shrink every ALL-driven suite without failing any test —
# this step (and conformance's catalog_pins_fifteen_algorithms) makes that
# loud.
step_catalog() {
  echo "==> catalog count pin (expect 15 algorithms)"
  local algo_count
  algo_count="$(cargo run "${RELEASE[@]}" -q -- algorithms | wc -l)"
  if [[ "$algo_count" != "15" ]]; then
    echo "catalog lists $algo_count algorithms, expected 15" >&2
    return 1
  fi
}

# Static no-panic gate: non-test code in the sketching core must not
# unwrap/expect/panic outside the checked-in allowlist
# (scripts/panic_allowlist.txt).
step_panic_gate() {
  run scripts/panic_gate.sh
}

# Adversarial chaos suite: hostile weights and index layouts against all
# 15 algorithms — no panic, no hang, typed errors or full-length
# deterministic sketches only. WMH_CHAOS_CASES scales it.
step_chaos() {
  run cargo test "${RELEASE[@]}" -p wmh-core --test chaos -q
}

# 1-vs-N-thread determinism: the parallel sweep must return byte-identical
# results at every thread count, and the committer must never interleave
# partial checkpoint lines.
step_determinism() {
  run cargo test "${RELEASE[@]}" -p wmh-eval --test determinism -q
}

# Failpoint machinery: the wmh-fault crate's own scenario/registry suite
# (points compile to no-ops without the feature, so it must be explicit).
step_failpoints() {
  run cargo test "${RELEASE[@]}" -p wmh-fault --features failpoints -q
}

# Chaos soak: the Figure 8 sweep under randomized transient fault schedules
# must finish byte-identical to a fault-free run at 1 and 8 threads, and
# timed-out / quarantined cells must stay terminal across resume. The soak
# runs its built-in seeds plus the pinned WMH_FAULT_SEED exported above;
# override the pin to probe new schedules (determinism holds for any seed,
# so a failure under a fresh seed is a real bug, not flakiness).
step_chaos_soak() {
  run cargo test "${RELEASE[@]}" -p wmh-eval --features wmh-fault/failpoints \
    --test chaos_soak --test supervision -q
}

# Serving chaos soak: quarantine/recovery byte-identity, typed outcomes
# under injected shard/admission faults, and supervised ingest retry — the
# wmh-serve robustness envelope under the same pinned seed.
step_serve_soak() {
  run cargo test "${RELEASE[@]}" -p wmh-serve --features wmh-fault/failpoints \
    --test chaos_soak -q
}

# Mutation chaos soak: kill-resume recovery over the write-ahead log must
# replay byte-identical with faults injected at every commit-path failpoint
# (serve::wal_append, serve::wal_fsync, serve::apply, serve::reshard) at
# 1/2/8 shards; torn tails discard, exhausted appends flip read-only, and
# re-shards converge byte-identical to from-scratch partitions.
step_mutation_soak() {
  run cargo test "${RELEASE[@]}" -p wmh-serve --features wmh-fault/failpoints \
    --test mutation_soak -q
}

# Durability-lifecycle soak: kill-resume byte-identity with faults at every
# lifecycle failpoint (serve::snapshot_write/fsync/rename, serve::wal_rotate,
# serve::scrub) at 1/2/8 shards; compaction-bounded replay pinned by the
# serve::wal_replay hit counter; one-generation fallback from a flipped bit;
# ENOSPC-style snapshot aborts; half-open write-gate recovery.
step_snapshot_soak() {
  run cargo test "${RELEASE[@]}" -p wmh-serve --features wmh-fault/failpoints \
    --test snapshot_soak -q
}

# Scrub gate, called out by name: a flipped bit in a snapshot AND a sealed
# WAL segment must be detected, quarantined to *.bad, and healed with a
# fresh snapshot under the pinned seed — query bytes unchanged.
step_scrub_gate() {
  run cargo test "${RELEASE[@]}" -p wmh-serve --features wmh-fault/failpoints \
    --test snapshot_soak scrub_detects_flipped_bits_and_heals -q
}

# Serving smoke: a real loopback server must answer every outcome class
# typed — healthy, forced deadline miss, forced overload, bad request, and
# a mutation against a read-only service.
step_serve_smoke() {
  if [[ "$QUICK" == "1" ]]; then
    run cargo run -q -p wmh-serve -- smoke --quick
  else
    run cargo run "${RELEASE[@]}" -q -p wmh-serve -- smoke
  fi
}

# Live-mutation soak over the wire: the whole mutation surface against a
# WAL-backed loopback server, then kill-resume and a live re-shard both
# proven byte-identical end to end.
step_mutation_smoke() {
  if [[ "$QUICK" == "1" ]]; then
    run cargo run -q -p wmh-serve -- mutation-soak --quick
  else
    run cargo run "${RELEASE[@]}" -q -p wmh-serve -- mutation-soak
  fi
}

# Fast-math profile: the opt-in polynomial ln/exp feature must compile and
# hold the whole wmh-core wall — conformance CLT bounds, the scratch_parity
# differential dump, and the catalog pin that the DEFAULT build stays on
# exact libm (the feature only unlocks AlgorithmConfig::fast_math; it must
# never change results unless explicitly requested).
step_fast_math() {
  run cargo test "${RELEASE[@]}" -p wmh-core --features fast-math -q
}

# Every checked-in results/*.json (and results/trajectory/*.json) must
# match its registered schema (crates/perf/src/schemas.rs); an
# unregistered file name is a failure.
step_schema_check() {
  run cargo run "${RELEASE[@]}" -q -p wmh-perf --bin schema_check -- results
}

# Performance gate: the wmh-perf quick suite vs results/BENCH_baseline.json
# (skippable via WMH_SKIP_PERF=1; tolerance via WMH_PERF_TOL).
step_perf_gate() {
  if [[ "$QUICK" == "1" ]]; then
    echo "==> skipping perf gate (--quick: debug timings are not gateable)"
  else
    run scripts/perf_gate.sh
  fi
}

# Perf trajectory: the two newest checked-in BENCH_fig9_hot points under
# results/trajectory/ must compare clean — no workload regressed beyond
# WMH_PERF_TOL between consecutive points, and none disappeared (coverage
# drop). This gates the history itself, not the current machine: both
# inputs are checked-in files, so it runs in --quick mode too. After an
# intentional perf change, append a new numbered point alongside the
# refreshed results/BENCH_fig9_hot.json rather than rewriting old ones.
step_perf_trajectory() {
  local points=(results/trajectory/BENCH_fig9_hot_*.json)
  if ((${#points[@]} < 2)); then
    echo "perf-trajectory: need >=2 checked-in points in results/trajectory/," \
      "found ${#points[@]}" >&2
    return 1
  fi
  local prev="${points[-2]}" newest="${points[-1]}"
  run cargo run "${RELEASE[@]}" -q -p wmh-perf --bin wmh-perf -- compare "$prev" "$newest" \
    --tolerance "${WMH_PERF_TOL:-0.25}"
}

# Formatting and lints are advisory if the components are not installed
# (minimal toolchains ship without rustfmt/clippy).
step_fmt() {
  if cargo fmt --version >/dev/null 2>&1; then
    run cargo fmt --all -- --check
  else
    echo "==> skipping cargo fmt (rustfmt not installed)"
  fi
}

step_clippy() {
  if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --all-targets -- -D warnings
  else
    echo "==> skipping cargo clippy (clippy not installed)"
  fi
}

# --- driver ------------------------------------------------------------

if [[ "$LIST" == "1" ]]; then
  for i in "${!STEP_NAMES[@]}"; do
    printf '%-16s %s\n' "${STEP_NAMES[$i]}" "${STEP_DESCS[$i]}"
  done
  exit 0
fi

run_step() {
  local fn="step_${1//-/_}"
  "$fn"
}

if [[ -n "$ONLY" ]]; then
  found=0
  for name in "${STEP_NAMES[@]}"; do
    [[ "$name" == "$ONLY" ]] && found=1
  done
  if [[ "$found" != "1" ]]; then
    echo "unknown step '$ONLY' (scripts/ci.sh --list shows the names)" >&2
    exit 2
  fi
  run_step "$ONLY"
  echo "CI step '$ONLY' passed."
  exit 0
fi

for name in "${STEP_NAMES[@]}"; do
  run_step "$name"
done

echo "CI gate passed."
