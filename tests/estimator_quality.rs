//! Integration tests: estimator quality of every algorithm on controlled
//! and synthetic workloads (the statistical contract behind Figure 8).

use wmh::core::others::UpperBounds;
use wmh::core::{Algorithm, AlgorithmConfig};
use wmh::data::pairs::controlled_pair;
use wmh::data::SynConfig;
use wmh::sets::generalized_jaccard;

fn config_for(sets: &[&wmh::sets::WeightedSet]) -> AlgorithmConfig {
    AlgorithmConfig {
        quantization_constant: 400.0,
        upper_bounds: Some(UpperBounds::from_sets(sets.iter().copied()).expect("non-empty")),
        max_rejection_draws: 5_000_000,
        ccws_weight_scale: 10.0,
        ..AlgorithmConfig::default()
    }
}

/// Every *unbiased* algorithm's estimate lands within CLT bounds of the
/// exact generalized Jaccard on a controlled pair.
#[test]
fn unbiased_algorithms_hit_controlled_targets() {
    let d = 2048;
    for target in [0.2, 0.5, 0.8] {
        let (s, t) = controlled_pair(target, 40, 0);
        let truth = generalized_jaccard(&s, &t);
        let config = config_for(&[&s, &t]);
        for algo in Algorithm::ALL {
            if !algo.info().unbiased {
                continue;
            }
            let sk = algo.build(17, d, &config).expect("buildable");
            let est = sk
                .sketch(&s)
                .expect("non-empty")
                .estimate_similarity(&sk.sketch(&t).expect("non-empty"));
            let sd = (truth * (1.0 - truth) / d as f64).sqrt();
            // 5σ plus a small quantization allowance for the integer-grid
            // algorithms (C = 400 on unit-ish weights).
            assert!(
                (est - truth).abs() < 5.0 * sd + 0.015,
                "{algo:?} at target {target}: est {est}, truth {truth}"
            );
        }
    }
}

/// Every algorithm (biased ones included) is monotone: a more similar pair
/// never estimates below a much less similar pair.
#[test]
fn all_algorithms_order_similar_above_dissimilar() {
    let d = 1024;
    let (hi_s, hi_t) = controlled_pair(0.8, 40, 0);
    let (lo_s, lo_t) = controlled_pair(0.15, 40, 10_000);
    let config = config_for(&[&hi_s, &hi_t, &lo_s, &lo_t]);
    for algo in Algorithm::ALL {
        let sk = algo.build(23, d, &config).expect("buildable");
        let hi = sk
            .sketch(&hi_s)
            .expect("non-empty")
            .estimate_similarity(&sk.sketch(&hi_t).expect("non-empty"));
        let lo = sk
            .sketch(&lo_s)
            .expect("non-empty")
            .estimate_similarity(&sk.sketch(&lo_t).expect("non-empty"));
        assert!(hi > lo + 0.2, "{algo:?}: hi {hi} not above lo {lo}");
    }
}

/// Self-similarity is always exactly 1 and disjoint similarity is ≈ 0.
#[test]
fn identity_and_disjointness() {
    let d = 512;
    let (s, _) = controlled_pair(0.5, 30, 0);
    let (u, _) = controlled_pair(0.5, 30, 50_000);
    let config = config_for(&[&s, &u]);
    for algo in Algorithm::ALL {
        let sk = algo.build(29, d, &config).expect("buildable");
        let fs = sk.sketch(&s).expect("non-empty");
        assert_eq!(
            fs.estimate_similarity(&sk.sketch(&s).expect("non-empty")),
            1.0,
            "{algo:?} self-similarity"
        );
        let fu = sk.sketch(&u).expect("non-empty");
        let est = fs.estimate_similarity(&fu);
        assert!(est < 0.06, "{algo:?} disjoint estimate {est}");
    }
}

/// On a power-law synthetic dataset (the paper's workload), the unbiased
/// algorithms' mean signed error across pairs is near zero.
#[test]
fn mean_signed_error_is_small_on_synthetic_data() {
    let cfg = SynConfig { docs: 40, features: 1_200, density: 0.05, exponent: 3.0, scale: 0.24 };
    let ds = cfg.generate(31).expect("valid");
    let pairs = wmh::data::pairs::sample_pairs(ds.docs.len(), 150, 31);
    let truths: Vec<f64> =
        pairs.iter().map(|&(i, j)| generalized_jaccard(&ds.docs[i], &ds.docs[j])).collect();
    let refs: Vec<&wmh::sets::WeightedSet> = ds.docs.iter().collect();
    let config = config_for(&refs);
    let d = 512;
    for algo in [Algorithm::Icws, Algorithm::Cws, Algorithm::Shrivastava2016] {
        let sk = algo.build(37, d, &config).expect("buildable");
        let sketches: Vec<_> =
            ds.docs.iter().map(|doc| sk.sketch(doc).expect("sketchable")).collect();
        let mean_err: f64 = pairs
            .iter()
            .enumerate()
            .map(|(p, &(i, j))| sketches[i].estimate_similarity(&sketches[j]) - truths[p])
            .sum::<f64>()
            / pairs.len() as f64;
        // Mean of ~150 pair errors, each with sd ≈ sqrt(p/D) ≈ 0.005;
        // correlated across pairs, so allow a generous band.
        assert!(mean_err.abs() < 0.004, "{algo:?} mean signed error {mean_err}");
    }
}
