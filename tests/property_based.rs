//! Property-based tests (`wmh-check` driven) over the core data structures
//! and the sketching invariants.

use std::collections::BTreeMap;
use wmh::core::cws::Icws;
use wmh::core::minhash::MinHash;
use wmh::core::Sketcher;
use wmh::sets::algebra::{element_max, element_min, element_sum};
use wmh::sets::{generalized_jaccard, jaccard, WeightedSet};
use wmh_check::{ensure, run_cases, Gen};

/// A small weighted set with positive finite weights.
fn weighted_set(g: &mut Gen) -> WeightedSet {
    let entries = g.range_usize(1, 39);
    let mut m = BTreeMap::new();
    for _ in 0..entries {
        m.insert(g.below(200), g.range_f64(0.01, 50.0));
    }
    WeightedSet::from_pairs(m).expect("generator yields valid sets")
}

#[test]
fn generalized_jaccard_is_symmetric_and_bounded() {
    run_cases(64, |g| {
        let (s, t) = (weighted_set(g), weighted_set(g));
        let a = generalized_jaccard(&s, &t);
        let b = generalized_jaccard(&t, &s);
        ensure!((a - b).abs() < 1e-12, "asymmetric: {a} vs {b}");
        ensure!((0.0..=1.0).contains(&a), "out of unit interval: {a}");
        ensure!((generalized_jaccard(&s, &s) - 1.0).abs() < 1e-12, "self != 1");
        Ok(())
    });
}

#[test]
fn generalized_jaccard_of_binarized_is_bounded() {
    run_cases(64, |g| {
        // genJ(S, binarized(S)) ≤ 1 and equals Σmin/Σmax by construction.
        let s = weighted_set(g);
        let j = generalized_jaccard(&s, &s.binarized());
        ensure!((0.0..=1.0).contains(&j), "out of unit interval: {j}");
        Ok(())
    });
}

#[test]
fn min_max_algebra_recomposes_eq2() {
    run_cases(64, |g| {
        let (s, t) = (weighted_set(g), weighted_set(g));
        let num = element_min(&s, &t).total_weight();
        let den = element_max(&s, &t).total_weight();
        ensure!(den > 0.0, "degenerate denominator");
        ensure!((num / den - generalized_jaccard(&s, &t)).abs() < 1e-12, "Eq. 2 broken");
        // Inclusion–exclusion of masses.
        let sum = element_sum(&s, &t).total_weight();
        ensure!((num + den - sum).abs() < 1e-9, "min + max != sum");
        Ok(())
    });
}

#[test]
fn scaling_both_sets_preserves_eq2() {
    run_cases(64, |g| {
        let (s, t) = (weighted_set(g), weighted_set(g));
        let factor = g.range_f64(0.01, 100.0);
        let a = generalized_jaccard(&s, &t);
        let b = generalized_jaccard(
            &s.scaled(factor).expect("valid factor"),
            &t.scaled(factor).expect("valid factor"),
        );
        ensure!((a - b).abs() < 1e-9, "scaling by {factor} moved genJ: {a} -> {b}");
        Ok(())
    });
}

#[test]
fn estimators_stay_in_unit_interval() {
    run_cases(64, |g| {
        let (s, t, seed) = (weighted_set(g), weighted_set(g), g.u64());
        let icws = Icws::new(seed, 32);
        let est = icws
            .sketch(&s)
            .expect("non-empty")
            .estimate_similarity(&icws.sketch(&t).expect("non-empty"));
        ensure!((0.0..=1.0).contains(&est), "estimate {est} out of unit interval");
        Ok(())
    });
}

#[test]
fn sketches_are_deterministic_functions_of_inputs() {
    run_cases(64, |g| {
        let (s, seed) = (weighted_set(g), g.u64());
        let icws = Icws::new(seed, 16);
        ensure!(icws.sketch(&s).expect("ok") == icws.sketch(&s).expect("ok"), "icws varies");
        let mh = MinHash::new(seed, 16);
        ensure!(mh.sketch(&s).expect("ok") == mh.sketch(&s).expect("ok"), "minhash varies");
        Ok(())
    });
}

#[test]
fn minhash_ignores_weights_entirely() {
    run_cases(64, |g| {
        let (s, seed) = (weighted_set(g), g.u64());
        let mh = MinHash::new(seed, 32);
        let a = mh.sketch(&s).expect("ok");
        let b = mh.sketch(&s.binarized()).expect("ok");
        ensure!(a == b, "minhash saw the weights");
        Ok(())
    });
}

#[test]
fn jaccard_of_binarized_matches_support_jaccard() {
    run_cases(64, |g| {
        let (s, t) = (weighted_set(g), weighted_set(g));
        ensure!(
            (jaccard(&s, &t) - generalized_jaccard(&s.binarized(), &t.binarized())).abs() < 1e-12,
            "support jaccard disagrees with binarized genJ"
        );
        Ok(())
    });
}

#[test]
fn sketch_json_roundtrips() {
    run_cases(64, |g| {
        let (s, seed) = (weighted_set(g), g.u64());
        let icws = Icws::new(seed, 8);
        let sk = icws.sketch(&s).expect("ok");
        let json = wmh::json::to_string(&wmh::json::ToJson::to_json(&sk));
        let back: wmh::core::Sketch = wmh::json::from_str(&json).expect("deserialize");
        ensure!(sk == back, "sketch JSON roundtrip changed the sketch");
        Ok(())
    });
}

#[test]
fn weighted_set_json_roundtrips() {
    run_cases(64, |g| {
        let s = weighted_set(g);
        let json = wmh::json::to_string(&wmh::json::ToJson::to_json(&s));
        let back: WeightedSet = wmh::json::from_str(&json).expect("deserialize");
        ensure!(s == back, "weighted set JSON roundtrip changed the set");
        Ok(())
    });
}

#[test]
fn icws_bracket_holds_for_all_weights() {
    run_cases(64, |g| {
        let k = g.below(1000);
        let w = g.range_f64(0.001, 1000.0);
        let seed = g.u64();
        let icws = Icws::new(seed, 1);
        let smp = icws.element_sample(0, k, w);
        ensure!(smp.y <= w * (1.0 + 1e-9), "y {} above weight {w}", smp.y);
        ensure!(smp.z >= w * (1.0 - 1e-9), "z {} below weight {w}", smp.z);
        ensure!(smp.a > 0.0, "non-positive hash value");
        Ok(())
    });
}

#[test]
fn bbit_estimates_agree_with_full_on_identical_inputs() {
    run_cases(64, |g| {
        let s = weighted_set(g);
        let bits = g.range_u64(1, 16) as u8;
        let icws = Icws::new(5, 64);
        let sk = icws.sketch(&s).expect("ok");
        let b = wmh::core::extensions::BbitSketch::from_sketch(&sk, bits).expect("valid bits");
        ensure!(
            b.estimate_similarity(&b).expect("compatible") == 1.0,
            "self-similarity != 1 at {bits} bits"
        );
        Ok(())
    });
}
