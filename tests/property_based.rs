//! Property-based tests (proptest) over the core data structures and the
//! sketching invariants.

use proptest::prelude::*;
use wmh::core::cws::Icws;
use wmh::core::minhash::MinHash;
use wmh::core::Sketcher;
use wmh::sets::algebra::{element_max, element_min, element_sum};
use wmh::sets::{generalized_jaccard, jaccard, WeightedSet};

/// Strategy: a small weighted set with positive finite weights.
fn weighted_set() -> impl Strategy<Value = WeightedSet> {
    proptest::collection::btree_map(0u64..200, 0.01f64..50.0, 1..40)
        .prop_map(|m| WeightedSet::from_pairs(m).expect("strategy yields valid sets"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generalized_jaccard_is_symmetric_and_bounded(s in weighted_set(), t in weighted_set()) {
        let a = generalized_jaccard(&s, &t);
        let b = generalized_jaccard(&t, &s);
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((generalized_jaccard(&s, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generalized_jaccard_dominates_nothing_above_binary_on_equal_weights(s in weighted_set()) {
        // genJ(S, binarized(S)) ≤ 1 and equals Σmin/Σmax by construction.
        let b = s.binarized();
        let j = generalized_jaccard(&s, &b);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn min_max_algebra_recomposes_eq2(s in weighted_set(), t in weighted_set()) {
        let num = element_min(&s, &t).total_weight();
        let den = element_max(&s, &t).total_weight();
        prop_assert!(den > 0.0);
        prop_assert!((num / den - generalized_jaccard(&s, &t)).abs() < 1e-12);
        // Inclusion–exclusion of masses.
        let sum = element_sum(&s, &t).total_weight();
        prop_assert!((num + den - sum).abs() < 1e-9);
    }

    #[test]
    fn scaling_both_sets_preserves_eq2(s in weighted_set(), t in weighted_set(),
                                       factor in 0.01f64..100.0) {
        let a = generalized_jaccard(&s, &t);
        let b = generalized_jaccard(
            &s.scaled(factor).expect("valid factor"),
            &t.scaled(factor).expect("valid factor"),
        );
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn estimators_stay_in_unit_interval(s in weighted_set(), t in weighted_set(), seed in any::<u64>()) {
        let icws = Icws::new(seed, 32);
        let est = icws
            .sketch(&s)
            .expect("non-empty")
            .estimate_similarity(&icws.sketch(&t).expect("non-empty"));
        prop_assert!((0.0..=1.0).contains(&est));
    }

    #[test]
    fn sketches_are_deterministic_functions_of_inputs(s in weighted_set(), seed in any::<u64>()) {
        let icws = Icws::new(seed, 16);
        prop_assert_eq!(icws.sketch(&s).expect("ok"), icws.sketch(&s).expect("ok"));
        let mh = MinHash::new(seed, 16);
        prop_assert_eq!(mh.sketch(&s).expect("ok"), mh.sketch(&s).expect("ok"));
    }

    #[test]
    fn minhash_ignores_weights_entirely(s in weighted_set(), seed in any::<u64>()) {
        let mh = MinHash::new(seed, 32);
        let a = mh.sketch(&s).expect("ok");
        let b = mh.sketch(&s.binarized()).expect("ok");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn jaccard_of_binarized_matches_support_jaccard(s in weighted_set(), t in weighted_set()) {
        prop_assert!(
            (jaccard(&s, &t) - generalized_jaccard(&s.binarized(), &t.binarized())).abs() < 1e-12
        );
    }

    #[test]
    fn sketch_serde_roundtrips(s in weighted_set(), seed in any::<u64>()) {
        let icws = Icws::new(seed, 8);
        let sk = icws.sketch(&s).expect("ok");
        let json = serde_json::to_string(&sk).expect("serialize");
        let back: wmh::core::Sketch = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(sk, back);
    }

    #[test]
    fn weighted_set_serde_roundtrips(s in weighted_set()) {
        let json = serde_json::to_string(&s).expect("serialize");
        let back: WeightedSet = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(s, back);
    }

    #[test]
    fn icws_bracket_holds_for_all_weights(k in 0u64..1000, w in 0.001f64..1000.0, seed in any::<u64>()) {
        let icws = Icws::new(seed, 1);
        let smp = icws.element_sample(0, k, w);
        prop_assert!(smp.y <= w * (1.0 + 1e-9));
        prop_assert!(smp.z >= w * (1.0 - 1e-9));
        prop_assert!(smp.a > 0.0);
    }

    #[test]
    fn bbit_estimates_agree_with_full_on_identical_inputs(s in weighted_set(), bits in 1u8..=16) {
        let icws = Icws::new(5, 64);
        let sk = icws.sketch(&s).expect("ok");
        let b = wmh::core::extensions::BbitSketch::from_sketch(&sk, bits).expect("valid bits");
        prop_assert_eq!(b.estimate_similarity(&b).expect("compatible"), 1.0);
    }
}
