//! End-to-end tests of the `wmh` CLI binary.

use std::process::Command;

fn wmh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wmh"))
}

fn write_docs(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("docs.json");
    std::fs::write(
        &path,
        r#"{
            "alpha":  {"1": 2.0, "2": 1.0, "3": 1.0},
            "alpha2": {"1": 2.0, "2": 1.0, "3": 1.0},
            "beta":   {"10": 1.0, "11": 1.0},
            "textual": {"cat": 1.5, "dog": 0.5}
        }"#,
    )
    .expect("write fixture");
    path
}

#[test]
fn algorithms_lists_all_fifteen() {
    let out = wmh().arg("algorithms").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "MinHash",
        "ICWS",
        "PCWS",
        "I2CWS",
        "Shrivastava2016",
        "Chum2008",
        "DartMinHash",
        "BagMinHash",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    // ci.sh pins the same count: a silently unregistered sketcher fails CI.
    assert_eq!(text.lines().count(), 15);
}

#[test]
fn estimate_reports_expected_similarities() {
    let dir = std::env::temp_dir().join("wmh_cli_estimate");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let docs = write_docs(&dir);
    let out = wmh()
        .args(["estimate", "--input"])
        .arg(&docs)
        .args(["--hashes", "512", "--exact"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // alpha vs alpha2 are identical: estimate = 1.
    let dup_line =
        text.lines().find(|l| l.contains("alpha") && l.contains("alpha2")).expect("pair line");
    assert!(dup_line.contains("1.0000"), "{dup_line}");
    // alpha vs beta are disjoint: estimate ≈ 0.
    let disjoint =
        text.lines().find(|l| l.contains("alpha ") && l.contains("beta")).expect("pair line");
    assert!(disjoint.contains("0.00"), "{disjoint}");
}

#[test]
fn sketch_writes_fingerprints() {
    let dir = std::env::temp_dir().join("wmh_cli_sketch");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let docs = write_docs(&dir);
    let out_path = dir.join("sketches.json");
    let out = wmh()
        .args(["sketch", "--input"])
        .arg(&docs)
        .args(["--hashes", "64", "--output"])
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let parsed: std::collections::BTreeMap<String, Vec<u64>> =
        wmh_json::from_str(&std::fs::read_to_string(&out_path).expect("read")).expect("json");
    assert_eq!(parsed.len(), 4);
    assert!(parsed.values().all(|codes| codes.len() == 64));
    // Identical documents produce identical fingerprints.
    assert_eq!(parsed["alpha"], parsed["alpha2"]);
    assert_ne!(parsed["alpha"], parsed["beta"]);
}

#[test]
fn dedup_groups_duplicates() {
    let dir = std::env::temp_dir().join("wmh_cli_dedup");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let docs = write_docs(&dir);
    let out = wmh()
        .args(["dedup", "--input"])
        .arg(&docs)
        .args(["--threshold", "0.9"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("alpha") && text.contains("alpha2"), "{text}");
    assert!(!text.contains("beta"), "beta is no duplicate: {text}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let out = wmh().arg("sketch").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));

    let out =
        wmh().args(["estimate", "--input", "/definitely/missing.json"]).output().expect("spawn");
    assert!(!out.status.success());

    let dir = std::env::temp_dir().join("wmh_cli_bad");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let docs = write_docs(&dir);
    let out = wmh()
        .args(["estimate", "--input"])
        .arg(&docs)
        .args(["--algorithm", "NotAThing"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("available"));

    let out = wmh().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
}
