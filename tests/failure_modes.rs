//! Failure-injection tests: invalid inputs and budget exhaustion must
//! surface as typed errors, never as panics or silent nonsense.

use wmh::core::others::{Shrivastava, UpperBounds};
use wmh::core::{Algorithm, AlgorithmConfig, SketchError, Sketcher};
use wmh::sets::{SetError, WeightedSet};

#[test]
fn invalid_weights_are_rejected_at_the_boundary() {
    assert!(matches!(
        WeightedSet::from_pairs([(1, f64::NAN)]),
        Err(SetError::NonFiniteWeight { .. })
    ));
    assert!(matches!(
        WeightedSet::from_pairs([(1, f64::NEG_INFINITY)]),
        Err(SetError::NonFiniteWeight { .. })
    ));
    assert!(matches!(
        WeightedSet::from_pairs([(1, -3.0)]),
        Err(SetError::NonPositiveWeight { .. })
    ));
    assert!(matches!(
        WeightedSet::from_pairs([(1, 1.0), (1, 2.0)]),
        Err(SetError::DuplicateIndex(1))
    ));
}

#[test]
fn every_algorithm_rejects_the_empty_set() {
    let some_set = WeightedSet::from_pairs([(1, 1.0)]).expect("valid");
    let config = AlgorithmConfig {
        upper_bounds: Some(UpperBounds::from_sets([&some_set]).expect("non-empty")),
        ..AlgorithmConfig::default()
    };
    for algo in Algorithm::ALL {
        let sk = algo.build(1, 8, &config).expect("buildable");
        assert!(
            matches!(sk.sketch(&WeightedSet::empty()), Err(SketchError::EmptySet)),
            "{algo:?} accepted an empty set"
        );
    }
}

#[test]
fn extreme_weights_do_not_break_cws_family() {
    // Denormal-adjacent and astronomically large weights sketch fine.
    let tiny = WeightedSet::from_pairs([(1, 1e-300), (2, 1e-280)]).expect("valid");
    let huge = WeightedSet::from_pairs([(1, 1e280), (2, 1.7e308)]).expect("valid");
    let mixed = WeightedSet::from_pairs([(1, 1e-12), (2, 1e12)]).expect("valid");
    for algo in [Algorithm::Cws, Algorithm::Icws, Algorithm::Pcws, Algorithm::I2cws] {
        let sk = algo.build(2, 16, &AlgorithmConfig::default()).expect("buildable");
        for set in [&tiny, &huge, &mixed] {
            let fp = sk.sketch(set).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
            assert_eq!(fp.len(), 16);
            assert_eq!(fp.estimate_similarity(&sk.sketch(set).expect("ok")), 1.0);
        }
    }
}

#[test]
fn shrivastava_bound_violations_are_typed_errors() {
    let seen = WeightedSet::from_pairs([(1, 1.0), (2, 2.0)]).expect("valid");
    let bounds = UpperBounds::from_sets([&seen]).expect("non-empty");
    let sh = Shrivastava::new(3, 8, bounds);
    // Streamed data exceeding the pre-scan.
    let over = WeightedSet::from_pairs([(1, 1.5)]).expect("valid");
    assert!(matches!(sh.sketch(&over), Err(SketchError::WeightExceedsBound { element: 1, .. })));
    // Never-seen element.
    let unseen = WeightedSet::from_pairs([(9, 0.1)]).expect("valid");
    assert!(matches!(sh.sketch(&unseen), Err(SketchError::WeightExceedsBound { element: 9, .. })));
}

#[test]
fn shrivastava_budget_exhaustion_is_reported_not_hung() {
    let probe = WeightedSet::from_pairs([(1, 1e-9)]).expect("valid");
    let wide = WeightedSet::from_pairs([(1, 1e-9), (2, 1e9)]).expect("valid");
    let bounds = UpperBounds::from_sets([&probe, &wide]).expect("non-empty");
    let sh = Shrivastava::new(4, 4, bounds).with_max_draws(100);
    let start = std::time::Instant::now();
    let err = sh.sketch(&probe).expect_err("budget must exhaust");
    assert!(matches!(
        err,
        SketchError::BudgetExhausted { what, spent: 100 } if what.contains("rejection")
    ));
    assert!(start.elapsed().as_secs() < 5, "cutoff did not bound the work");
}

#[test]
fn quantization_resolution_failures_are_reported() {
    let sub_resolution = WeightedSet::from_pairs([(1, 0.2)]).expect("valid");
    let config = AlgorithmConfig { quantization_constant: 2.0, ..AlgorithmConfig::default() };
    for algo in [Algorithm::Haveliwala2000, Algorithm::GollapudiActive] {
        let sk = algo.build(5, 4, &config).expect("buildable");
        assert!(
            matches!(sk.sketch(&sub_resolution), Err(SketchError::BadParameter { .. })),
            "{algo:?} silently dropped all mass"
        );
    }
}

#[test]
fn incompatible_sketch_comparisons_fail_loudly() {
    let s = WeightedSet::from_pairs([(1, 1.0)]).expect("valid");
    let a = Algorithm::Icws
        .build(1, 8, &AlgorithmConfig::default())
        .expect("buildable")
        .sketch(&s)
        .expect("ok");
    let b = Algorithm::Pcws
        .build(1, 8, &AlgorithmConfig::default())
        .expect("buildable")
        .sketch(&s)
        .expect("ok");
    assert!(matches!(a.try_estimate_similarity(&b), Err(SketchError::Incompatible { .. })));
}
