//! Integration tests of the Consistent Weighted Sampling contract
//! (paper Definition 8) across the CWS-family implementations.

use wmh::core::cws::{Cws, Icws};
use wmh::core::{Algorithm, AlgorithmConfig, Sketcher};
use wmh::sets::WeightedSet;

fn ic_config() -> AlgorithmConfig {
    AlgorithmConfig {
        quantization_constant: 100.0,
        upper_bounds: None,
        max_rejection_draws: 1_000_000,
        ccws_weight_scale: 10.0,
        ..AlgorithmConfig::default()
    }
}

/// Definition 8 (consistency), subset form: if `T ⊆ S` element-wise and the
/// sample of `S` falls within `T`'s weights, it is also `T`'s sample.
/// Verified on the exact CWS implementation per hash function.
#[test]
fn cws_subset_consistency() {
    let cws = Cws::new(41, 64);
    let s = WeightedSet::from_pairs((0..30u64).map(|k| (k, 0.4 + (k % 7) as f64 * 0.3)))
        .expect("valid");
    let t = WeightedSet::from_pairs(s.iter().map(|(k, w)| (k, w * 0.7))).expect("valid");
    let mut checked = 0;
    for d in 0..64 {
        // Find S's winning sample.
        let (k_s, rec_s) = s
            .iter()
            .map(|(k, w)| (k, cws.element_sample(d, k, w)))
            .min_by(|a, b| a.1.value.total_cmp(&b.1.value))
            .expect("non-empty");
        if rec_s.position <= t.weight(k_s) {
            let (k_t, rec_t) = t
                .iter()
                .map(|(k, w)| (k, cws.element_sample(d, k, w)))
                .min_by(|a, b| a.1.value.total_cmp(&b.1.value))
                .expect("non-empty");
            assert_eq!(k_s, k_t, "hash {d}: selected element must persist");
            assert_eq!(rec_s, rec_t, "hash {d}: selected record must persist");
            checked += 1;
        }
    }
    assert!(checked >= 64 * 2 / 5, "too few applicable hashes: {checked}");
}

/// The estimator is invariant to jointly scaling both sets (Eq. 2 is).
/// Exact for CWS (dyadic machinery scales); statistical for ICWS.
#[test]
fn estimates_are_scale_covariant() {
    let d = 1024;
    let s = WeightedSet::from_pairs((0..40u64).map(|k| (k, 0.3 + (k % 5) as f64 * 0.2)))
        .expect("valid");
    let t = WeightedSet::from_pairs((20..60u64).map(|k| (k, 0.3 + (k % 3) as f64 * 0.4)))
        .expect("valid");
    for algo in [Algorithm::Cws, Algorithm::Icws, Algorithm::Pcws] {
        let sk = algo.build(43, d, &ic_config()).expect("buildable");
        let base = sk.sketch(&s).expect("ok").estimate_similarity(&sk.sketch(&t).expect("ok"));
        let s4 = s.scaled(4.0).expect("valid factor");
        let t4 = t.scaled(4.0).expect("valid factor");
        let scaled = sk.sketch(&s4).expect("ok").estimate_similarity(&sk.sketch(&t4).expect("ok"));
        assert!((base - scaled).abs() < 0.05, "{algo:?}: base {base} vs x4 {scaled}");
    }
}

/// ICWS element samples satisfy the bracket `y ≤ S < z` and the sample is
/// *stable* under weight changes inside `[y, z)` for every hash index —
/// the Figure 5 property, end-to-end through the public sketch.
#[test]
fn icws_sketch_stable_under_in_window_weight_changes() {
    let d = 256;
    let icws = Icws::new(47, d);
    let s = WeightedSet::from_pairs((0..20u64).map(|k| (k, 1.0 + (k % 4) as f64))).expect("valid");
    let base = icws.sketch(&s).expect("ok");
    // Perturb every weight by a hair (well within each element's window for
    // almost all (d, k); collisions must survive almost everywhere).
    let eps = WeightedSet::from_pairs(s.iter().map(|(k, w)| (k, w * 1.0005))).expect("valid");
    let sk = icws.sketch(&eps).expect("ok");
    let agreement = base.estimate_similarity(&sk);
    assert!(agreement > 0.97, "tiny perturbation broke {agreement}");
}

/// Different seeds decorrelate fingerprints entirely.
#[test]
fn different_seeds_give_independent_sketches() {
    let s = WeightedSet::from_pairs((0..30u64).map(|k| (k, 1.0 + (k % 3) as f64))).expect("valid");
    let a = Icws::new(1, 512).sketch(&s).expect("ok");
    let b = Icws::new(2, 512).sketch(&s).expect("ok");
    assert!(a.try_estimate_similarity(&b).is_err(), "cross-seed comparison must fail");
    // Codes pack (d, k, t) without the seed, so independent seeds still
    // agree occasionally by chance (≈ Σ p_k² · P(same step) ≈ 3% here);
    // what must NOT happen is wholesale agreement.
    let matches = a.codes.iter().zip(&b.codes).filter(|(x, y)| x == y).count();
    assert!(matches < 512 / 5, "seeds leak: {matches} of 512 codes shared");
}

/// The whole 13-algorithm factory produces deterministic sketches: building
/// twice with the same seed yields byte-identical fingerprints.
#[test]
fn factory_sketches_are_reproducible() {
    let s = WeightedSet::from_pairs((0..25u64).map(|k| (k, 0.2 + (k % 6) as f64 * 0.5)))
        .expect("valid");
    let mut config = ic_config();
    config.upper_bounds = Some(wmh::core::others::UpperBounds::from_sets([&s]).expect("non-empty"));
    for algo in Algorithm::ALL {
        let a = algo.build(53, 64, &config).expect("buildable").sketch(&s).expect("ok");
        let b = algo.build(53, 64, &config).expect("buildable").sketch(&s).expect("ok");
        assert_eq!(a, b, "{algo:?} not reproducible");
    }
}
