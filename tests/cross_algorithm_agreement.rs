//! Cross-algorithm agreement: the exact estimators all target Eq. 2, so
//! their estimates must agree with each other (not merely with the truth)
//! across a spread of pairs — a mutual-consistency check that catches
//! subtle per-algorithm drifts that single-pair tests miss.

use wmh::core::others::UpperBounds;
use wmh::core::{Algorithm, AlgorithmConfig};
use wmh::data::SynConfig;
use wmh::rng::stats::pearson;
use wmh::sets::generalized_jaccard;

/// The theoretically exact estimators (catalog `unbiased == true`).
fn exact_algorithms() -> Vec<Algorithm> {
    Algorithm::ALL.into_iter().filter(|a| a.info().unbiased).collect()
}

#[test]
fn exact_estimators_correlate_across_pairs() {
    // A battery of controlled pairs sweeping the full similarity range:
    // truth variance is large, so exact estimators must track it nearly
    // perfectly at D = 512 (binomial noise sd ≤ 0.023 per pair).
    let targets: Vec<f64> = (1..=19).map(|i| f64::from(i) / 20.0).collect();
    let battery: Vec<_> = targets
        .iter()
        .enumerate()
        .map(|(i, &t)| wmh::data::pairs::controlled_pair(t, 25, (i as u64) * 10_000))
        .collect();
    let truths: Vec<f64> = battery.iter().map(|(s, t)| generalized_jaccard(s, t)).collect();
    let all_sets: Vec<&wmh::sets::WeightedSet> = battery.iter().flat_map(|(s, t)| [s, t]).collect();
    let config = AlgorithmConfig {
        quantization_constant: 300.0,
        upper_bounds: Some(UpperBounds::from_sets(all_sets.iter().copied()).expect("non-empty")),
        max_rejection_draws: 5_000_000,
        ccws_weight_scale: 10.0,
        ..AlgorithmConfig::default()
    };
    let d = 512;
    let mut estimates: Vec<(String, Vec<f64>)> = Vec::new();
    for algo in exact_algorithms() {
        let sk = algo.build(5, d, &config).expect("buildable");
        let ests: Vec<f64> = battery
            .iter()
            .map(|(s, t)| {
                sk.sketch(s)
                    .expect("non-empty")
                    .estimate_similarity(&sk.sketch(t).expect("non-empty"))
            })
            .collect();
        estimates.push((algo.name().to_owned(), ests));
    }
    // Everyone correlates near-perfectly with the truth…
    for (name, ests) in &estimates {
        let rho = pearson(ests, &truths);
        assert!(rho > 0.99, "{name}: corr with truth {rho}");
    }
    // …and with each other.
    for i in 0..estimates.len() {
        for j in (i + 1)..estimates.len() {
            let rho = pearson(&estimates[i].1, &estimates[j].1);
            assert!(rho > 0.99, "{} vs {}: corr {rho}", estimates[i].0, estimates[j].0);
        }
    }
}

#[test]
fn exact_estimators_have_matching_error_scales() {
    // All exact estimators share the binomial noise floor, so their RMS
    // errors at the same D are within a small factor of each other.
    let cfg = SynConfig { docs: 30, features: 1_000, density: 0.06, exponent: 3.0, scale: 0.24 };
    let ds = cfg.generate(78).expect("valid");
    let pairs = wmh::data::pairs::sample_pairs(ds.docs.len(), 100, 78);
    let truths: Vec<f64> =
        pairs.iter().map(|&(i, j)| generalized_jaccard(&ds.docs[i], &ds.docs[j])).collect();
    let config = AlgorithmConfig {
        quantization_constant: 300.0,
        upper_bounds: Some(UpperBounds::from_sets(ds.docs.iter()).expect("non-empty")),
        max_rejection_draws: 5_000_000,
        ccws_weight_scale: 10.0,
        ..AlgorithmConfig::default()
    };
    let d = 256;
    let mut rmses = Vec::new();
    for algo in exact_algorithms() {
        let sk = algo.build(9, d, &config).expect("buildable");
        let sketches: Vec<_> =
            ds.docs.iter().map(|doc| sk.sketch(doc).expect("sketchable")).collect();
        let mse: f64 = pairs
            .iter()
            .enumerate()
            .map(|(p, &(i, j))| {
                let e = sketches[i].estimate_similarity(&sketches[j]) - truths[p];
                e * e
            })
            .sum::<f64>()
            / pairs.len() as f64;
        rmses.push((algo.name(), mse.sqrt()));
    }
    let min = rmses.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
    let max = rmses.iter().map(|&(_, r)| r).fold(0.0, f64::max);
    assert!(max < 2.0 * min, "exact estimators should share an error scale: {rmses:?}");
}
