//! End-to-end pipeline tests: data generation → sketching → indexing →
//! evaluation, spanning every crate in the workspace.

use wmh::core::cws::Icws;
use wmh::core::Algorithm;
use wmh::data::{DatasetSummary, SynConfig};
use wmh::eval::experiments::{figures, tables};
use wmh::eval::{runner, Scale};
use wmh::lsh::nn::{range_neighbors, recall};
use wmh::lsh::{Bands, LshIndex};
use wmh::sets::generalized_jaccard;

/// Generate → summarize: the Table 4 pipeline, checked against the
/// generator's analytic properties.
#[test]
fn table4_pipeline_matches_generator() {
    let cfg = SynConfig { docs: 100, features: 5_000, density: 0.01, exponent: 3.0, scale: 0.2 };
    let ds = cfg.generate(3).expect("valid config");
    let s = DatasetSummary::compute(&ds);
    assert_eq!(s.docs, 100);
    assert!((s.avg_density - 0.01).abs() < 1e-3);
    assert!((s.avg_mean_weight - 0.3).abs() < 0.02, "mean {}", s.avg_mean_weight);
}

/// Generate → index → query: recall of R-near neighbours on planted
/// duplicates is high while the candidate ratio stays small.
#[test]
fn lsh_pipeline_has_high_recall_at_low_cost() {
    let cfg = SynConfig { docs: 120, features: 3_000, density: 0.02, exponent: 3.0, scale: 0.2 };
    let mut docs = cfg.generate(5).expect("valid").docs;
    let n_base = docs.len();
    for i in 0..10 {
        let noisy: Vec<(u64, f64)> =
            docs[i].iter().enumerate().filter(|(pos, _)| pos % 8 != 0).map(|(_, p)| p).collect();
        docs.push(wmh::sets::WeightedSet::from_pairs(noisy).expect("valid"));
    }
    let bands = Bands::new(24, 3).expect("valid");
    let mut index = LshIndex::new(Icws::new(7, bands.total_hashes()), bands).expect("bands fit");
    for (id, d) in docs.iter().enumerate() {
        index.insert(id as u64, d).expect("non-empty");
    }
    let mut recalls = Vec::new();
    let mut candidate_total = 0usize;
    for i in 0..10 {
        let q = &docs[n_base + i];
        let approx: Vec<u64> =
            index.query_above(q, 0.3).expect("query works").into_iter().map(|(id, _)| id).collect();
        let exact: Vec<u64> = range_neighbors(q, &docs, generalized_jaccard, 0.3)
            .into_iter()
            .map(|(i, _)| i as u64)
            .collect();
        assert!(exact.len() >= 2, "planted duplicate missing from ground truth");
        recalls.push(recall(&approx, &exact));
        candidate_total += index.candidates(q).expect("query works").len();
    }
    let mean_recall = recalls.iter().sum::<f64>() / recalls.len() as f64;
    assert!(mean_recall > 0.9, "recall {mean_recall}");
    assert!(candidate_total < 10 * docs.len() / 4, "candidates {candidate_total} ≈ brute force");
}

/// The full Figure 8 machinery at test scale: all thirteen algorithms
/// produce a complete grid with finite errors, and the headline ordering
/// holds.
#[test]
fn figure8_machinery_full_grid() {
    let mut scale = Scale::tiny();
    scale.datasets.truncate(1);
    let cells = runner::run_mse(&scale, &Algorithm::ALL).expect("runner");
    assert_eq!(cells.len(), 15 * scale.d_values.len());
    let rendered = figures::render_mse(&scale, &cells);
    for a in Algorithm::ALL {
        assert!(rendered.contains(a.name()), "missing {} in rendering", a.name());
    }
}

/// The taxonomy artifacts render and agree with the catalog.
#[test]
fn taxonomy_artifacts_render() {
    assert_eq!(tables::table2().len(), 12);
    assert_eq!(tables::table3().len(), 6);
    let tree = tables::figure2_tree();
    assert!(tree.contains("CWS scheme") || tree.contains("Active index"));
    let demo = tables::table1_demo(1);
    assert_eq!(demo.len(), 6);
}

/// Illustration traces render and demonstrate their invariants.
#[test]
fn illustrations_render() {
    let text = wmh::eval::experiments::illustrations::all(1);
    assert!(text.contains("Figure 7"));
    assert!(text.contains("unchanged: true"));
}
